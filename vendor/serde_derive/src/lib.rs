//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never feeds them to an actual serializer, so these derives expand
//! to nothing. See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
