//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::{Rejection, TestRng};
use std::ops::Range;

/// Strategy for `Vec`s with lengths drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
        let len = self.size.clone().generate(rng)?;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
