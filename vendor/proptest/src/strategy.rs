//! The `Strategy` trait and the combinators/primitive strategies the
//! workspace uses.

use crate::test_runner::{Rejection, TestRng};
use std::ops::Range;

/// A generator of test-case values (the proptest trait, minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or rejects the sample.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing the predicate; resamples locally
    /// before giving up on the whole case.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..256 {
            let candidate = self.inner.generate(rng)?;
            if (self.pred)(&candidate) {
                return Ok(candidate);
            }
        }
        Err(Rejection)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    if self.start >= self.end {
                        return Err(Rejection);
                    }
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = rng.below(span);
                    Ok((self.start as i128 + offset as i128) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        if !(self.start < self.end) {
            return Err(Rejection);
        }
        Ok(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Result<f32, Rejection> {
        if !(self.start < self.end) {
            return Err(Rejection);
        }
        Ok(self.start + (rng.unit_f64() as f32) * (self.end - self.start))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                    let ($($name,)+) = self;
                    Ok(($($name.generate(rng)?,)+))
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<T: Clone> Strategy for &[T] {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        if self.is_empty() {
            return Err(Rejection);
        }
        Ok(self[rng.below(self.len() as u64) as usize].clone())
    }
}

impl<T: Clone, const N: usize> Strategy for &[T; N] {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        self.as_slice().generate(rng)
    }
}
