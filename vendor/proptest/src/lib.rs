//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], [`test_runner::Config`] (`ProptestConfig`), the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter`, range /
//! tuple / array-slice / [`strategy::Just`] strategies, and
//! [`collection::vec`].
//!
//! Semantics: each `#[test]` runs `cases` iterations (default 256) with a
//! deterministic per-test seed derived from the test's name, so failures
//! reproduce exactly across runs. There is **no shrinking** — a failing
//! case reports its case index and seed instead of a minimized input.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The names the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Wraps `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the two shapes the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, (a, b) in (0u16..4, 0u16..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut case: u32 = 0;
                let mut rejects: u32 = 0;
                while case < config.cases {
                    // Rebuild the strategies each case: they are cheap
                    // combinator values and may not be `Clone`.
                    let sampled: ::core::result::Result<_, $crate::test_runner::Rejection> =
                    (|rng: &mut $crate::test_runner::TestRng| {
                        ::core::result::Result::Ok((
                            $($crate::strategy::Strategy::generate(&($strategy), rng)?,)+
                        ))
                    })(&mut rng);
                    let values = match sampled {
                        ::core::result::Result::Ok(v) => v,
                        ::core::result::Result::Err(_) => {
                            rejects += 1;
                            assert!(
                                rejects < config.cases.saturating_mul(256).max(4096),
                                "proptest stand-in: too many rejected samples in {} \
                                 ({} rejects for {} target cases)",
                                stringify!($name), rejects, config.cases,
                            );
                            continue;
                        }
                    };
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                        let ($($pat,)+) = values;
                        #[allow(clippy::redundant_closure_call)]
                        (|| { $body ::core::result::Result::Ok(()) })()
                    };
                    match outcome {
                        ::core::result::Result::Ok(()) => { case += 1; }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            assert!(
                                rejects < config.cases.saturating_mul(256).max(4096),
                                "proptest stand-in: too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest stand-in: property {} failed at case {}: {}\n\
                                 (deterministic seed — rerun reproduces this case)",
                                stringify!($name), case, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current test case (returns `TestCaseError::Fail`) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current test case (it is resampled, not failed) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
