//! Deterministic RNG and per-test configuration for the proptest
//! stand-in.

/// Per-test configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` / `prop_filter`): resample.
    Reject(&'static str),
    /// The property failed: the whole test fails.
    Fail(String),
}

/// A sample was rejected inside strategy generation (e.g. `prop_filter`
/// never passed).
#[derive(Debug, Clone, Copy)]
pub struct Rejection;

/// SplitMix64: tiny, deterministic, and plenty for sampling test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from the test's name, so every run of a given test
    /// draws the identical case sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-input quality.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
