//! Offline stand-in for `serde` (derive feature).
//!
//! Provides the two marker traits plus the no-op derive macros so that
//! `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No data format
//! is implemented. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
