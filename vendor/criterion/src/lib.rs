//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints per-iteration min / mean /
//! max. No statistical analysis, plots, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each bench function (mirrors
/// `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }
}

/// A named benchmark group (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no per-run input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Ends the group (no-op beyond parity with criterion).
    pub fn finish(self) {}
}

/// Labels one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Times closures (mirrors `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        }
    }

    /// Times `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples recorded");
            return;
        }
        let min = self.samples.iter().min().expect("nonempty");
        let max = self.samples.iter().max().expect("nonempty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "  {group}/{id}: min {min:?} / mean {mean:?} / max {max:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a benchmark group runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main` (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
