//! Recovery across grid shapes: even×even, even×odd, odd×odd (dual
//! path), skinny grids, and the paper's two reference sizes.

use wsn::prelude::*;

fn recover_everything(cols: u16, rows: u16, seed: u64) -> SchemeReport {
    let system = GridSystem::for_comm_range(cols, rows, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let positions = deploy::per_cell_exact(&system, 2, &mut rng);
    let mut net = GridNetwork::new(system, &positions);
    // Punch holes in ~20% of the cells.
    let n_holes = (system.cell_count() / 5).max(1);
    for idx in rng.sample_indices(system.cell_count(), n_holes) {
        for id in net.members(system.coord_of(idx)).unwrap().to_vec() {
            net.disable_node(id).unwrap();
        }
    }
    let mut rec = Recovery::new(net, SrConfig::default().with_seed(seed)).unwrap();
    let report = rec.run();
    rec.network().debug_invariants();
    report
}

#[test]
fn papers_reference_grids() {
    // 4x5 (Figures 1(b), 3(a), 5(a)) and 16x16 (everything else).
    for (cols, rows) in [(4u16, 5u16), (16, 16)] {
        let report = recover_everything(cols, rows, 42);
        assert!(report.fully_covered, "{cols}x{rows}");
        assert_eq!(report.metrics.success_rate_percent(), 100.0);
    }
}

#[test]
fn dual_path_grids_recover() {
    for (cols, rows) in [(3u16, 3u16), (5, 5), (7, 9), (11, 11)] {
        let report = recover_everything(cols, rows, 7);
        assert!(report.fully_covered, "{cols}x{rows}");
        assert_eq!(report.metrics.processes_failed, 0, "{cols}x{rows}");
    }
}

#[test]
fn skinny_grids_recover() {
    for (cols, rows) in [(2u16, 2u16), (2, 9), (16, 2), (3, 4)] {
        let report = recover_everything(cols, rows, 3);
        assert!(report.fully_covered, "{cols}x{rows}");
    }
}

#[test]
fn one_dimensional_grids_are_rejected_cleanly() {
    let system = GridSystem::for_comm_range(1, 8, 10.0).unwrap();
    let net = GridNetwork::new(system, &[]);
    assert!(matches!(
        Recovery::new(net, SrConfig::default()),
        Err(SrError::Topology(_))
    ));
}

#[test]
fn walk_lengths_match_theorem_parameters() {
    // Theorem 2's L for single cycles (m*n - 1) and Corollary 2's for
    // dual paths (m*n - 2) — through the public topology API.
    assert_eq!(CycleTopology::build(4, 5).unwrap().max_walk_hops(), 19);
    assert_eq!(CycleTopology::build(16, 16).unwrap().max_walk_hops(), 255);
    assert_eq!(CycleTopology::build(5, 5).unwrap().max_walk_hops(), 23);
    assert_eq!(CycleTopology::build(11, 9).unwrap().max_walk_hops(), 97);
}

#[test]
fn worst_case_walk_uses_every_hop() {
    // One spare placed at the cycle-farthest cell from the hole: the
    // replacement must walk nearly the whole structure and still succeed.
    let system = GridSystem::for_comm_range(6, 6, 10.0).unwrap();
    let topo = CycleTopology::build(6, 6).unwrap();
    let CycleTopology::Single(cycle) = &topo else {
        panic!("6x6 is even-sided");
    };
    let mut rng = SimRng::seed_from_u64(9);
    let hole = cycle.order()[20];
    // The farthest-backward cell is the hole's successor on the cycle.
    let far = cycle.successor(hole);
    let mut positions = deploy::with_holes(&system, &[hole], 1, &mut rng);
    positions.push(system.cell_rect(far).unwrap().center());
    let net = GridNetwork::new(system, &positions);
    let mut rec = Recovery::new(net, SrConfig::default().with_seed(9)).unwrap();
    let report = rec.run();
    assert!(report.fully_covered);
    assert_eq!(report.processes.len(), 1);
    assert_eq!(
        report.processes[0].hops as usize,
        topo.max_walk_hops(),
        "the walk must stretch the full deduced path"
    );
}
