//! Cross-crate fault-injection scenarios: dynamic holes appearing during
//! recovery, jammer sweeps, repeated strikes, and the interplay of local
//! head repair with the replacement protocol.

use wsn::prelude::*;

fn dense_network(cols: u16, rows: u16, per_cell: usize, seed: u64) -> GridNetwork {
    let system = GridSystem::for_comm_range(cols, rows, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let positions = deploy::per_cell_exact(&system, per_cell, &mut rng);
    GridNetwork::new(system, &positions)
}

#[test]
fn staggered_random_kills_are_absorbed() {
    let net = dense_network(10, 10, 3, 1);
    let plan = FaultPlan::new()
        .at(0, FaultEvent::KillRandomEnabled { count: 30 })
        .at(10, FaultEvent::KillRandomEnabled { count: 30 })
        .at(20, FaultEvent::KillRandomEnabled { count: 30 })
        .at(30, FaultEvent::KillRandomEnabled { count: 30 });
    let cfg = SrConfig::default().with_seed(1).with_fault_plan(plan);
    let mut rec = Recovery::new(net, cfg).unwrap();
    let report = rec.run();
    assert!(report.run.is_quiescent());
    assert!(report.fully_covered, "{report}");
    assert_eq!(report.final_stats.enabled, 300 - 120);
    rec.network().debug_invariants();
}

#[test]
fn moving_jammer_sweep_is_repaired_online() {
    let net = dense_network(12, 12, 4, 2);
    let r = net.system().cell_side();
    let jammer = Jammer {
        start: Point2::new(0.0, net.system().area().height() / 2.0),
        velocity: Vec2::new(0.5 * r, 0.0),
        radius: 1.2 * r,
    };
    let plan = jammer.plan(0, 40).unwrap();
    let cfg = SrConfig::default().with_seed(2).with_fault_plan(plan);
    let mut rec = Recovery::new(net, cfg).unwrap();
    let report = rec.run();
    assert!(report.fully_covered);
    assert_eq!(report.metrics.success_rate_percent(), 100.0);
    assert!(report.metrics.processes_initiated > 0);
    let verdict = coverage_verdict(rec.network(), 80);
    assert!(verdict.is_complete());
}

#[test]
fn strike_on_the_same_region_twice_drains_and_recovers() {
    // Two strikes on the same neighborhood: the first consumes nearby
    // spares, the second forces longer walks. Both must be absorbed.
    let net = dense_network(8, 8, 3, 3);
    let center = Point2::new(
        net.system().area().width() / 2.0,
        net.system().area().height() / 2.0,
    );
    let strike = Disk::new(center, 1.5 * net.system().cell_side()).unwrap();
    let plan = FaultPlan::new()
        .at(0, FaultEvent::KillRegion(strike))
        .at(25, FaultEvent::KillRegion(strike));
    let cfg = SrConfig::default()
        .with_seed(3)
        .with_fault_plan(plan)
        .with_trace(true);
    let mut rec = Recovery::new(net, cfg).unwrap();
    let report = rec.run();
    assert!(report.fully_covered, "{report}");
    // The second strike must have disabled freshly-moved-in nodes too.
    let kills = rec.trace().count_kind("node_disabled");
    assert!(kills > 0);
    rec.network().debug_invariants();
}

#[test]
fn overwhelming_attack_fails_gracefully() {
    // Kill far more nodes than spares exist: recovery must terminate,
    // report incomplete coverage, and keep invariants.
    let net = dense_network(6, 6, 2, 4);
    let plan = FaultPlan::new().at(0, FaultEvent::KillRandomEnabled { count: 60 });
    let cfg = SrConfig::default().with_seed(4).with_fault_plan(plan);
    let mut rec = Recovery::new(net, cfg).unwrap();
    let report = rec.run();
    assert!(report.run.is_quiescent(), "must terminate");
    assert_eq!(report.final_stats.enabled, 12);
    // 12 nodes cannot head 36 cells.
    assert!(!report.fully_covered);
    assert!(report.final_stats.occupied <= 12);
    rec.network().debug_invariants();
}

#[test]
fn head_assassination_never_triggers_movement() {
    // Disabling only heads (always leaving spares) is repaired by local
    // re-election in every round, with zero movement cost.
    let net = dense_network(6, 6, 3, 5);
    let mut plan = FaultPlan::new();
    // Schedule: at each of 5 rounds, kill three current... we cannot know
    // future head ids statically, so kill specific node ids that start as
    // heads (FirstId election elects the lowest id per cell, which for
    // per_cell_exact(3) is node 3*k of cell k).
    for round in 0..5u64 {
        let ids: Vec<NodeId> = (0..3)
            .map(|i| NodeId::new((round as u32 * 3 + i) * 3))
            .collect();
        plan = plan.at(round, FaultEvent::KillNodes(ids));
    }
    let cfg = SrConfig::default().with_seed(5).with_fault_plan(plan);
    let mut rec = Recovery::new(net, cfg).unwrap();
    let report = rec.run();
    assert!(report.fully_covered);
    assert_eq!(report.metrics.moves, 0, "repairs must be local elections");
    assert_eq!(report.metrics.processes_initiated, 0);
}

#[test]
fn fault_plan_pending_rounds_keep_run_alive() {
    // A fault scheduled far in the future must be waited for, then
    // repaired, then the run ends.
    let net = dense_network(4, 4, 2, 6);
    let victims: Vec<NodeId> = net.members(GridCoord::new(2, 2)).unwrap().to_vec();
    let plan = FaultPlan::new().at(50, FaultEvent::KillNodes(victims));
    let cfg = SrConfig::default().with_seed(6).with_fault_plan(plan);
    let mut rec = Recovery::new(net, cfg).unwrap();
    let report = rec.run();
    assert!(report.run.rounds > 50);
    assert!(report.fully_covered);
    assert_eq!(report.metrics.processes_initiated, 1);
}
