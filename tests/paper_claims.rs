//! End-to-end checks of the paper's headline claims, run on the paper's
//! own experimental setup (16×16 virtual grid, `R = 10 m`, uniform
//! deployment with `N + m·n` enabled nodes).

use wsn::baselines::{ArConfig, ArRecovery};
use wsn::prelude::*;

fn deployment(n_target: usize, seed: u64) -> GridNetwork {
    let system = GridSystem::for_comm_range(16, 16, 10.0).expect("paper dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let positions = deploy::uniform(&system, n_target + system.cell_count(), &mut rng);
    GridNetwork::new(system, &positions)
}

#[test]
fn claim_sr_success_rate_is_always_100_percent() {
    // §5: "the success rate is always 100% in SR method".
    for n in [10usize, 55, 300] {
        for seed in 0..3u64 {
            let mut rec =
                Recovery::new(deployment(n, seed), SrConfig::default().with_seed(seed)).unwrap();
            let report = rec.run();
            assert!(report.fully_covered, "N={n} seed={seed}");
            assert_eq!(
                report.metrics.success_rate_percent(),
                100.0,
                "N={n} seed={seed}"
            );
            assert_eq!(report.metrics.processes_failed, 0);
        }
    }
}

#[test]
fn claim_sr_needs_less_than_half_the_processes_of_ar() {
    // §5: "fewer than 50% replacement processes are needed in SR".
    let mut sr_total = 0u64;
    let mut ar_total = 0u64;
    for seed in 0..4u64 {
        let net = deployment(150, seed);
        let sr = Recovery::new(net.clone(), SrConfig::default().with_seed(seed))
            .unwrap()
            .run();
        let ar = ArRecovery::new(net, ArConfig::default().with_seed(seed))
            .unwrap()
            .run();
        sr_total += sr.metrics.processes_initiated;
        ar_total += ar.metrics.processes_initiated;
    }
    assert!(
        2 * sr_total < ar_total,
        "SR processes {sr_total} must be < half of AR's {ar_total}"
    );
}

#[test]
fn claim_crossover_sr_wins_above_n55_loses_below() {
    // §5: below N ≈ 55 SR walks long paths (more movement than AR, which
    // gives up on hard holes instead); above it SR needs fewer moves and
    // less distance while staying at 100% success.
    let avg = |n: usize, scheme: &dyn Fn(GridNetwork, u64) -> (f64, f64)| {
        let mut moves = 0.0;
        let mut dist = 0.0;
        let trials = 3u64;
        for seed in 0..trials {
            let (m, d) = scheme(deployment(n, 100 + seed), seed);
            moves += m;
            dist += d;
        }
        (moves / trials as f64, dist / trials as f64)
    };
    let sr = |net: GridNetwork, seed: u64| {
        let r = Recovery::new(net, SrConfig::default().with_seed(seed))
            .unwrap()
            .run();
        (r.metrics.moves as f64, r.metrics.distance)
    };
    let ar = |net: GridNetwork, seed: u64| {
        let r = ArRecovery::new(net, ArConfig::default().with_seed(seed))
            .unwrap()
            .run();
        (r.metrics.moves as f64, r.metrics.distance)
    };

    // Below the crossover: SR moves more (it never gives up).
    let (sr_lo, _) = avg(10, &sr);
    let (ar_lo, _) = avg(10, &ar);
    assert!(
        sr_lo > ar_lo,
        "below crossover SR should move more: SR {sr_lo} vs AR {ar_lo}"
    );
    // Above the crossover: SR moves less and travels less.
    let (sr_hi, sr_hi_d) = avg(300, &sr);
    let (ar_hi, ar_hi_d) = avg(300, &ar);
    assert!(
        sr_hi < ar_hi,
        "above crossover SR should move less: SR {sr_hi} vs AR {ar_hi}"
    );
    assert!(sr_hi_d < ar_hi_d);
}

#[test]
fn claim_ar_fails_processes_at_low_density_sr_does_not() {
    // §5: "the AR method has 10%~20% failures in replacement processes
    // while the success rate is always 100% in SR" (N < 55). Our AR
    // re-implementation fails somewhat more often at the very low end
    // (see EXPERIMENTS.md); the claim checked here is the ordering and
    // the existence of AR failures below the crossover.
    let mut ar_failures = 0u64;
    for seed in 0..3u64 {
        let net = deployment(25, seed);
        let sr = Recovery::new(net.clone(), SrConfig::default().with_seed(seed))
            .unwrap()
            .run();
        let ar = ArRecovery::new(net, ArConfig::default().with_seed(seed))
            .unwrap()
            .run();
        assert_eq!(sr.metrics.success_rate_percent(), 100.0);
        assert!(ar.metrics.success_rate_percent() < 100.0);
        ar_failures += ar.metrics.processes_failed;
    }
    assert!(ar_failures > 0);
}

#[test]
fn claim_sr_works_with_sparse_deployment_ar_class_needs_4x() {
    // §3: SR "will favor the networks with sparse deployment",
    // distinguishing it from schemes requiring >= 4 * m * n deployed
    // nodes. Build a 6x6 network with exactly ONE spare (density barely
    // above 1 per cell) and a hole: SR must still recover it.
    let system = GridSystem::for_comm_range(6, 6, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(99);
    let hole = GridCoord::new(3, 3);
    let mut positions = deploy::with_holes(&system, &[hole], 1, &mut rng);
    let spare_cell = system.cell_rect(GridCoord::new(0, 0)).unwrap();
    positions.push(spare_cell.center());
    let net = GridNetwork::new(system, &positions);
    assert_eq!(net.stats().spares, 1);

    let mut rec = Recovery::new(net, SrConfig::default().with_seed(99)).unwrap();
    let report = rec.run();
    assert!(report.fully_covered, "one spare suffices (Theorem 1)");
    assert_eq!(report.final_stats.spares, 0);
}

#[test]
fn claim_analysis_matches_experiment_through_the_sweep() {
    // The §5 overlay: experimental SR movement totals track the Theorem-2
    // estimate holes * M(L, N) within a factor band across the sweep.
    for (n, lo, hi) in [(150usize, 0.4, 1.4), (500, 0.5, 1.6)] {
        let mut exp = 0.0;
        let mut ana = 0.0;
        for seed in 0..4u64 {
            let net = deployment(n, 7 + seed);
            let holes = net.stats().vacant;
            let r = Recovery::new(net, SrConfig::default().with_seed(seed))
                .unwrap()
                .run();
            exp += r.metrics.moves as f64;
            ana += holes as f64 * analysis::expected_moves(255, n);
        }
        let ratio = exp / ana;
        assert!(
            (lo..=hi).contains(&ratio),
            "N={n}: experimental/analytical ratio {ratio}"
        );
    }
}

#[test]
fn claim_coverage_and_connectivity_are_restored() {
    // Theorem 1's purpose: "network connectivity and coverage can be
    // guaranteed". Verify via the geometric/graph verdicts, not just the
    // combinatorial hole count.
    let net = deployment(200, 11);
    let mut rec = Recovery::new(net, SrConfig::default().with_seed(11)).unwrap();
    let report = rec.run();
    assert!(report.fully_covered);
    let verdict = coverage_verdict(rec.network(), 100);
    assert!(verdict.is_complete());
    assert!(verdict.geometric_coverage > 0.999);
    assert!(verdict.heads_connected);
}
