//! Markdown link check: every relative link in the repository's
//! top-level documentation must point at a file that exists.
//!
//! This is the link-check half of the docs gate (the other half is
//! `RUSTDOCFLAGS="-D warnings" cargo doc --no-deps`): it keeps
//! README/ARCHITECTURE/THEORY/PAPER/PAPERS honest as files move, with
//! no external tooling. External (`http`/`https`) links are out of
//! scope — the CI environment is offline by design.

use std::path::{Path, PathBuf};

/// The documents under the gate.
const DOCS: [&str; 6] = [
    "README.md",
    "ARCHITECTURE.md",
    "THEORY.md",
    "PAPER.md",
    "PAPERS.md",
    "CHANGES.md",
];

/// Extracts `](target)` link targets from markdown, skipping code
/// fences (``` blocks) where `](` can appear in source text.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            rest = &rest[open + 2..];
            let Some(close) = rest.find(')') else { break };
            out.push(rest[..close].to_string());
            rest = &rest[close..];
        }
    }
    out
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = workspace_root();
    let mut checked = 0usize;
    let mut broken: Vec<String> = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {doc}: {e}"));
        for target in link_targets(&text) {
            // External links and pure in-page anchors are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.starts_with("mailto:")
            {
                continue;
            }
            // Strip a fragment, if any.
            let file_part = target.split('#').next().unwrap_or(&target);
            if file_part.is_empty() {
                continue;
            }
            checked += 1;
            let resolved = root.join(file_part);
            if !Path::new(&resolved).exists() {
                broken.push(format!("{doc}: ({target})"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n  {}",
        broken.join("\n  ")
    );
    // The gate must actually be checking something; if the docs lose
    // all their relative links, this test has gone stale.
    assert!(
        checked >= 10,
        "only {checked} relative links found across the doc set"
    );
}

#[test]
fn doc_set_is_present_and_interlinked() {
    let root = workspace_root();
    for doc in DOCS {
        assert!(root.join(doc).exists(), "{doc} missing");
    }
    // The concordance is reachable from both entry points.
    for entry in ["README.md", "ARCHITECTURE.md"] {
        let text = std::fs::read_to_string(root.join(entry)).unwrap();
        assert!(
            text.contains("](THEORY.md)"),
            "{entry} does not link THEORY.md"
        );
    }
    // And the paper map is reachable from the concordance.
    let theory = std::fs::read_to_string(root.join("THEORY.md")).unwrap();
    assert!(theory.contains("](PAPER.md)"));
}
