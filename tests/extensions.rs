//! Integration tests for the implemented extensions (DESIGN.md §6b):
//! the SR-SC shortcut under realistic scenarios, and the empirical
//! location of the paper's SR/AR crossover via the stats utilities.

use wsn::baselines::{ArConfig, ArRecovery};
use wsn::prelude::*;
use wsn::stats::Series;

#[test]
fn shortcut_handles_the_jammer_scenario() {
    let system = GridSystem::for_comm_range(12, 12, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(5);
    let positions = deploy::per_cell_exact(&system, 4, &mut rng);
    let network = GridNetwork::new(system, &positions);
    let r = system.cell_side();
    let jammer = Jammer {
        start: Point2::new(0.0, system.area().height() / 2.0),
        velocity: Vec2::new(0.5 * r, 0.0),
        radius: 1.2 * r,
    };
    let plan = jammer.plan(0, 40).unwrap();
    let cfg = SrConfig::default().with_seed(5).with_fault_plan(plan);
    let mut rec = ShortcutRecovery::new(network, cfg).unwrap();
    let report = rec.run();
    assert!(report.fully_covered);
    assert_eq!(report.metrics.success_rate_percent(), 100.0);
    // One move per repaired hole, always.
    assert_eq!(report.metrics.moves, report.metrics.processes_converged);
}

#[test]
fn shortcut_distance_stays_within_the_network_diameter() {
    // Every SR-SC move is a straight chord, so no single process can
    // travel farther than the surveillance-area diagonal.
    let system = GridSystem::for_comm_range(10, 10, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(6);
    let positions = deploy::uniform(&system, 150, &mut rng);
    let network = GridNetwork::new(system, &positions);
    let mut rec = ShortcutRecovery::new(network, SrConfig::default().with_seed(6)).unwrap();
    let report = rec.run();
    let diameter = system.area().min().distance(system.area().max());
    for p in &report.processes {
        assert!(
            p.distance <= diameter + 1e-9,
            "process {} travelled {} > diameter {}",
            p.id,
            p.distance,
            diameter
        );
    }
}

#[test]
fn empirical_crossover_lands_near_the_papers_55() {
    // Sweep SR and AR movement costs over N and locate where SR drops
    // below AR — the paper reports N ≈ 55 (we accept the band [25, 200]
    // for a 4-seed estimate; see EXPERIMENTS.md).
    let system = GridSystem::for_comm_range(16, 16, 10.0).unwrap();
    let mut sr_series = Series::new("SR");
    let mut ar_series = Series::new("AR");
    for &n in &[10usize, 25, 55, 100, 200, 400] {
        for seed in 0..4u64 {
            let mut rng = SimRng::seed_from_u64(1000 + n as u64 * 31 + seed);
            let positions = deploy::uniform(&system, n + system.cell_count(), &mut rng);
            let net = GridNetwork::new(system, &positions);
            let sr = Recovery::new(net.clone(), SrConfig::default().with_seed(seed))
                .unwrap()
                .run();
            let ar = ArRecovery::new(net, ArConfig::default().with_seed(seed))
                .unwrap()
                .run();
            sr_series.push(n as f64, sr.metrics.moves as f64);
            ar_series.push(n as f64, ar.metrics.moves as f64);
        }
    }
    let crossover = sr_series
        .crossover_below(&ar_series)
        .expect("SR must eventually beat AR");
    assert!(
        (25.0..=200.0).contains(&crossover),
        "crossover at N = {crossover}"
    );
}

#[test]
fn shortcut_report_shape_matches_sr_report() {
    // Every driver reports the unified SchemeReport, so downstream
    // tooling can swap schemes without code changes.
    let system = GridSystem::for_comm_range(6, 6, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(8);
    let positions = deploy::with_holes(&system, &[GridCoord::new(2, 4)], 2, &mut rng);
    let network = GridNetwork::new(system, &positions);
    let sr: SchemeReport = Recovery::new(network.clone(), SrConfig::default().with_seed(8))
        .unwrap()
        .run();
    let sc: SchemeReport = ShortcutRecovery::new(network, SrConfig::default().with_seed(8))
        .unwrap()
        .run();
    assert_eq!(sr.initial_stats, sc.initial_stats);
    assert!(sr.fully_covered && sc.fully_covered);
    assert!(sc.metrics.moves <= sr.metrics.moves);
}
