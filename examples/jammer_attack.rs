//! A moving jammer sweeps across the surveillance area (the attack of Xu
//! et al., the paper's reference [8]), disabling every sensor in its
//! footprint round after round. SR runs *concurrently with the attack*,
//! refilling cells as they are emptied — the dynamic-hole scenario the
//! paper motivates in its introduction.
//!
//! ```text
//! cargo run --example jammer_attack
//! ```

use wsn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = GridSystem::for_comm_range(12, 12, 10.0)?;
    let mut rng = SimRng::seed_from_u64(7);

    // Dense deployment: the jammer will consume spares as it moves.
    let positions = deploy::per_cell_exact(&system, 4, &mut rng);
    let network = GridNetwork::new(system, &positions);
    println!("before attack: {network}");

    // The jammer enters at the west edge and drives east across the
    // middle of the area, one half-cell per round, for 40 rounds.
    let r = system.cell_side();
    let jammer = Jammer {
        start: Point2::new(0.0, system.area().height() / 2.0),
        velocity: Vec2::new(0.5 * r, 0.0),
        radius: 1.2 * r,
    };
    println!(
        "attack       : {jammer}, active rounds 0..40 (covers ~{:.0} cells total)",
        (jammer.velocity.x * 40.0 + 2.0 * jammer.radius) * (2.0 * jammer.radius) / (r * r)
    );
    let plan = jammer.plan(0, 40)?;

    let cfg = SrConfig::default()
        .with_seed(7)
        .with_fault_plan(plan)
        .with_trace(false);
    let mut recovery = Recovery::new(network, cfg)?;
    let report = recovery.run();

    println!("\n--- outcome ---");
    println!("{report}");
    println!(
        "jammer kills were repaired by {} replacement processes ({} moves, {:.1} m)",
        report.metrics.processes_initiated, report.metrics.moves, report.metrics.distance
    );
    let verdict = coverage_verdict(recovery.network(), 100);
    println!("coverage     : {verdict}");

    assert!(
        report.fully_covered,
        "with 3 spares per cell the sweep must be fully absorbed"
    );
    assert_eq!(report.metrics.success_rate_percent(), 100.0);

    // Show the per-cell occupancy after the attack: the corridor the
    // jammer burned through (row 6) is thinner but never vacant.
    println!("\noccupancy map after the attack (north up):");
    print!("{}", render::occupancy_map(recovery.network()));
    Ok(())
}
