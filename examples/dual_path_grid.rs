//! The odd×odd case: no Hamilton cycle exists in a 5×5 grid, so SR uses
//! the paper's Section-4 **dual-path** structure (Figure 4) and
//! Algorithm 2's case analysis. This example prints the structure and
//! exercises its three hard cases, including the one that needs the
//! "grid A with spare nodes is always preferred" rule.
//!
//! ```text
//! cargo run --example dual_path_grid
//! ```

use wsn::prelude::*;

fn render_structure(dual: &DualPathCycle) -> String {
    let mut out = String::new();
    for y in (0..dual.rows()).rev() {
        out.push_str("  ");
        for x in 0..dual.cols() {
            let c = GridCoord::new(x, y);
            let tag = if c == dual.a() {
                "  A".into()
            } else if c == dual.b() {
                "  B".into()
            } else if c == dual.c() {
                "  C".into()
            } else if c == dual.d() {
                "  D".into()
            } else {
                format!("{:>3}", dual.chain_position(c).expect("chain cell"))
            };
            out.push_str(&tag);
        }
        out.push('\n');
    }
    out
}

fn recover_one(hole: GridCoord, extra_spare_in: Option<GridCoord>, seed: u64) {
    let system = GridSystem::for_comm_range(5, 5, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    // One node per cell except the hole...
    let mut positions = deploy::with_holes(&system, &[hole], 1, &mut rng);
    // ...plus spares: either everywhere (easy case) or in exactly one
    // chosen cell (the adversarial case).
    match extra_spare_in {
        Some(cell) => {
            let rect = system.cell_rect(cell).expect("in bounds");
            positions.push(rect.center());
        }
        None => {
            let more = deploy::with_holes(&system, &[hole], 1, &mut rng);
            positions.extend(more);
        }
    }
    let network = GridNetwork::new(system, &positions);
    let spares = network.stats().spares;
    let mut recovery = Recovery::new(
        network,
        SrConfig::default().with_seed(seed).with_trace(true),
    )
    .expect("5x5 has a dual-path topology");
    let report = recovery.run();
    println!(
        "hole at {hole} with {spares} spare(s){}:",
        match extra_spare_in {
            Some(c) => format!(" (only in {c})"),
            None => String::new(),
        }
    );
    for line in recovery.trace().render().lines() {
        println!("    {line}");
    }
    assert!(report.fully_covered, "Corollary 1: must recover");
    println!(
        "    -> recovered in {} moves, {:.1} m\n",
        report.metrics.moves, report.metrics.distance
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = CycleTopology::build(5, 5)?;
    let CycleTopology::Dual(ref dual) = topo else {
        unreachable!("5x5 is odd x odd");
    };
    println!("5x5 dual-path structure (chain positions; D = start, C = end):");
    print!("{}", render_structure(dual));
    println!("paths: one = A -> D -> ... -> C -> B;  two = B -> D -> ... -> C -> A\n");

    // Case one: a special endpoint cell becomes vacant; C initiates.
    recover_one(dual.a(), None, 1);

    // Case two, adversarial: D vacant and the ONLY spare hides in A.
    // B initiates, the cascade reaches C, and the A-preference rule is
    // what finds the spare (Corollary 1's hard case).
    recover_one(dual.d(), Some(dual.a()), 2);

    // Case three: an ordinary chain cell; the walk crosses the A/B fork.
    recover_one(dual.chain()[12], Some(dual.b()), 3);

    // Corollary 2: expected movements use L = m*n - 2 on dual grids.
    println!(
        "Corollary 2: M(5x5 dual, N = 6) = {:.3} expected moves",
        analysis::expected_moves_dual(5, 5, 6)
    );
    Ok(())
}
