//! Network lifetime under repeated attacks with battery dynamics.
//!
//! The paper's §1 cites attackers that "cause the nodes to move and
//! deplete their battery power". With `battery_dynamics` enabled, every
//! replacement movement drains the mover; a node that empties its
//! battery dies on arrival, which can itself open a hole. This example
//! strikes the same region repeatedly and reports how long the network
//! keeps complete coverage — and compares SR against the SR-SC shortcut,
//! which concentrates drain on single long-distance movers.
//!
//! ```text
//! cargo run --release --example energy_budget
//! ```

use wsn::prelude::*;

/// Strikes every `period` rounds until `last_round`.
fn strike_plan(center: Point2, radius: f64, period: u64, last_round: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let mut round = 0;
    while round <= last_round {
        let disk = Disk::new(center, radius).expect("valid strike disk");
        plan = plan.at(round, FaultEvent::KillRegion(disk));
        round += period;
    }
    plan
}

fn run_scheme(name: &str, shortcut: bool, battery_joules: f64) {
    let system = GridSystem::for_comm_range(10, 10, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(99);
    let positions = deploy::per_cell_exact(&system, 3, &mut rng);
    let mut network = GridNetwork::new(system, &positions);
    // Constrain every battery to the example's budget.
    for i in 0..network.node_count() {
        let id = NodeId::new(i as u32);
        let full = network.node(id).expect("deployed").battery().charge();
        network
            .draw_battery(id, full - battery_joules)
            .expect("deployed");
    }
    let center = Point2::new(system.area().width() / 2.0, system.area().height() / 2.0);
    let plan = strike_plan(center, 1.3 * system.cell_side(), 20, 200);
    let cfg = SrConfig::default()
        .with_seed(99)
        .with_fault_plan(plan)
        .with_battery_dynamics(true);

    let (report, deaths) = if shortcut {
        let mut rec = ShortcutRecovery::new(network, cfg).expect("even-sided grid");
        let report = rec.run();
        (report, count_depleted(rec.network()))
    } else {
        let mut rec = Recovery::new(network, cfg).expect("valid configuration");
        let report = rec.run();
        (report, count_depleted(rec.network()))
    };

    println!("{name}:");
    println!(
        "  coverage {} after {} rounds | {} moves, {:.0} m, {:.0} J drawn, {} nodes battery-dead",
        if report.fully_covered { "HELD" } else { "LOST" },
        report.run.rounds,
        report.metrics.moves,
        report.metrics.distance,
        report.metrics.energy,
        deaths,
    );
    println!(
        "  processes: {} initiated, {} converged, {} failed\n",
        report.metrics.processes_initiated,
        report.metrics.processes_converged,
        report.metrics.processes_failed
    );
}

fn count_depleted(net: &GridNetwork) -> usize {
    net.nodes()
        .iter()
        .filter(|n| n.battery().is_depleted())
        .count()
}

fn main() {
    println!("repeated jamming strikes on a 10x10 grid, 3 nodes/cell,");
    println!("movement costs 1 J/m, batteries limited per run\n");
    for &budget in &[30.0, 120.0] {
        println!("=== battery budget {budget:.0} J per node ===");
        run_scheme("SR  (cascading replacement)", false, budget);
        run_scheme("SR-SC (gradient shortcut)", true, budget);
    }
    println!("note: under repeated strikes SR's cascades route through the same");
    println!("corridor of cells again and again, re-draining the same movers until");
    println!("they die mid-recovery; SR-SC's one straight move per hole stays within");
    println!("even the small budget. This is the quantitative case for the paper's");
    println!("future-work short-cut (see EXPERIMENTS.md, extension experiments).");
}
