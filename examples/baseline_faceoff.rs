//! Every recovery scheme in the repository on the *same* damaged
//! network: SR (the paper's contribution), SR-SC, AR (its baseline), and
//! the two schemes the introduction positions against — SMART-style scan
//! balancing and virtual force.
//!
//! Since the scheme-API unification this example contains **no
//! per-scheme code at all**: it iterates the registry
//! ([`wsn::baselines::builtins`]) and drives each entry through the
//! uniform [`ReplacementScheme`] API on a clone of the same deployment.
//!
//! ```text
//! cargo run --example baseline_faceoff            # default N = 150
//! cargo run --example baseline_faceoff -- 30      # spare target N = 30
//! ```

use wsn::prelude::*;
use wsn::stats::table::TextTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_target: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(150);
    let seed = 20_080_617;

    // The paper's experimental setup: 16x16 grid, R = 10 m, uniform
    // deployment with (N + m*n) enabled nodes.
    let system = GridSystem::for_comm_range(16, 16, 10.0)?;
    let mut rng = SimRng::seed_from_u64(seed);
    let positions = deploy::uniform(&system, n_target + system.cell_count(), &mut rng);
    let network = GridNetwork::new(system, &positions);
    let stats = network.stats();
    println!(
        "deployment: {} enabled nodes, {} holes, {} spares (target N = {n_target})\n",
        stats.enabled, stats.vacant, stats.spares
    );

    let registry = builtins();
    let mut table = TextTable::new(vec![
        "scheme",
        "covered",
        "processes",
        "success %",
        "moves",
        "distance (m)",
        "rounds",
    ]);
    let mut reports: Vec<(String, SchemeReport)> = Vec::new();
    for scheme in registry.iter() {
        // Every scheme sees a byte-identical copy of the deployment and
        // is driven through the same two trait calls.
        scheme.supports(&NetworkSpec::of(&network))?;
        let mut net = network.clone();
        let report = scheme.run(&mut net, seed, DriveMode::Classic)?;
        let m = &report.metrics;
        table.add_row(vec![
            format!("{} ({})", scheme.label(), scheme.id()),
            if report.fully_covered { "yes" } else { "NO" }.to_string(),
            m.processes_initiated.to_string(),
            format!("{:.1}", m.success_rate_percent()),
            m.moves.to_string(),
            format!("{:.1}", m.distance),
            m.rounds.to_string(),
        ]);
        reports.push((scheme.id().to_owned(), report));
    }
    println!("{table}");

    let by_id = |id: &str| &reports.iter().find(|(i, _)| i == id).expect("built-in").1;
    let (sr, ar) = (by_id("sr"), by_id("ar"));
    let (sm, vfr) = (by_id("smart"), by_id("vf"));
    println!("observations (cf. the paper's Section 5):");
    println!(
        "  - SR initiated {} processes for {} holes: one each, all successful.",
        sr.metrics.processes_initiated, sr.initial_stats.vacant
    );
    println!(
        "  - AR initiated {:.1}x as many processes and moved {:.1}x the distance of SR.",
        ar.metrics.processes_initiated as f64 / sr.metrics.processes_initiated.max(1) as f64,
        ar.metrics.distance / sr.metrics.distance.max(1e-9),
    );
    println!(
        "  - the global schemes shuffled the whole grid: SMART {} moves, VF {} moves.",
        sm.metrics.moves, vfr.metrics.moves
    );
    println!(
        "  - SR-SC collapsed SR's cascade to {} moves (one per hole), trading {} messages.",
        by_id("sr-sc").metrics.moves,
        by_id("sr-sc").metrics.messages
    );
    Ok(())
}
