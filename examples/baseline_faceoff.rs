//! Every recovery scheme in the repository on the *same* damaged
//! network: SR (the paper's contribution), AR (its baseline), and the two
//! schemes the introduction positions against — SMART-style scan
//! balancing and virtual force.
//!
//! ```text
//! cargo run --example baseline_faceoff            # default N = 150
//! cargo run --example baseline_faceoff -- 30      # spare target N = 30
//! ```

use wsn::baselines::{smart, vf, ArConfig, ArRecovery, SmartConfig, VfConfig};
use wsn::prelude::*;
use wsn::stats::table::TextTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_target: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(150);
    let seed = 20_080_617;

    // The paper's experimental setup: 16x16 grid, R = 10 m, uniform
    // deployment with (N + m*n) enabled nodes.
    let system = GridSystem::for_comm_range(16, 16, 10.0)?;
    let mut rng = SimRng::seed_from_u64(seed);
    let positions = deploy::uniform(&system, n_target + system.cell_count(), &mut rng);
    let network = GridNetwork::new(system, &positions);
    let stats = network.stats();
    println!(
        "deployment: {} enabled nodes, {} holes, {} spares (target N = {n_target})\n",
        stats.enabled, stats.vacant, stats.spares
    );

    let sr = Recovery::new(network.clone(), SrConfig::default().with_seed(seed))?.run();
    let ar = ArRecovery::new(network.clone(), ArConfig::default().with_seed(seed))?.run();
    let sm = smart::run(network.clone(), &SmartConfig { seed });
    let vfr = vf::run(
        network,
        &VfConfig {
            seed,
            ..VfConfig::default()
        },
    );

    let mut table = TextTable::new(vec![
        "scheme",
        "covered",
        "processes",
        "success %",
        "moves",
        "distance (m)",
        "rounds",
    ]);
    let row = |name: &str, covered: bool, m: &Metrics| {
        vec![
            name.to_string(),
            if covered { "yes" } else { "NO" }.to_string(),
            m.processes_initiated.to_string(),
            format!("{:.1}", m.success_rate_percent()),
            m.moves.to_string(),
            format!("{:.1}", m.distance),
            m.rounds.to_string(),
        ]
    };
    table.add_row(row("SR (this paper)", sr.fully_covered, &sr.metrics));
    table.add_row(row("AR (WSNS'07)", ar.fully_covered, &ar.metrics));
    table.add_row(row("SMART scan", sm.fully_covered, &sm.metrics));
    table.add_row(row("virtual force", vfr.fully_covered, &vfr.metrics));
    println!("{table}");

    println!("observations (cf. the paper's Section 5):");
    println!(
        "  - SR initiated {} processes for {} holes: one each, all successful.",
        sr.metrics.processes_initiated, sr.initial_stats.vacant
    );
    println!(
        "  - AR initiated {:.1}x as many processes and moved {:.1}x the distance of SR.",
        ar.metrics.processes_initiated as f64 / sr.metrics.processes_initiated.max(1) as f64,
        ar.metrics.distance / sr.metrics.distance.max(1e-9),
    );
    println!(
        "  - the global schemes shuffled the whole grid: SMART {} moves, VF {} moves.",
        sm.metrics.moves, vfr.metrics.moves
    );
    Ok(())
}
