//! Quickstart: create a network, punch a hole, watch SR repair it —
//! through the uniform scheme API ([`ReplacementScheme`]).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wsn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's physical parameters: communication range R = 10 m gives
    // virtual-grid cells of r = R/sqrt(5) = 4.4721 m (GAF model).
    let system = GridSystem::for_comm_range(8, 8, 10.0)?;
    println!("grid system : {system}");

    // Deploy two sensors in every cell: one future head + one spare.
    let mut rng = SimRng::seed_from_u64(2008);
    let positions = deploy::per_cell_exact(&system, 2, &mut rng);
    let mut network = GridNetwork::new(system, &positions);
    println!("deployed    : {network}");

    // An attacker (or plain battery death) takes out every node of two
    // cells — the paper's "holes".
    for hole in [GridCoord::new(2, 5), GridCoord::new(6, 1)] {
        for node in network.members(hole)?.to_vec() {
            network.disable_node(node)?;
        }
    }
    println!("after fault : {network}");
    let verdict_before = coverage_verdict(&network, 80);
    println!("coverage    : {verdict_before}");

    // SR recovery through the scheme API: build a configured scheme,
    // check the region, and drive the network in place. (The same three
    // lines run any registered scheme — see the baseline_faceoff
    // example; for protocol traces, drop down to `Recovery::new`.)
    let sr = Sr::builder()
        .spare_selection(SpareSelection::ClosestToTarget)
        .build();
    sr.supports(&NetworkSpec::of(&network))?;
    let report = sr.run(&mut network, 2008, DriveMode::Classic)?;

    println!("\n--- result ---");
    println!("{report}");
    let verdict_after = coverage_verdict(&network, 80);
    println!("coverage    : {verdict_after}");
    assert!(report.fully_covered, "Theorem 1: holes must be repaired");
    assert_eq!(
        report.metrics.processes_initiated, 2,
        "synchronization: exactly one process per hole"
    );
    for p in &report.processes {
        println!(
            "process {} : hole {} repaired in {} hops ({} moves, {:.1} m)",
            p.id, p.hole, p.hops, p.moves, p.distance
        );
    }

    // Theorem 2 cross-check: what the analysis predicts for this network.
    let l = 8 * 8 - 1;
    let n = report.final_stats.spares;
    println!(
        "analysis    : with N = {n} spares left, the next replacement would take {:.3} moves on average",
        analysis::expected_moves(l, n.max(1)),
    );
    Ok(())
}
