//! # wsn — complete-coverage hole recovery for wireless sensor networks
//!
//! A full reproduction of *Mobility Control for Complete Coverage in
//! Wireless Sensor Networks* (Zhen Jiang, Jie Wu, Robert Kline, Jennifer
//! Krantz — ICDCS 2008 Workshops), as a Rust workspace. This facade crate
//! re-exports every subsystem; depend on it to get the whole stack, or on
//! the individual crates for narrower builds.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geometry`] | `wsn-geometry` | points, rectangles, disks, cell geometry |
//! | [`simcore`] | `wsn-simcore` | deterministic RNG, round engine, faults, traces, metrics |
//! | [`grid`] | `wsn-grid` | the GAF virtual grid: occupancy, heads, deployment, coverage checks |
//! | [`hamilton`] | `wsn-hamilton` | directed Hamilton cycles and the odd×odd dual-path structure |
//! | [`coverage`] | `wsn-coverage` | **SR** — the paper's synchronized snake-like replacement + Theorem 2 analysis |
//! | [`baselines`] | `wsn-baselines` | AR (the paper's comparator), virtual force, SMART-style scans |
//! | [`stats`] | `wsn-stats` | summaries, confidence intervals, ASCII plots, CSV |
//!
//! # Quickstart
//!
//! Every replacement scheme is driven through the object-safe
//! [`ReplacementScheme`](wsn_coverage::ReplacementScheme) trait; the
//! registry ([`wsn_baselines::builtins`]) maps stable string ids
//! (`"sr"`, `"ar"`, …) to the five built-ins.
//!
//! ```
//! use wsn::prelude::*;
//!
//! // The paper's setup: R = 10 m communication range => 4.4721 m cells.
//! let system = GridSystem::for_comm_range(8, 8, 10.0)?;
//! let mut rng = SimRng::seed_from_u64(42);
//!
//! // Deploy 2 nodes per cell, then lose an entire cell to a fault.
//! let positions = deploy::per_cell_exact(&system, 2, &mut rng);
//! let mut network = GridNetwork::new(system, &positions);
//! let victims: Vec<_> = network.members(GridCoord::new(3, 3))?.to_vec();
//! for id in victims {
//!     network.disable_node(id)?;
//! }
//! assert_eq!(network.vacant_count(), 1);
//!
//! // SR recovery through the scheme API: exactly one replacement
//! // process, hole filled, network recovered in place.
//! let sr = Sr::builder()
//!     .spare_selection(SpareSelection::ClosestToTarget)
//!     .build();
//! sr.supports(&NetworkSpec::of(&network))?;
//! let report = sr.run(&mut network, 42, DriveMode::Classic)?;
//! assert!(report.fully_covered);
//! assert_eq!(report.metrics.processes_initiated, 1);
//! assert_eq!(network.stats(), report.final_stats);
//!
//! // Same two calls run any registered scheme — here AR, by id.
//! let ar_report = builtins()
//!     .get("ar")
//!     .expect("built-in")
//!     .run(&mut network.clone(), 42, DriveMode::Classic)?;
//! assert!(ar_report.fully_covered);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wsn_baselines as baselines;
pub use wsn_coverage as coverage;
pub use wsn_geometry as geometry;
pub use wsn_grid as grid;
pub use wsn_hamilton as hamilton;
pub use wsn_simcore as simcore;
pub use wsn_stats as stats;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use wsn_baselines::{builtins, Ar, Smart, Vf};
    pub use wsn_coverage::{
        analysis, DriveMode, NetworkSpec, Recovery, ReplacementScheme, SchemeId, SchemeRegistry,
        SchemeReport, ShortcutRecovery, SpareSelection, Sr, SrConfig, SrError, SrSc, Unsupported,
    };
    pub use wsn_geometry::{Disk, Point2, Rect, Vec2};
    pub use wsn_grid::{
        coverage_verdict, deploy, render, GridCoord, GridNetwork, GridSystem, HeadElection,
        RegionMask, RegionShape,
    };
    pub use wsn_hamilton::{CycleTopology, DualPathCycle, HamiltonCycle, MaskedCycle};
    pub use wsn_simcore::{
        fault::{FaultEvent, FaultPlan, Jammer},
        Battery, Metrics, NodeId, SimRng, TraceEvent,
    };
}
