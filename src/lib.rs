//! # wsn — complete-coverage hole recovery for wireless sensor networks
//!
//! A full reproduction of *Mobility Control for Complete Coverage in
//! Wireless Sensor Networks* (Zhen Jiang, Jie Wu, Robert Kline, Jennifer
//! Krantz — ICDCS 2008 Workshops), as a Rust workspace. This facade crate
//! re-exports every subsystem; depend on it to get the whole stack, or on
//! the individual crates for narrower builds.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geometry`] | `wsn-geometry` | points, rectangles, disks, cell geometry |
//! | [`simcore`] | `wsn-simcore` | deterministic RNG, round engine, faults, traces, metrics |
//! | [`grid`] | `wsn-grid` | the GAF virtual grid: occupancy, heads, deployment, coverage checks |
//! | [`hamilton`] | `wsn-hamilton` | directed Hamilton cycles and the odd×odd dual-path structure |
//! | [`coverage`] | `wsn-coverage` | **SR** — the paper's synchronized snake-like replacement + Theorem 2 analysis |
//! | [`baselines`] | `wsn-baselines` | AR (the paper's comparator), virtual force, SMART-style scans |
//! | [`stats`] | `wsn-stats` | summaries, confidence intervals, ASCII plots, CSV |
//!
//! # Quickstart
//!
//! ```
//! use wsn::prelude::*;
//!
//! // The paper's setup: R = 10 m communication range => 4.4721 m cells.
//! let system = GridSystem::for_comm_range(8, 8, 10.0)?;
//! let mut rng = SimRng::seed_from_u64(42);
//!
//! // Deploy 2 nodes per cell, then lose an entire cell to a fault.
//! let positions = deploy::per_cell_exact(&system, 2, &mut rng);
//! let mut network = GridNetwork::new(system, &positions);
//! let victims: Vec<_> = network.members(GridCoord::new(3, 3))?.to_vec();
//! for id in victims {
//!     network.disable_node(id)?;
//! }
//! assert_eq!(network.vacant_cells().len(), 1);
//!
//! // SR recovery: exactly one replacement process, hole filled.
//! let mut recovery = Recovery::new(network, SrConfig::default().with_seed(42))?;
//! let report = recovery.run();
//! assert!(report.fully_covered);
//! assert_eq!(report.metrics.processes_initiated, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wsn_baselines as baselines;
pub use wsn_coverage as coverage;
pub use wsn_geometry as geometry;
pub use wsn_grid as grid;
pub use wsn_hamilton as hamilton;
pub use wsn_simcore as simcore;
pub use wsn_stats as stats;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use wsn_coverage::{
        analysis, Recovery, RecoveryReport, ShortcutRecovery, SpareSelection, SrConfig, SrError,
    };
    pub use wsn_geometry::{Disk, Point2, Rect, Vec2};
    pub use wsn_grid::{
        coverage_verdict, deploy, render, GridCoord, GridNetwork, GridSystem, HeadElection,
        RegionMask, RegionShape,
    };
    pub use wsn_hamilton::{CycleTopology, DualPathCycle, HamiltonCycle, MaskedCycle};
    pub use wsn_simcore::{
        fault::{FaultEvent, FaultPlan, Jammer},
        Battery, Metrics, NodeId, SimRng, TraceEvent,
    };
}
