use std::fmt;

/// Errors from Hamilton-structure construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HamiltonError {
    /// Grids smaller than 2×2 (for cycles) or 3×3 (for dual paths) have
    /// no usable structure.
    TooSmall {
        /// Requested columns.
        cols: u16,
        /// Requested rows.
        rows: u16,
    },
    /// A Hamilton cycle requires at least one even side; use
    /// [`crate::DualPathCycle`] (or [`crate::CycleTopology::build`])
    /// for odd×odd grids.
    BothSidesOdd {
        /// Requested columns.
        cols: u16,
        /// Requested rows.
        rows: u16,
    },
    /// The dual-path construction is only defined for odd×odd grids; use
    /// [`crate::HamiltonCycle`] when a side is even.
    NotBothOdd {
        /// Requested columns.
        cols: u16,
        /// Requested rows.
        rows: u16,
    },
    /// A masked ring needs at least two enabled cells (a walk must have
    /// somewhere to go).
    MaskTooSmall {
        /// Enabled cells in the offending mask.
        enabled: usize,
    },
}

impl fmt::Display for HamiltonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HamiltonError::TooSmall { cols, rows } => {
                write!(f, "grid {cols}x{rows} too small for a Hamilton structure")
            }
            HamiltonError::BothSidesOdd { cols, rows } => write!(
                f,
                "no Hamilton cycle exists in {cols}x{rows} (both sides odd); use the dual-path construction"
            ),
            HamiltonError::NotBothOdd { cols, rows } => write!(
                f,
                "dual-path construction requires both sides odd, got {cols}x{rows}"
            ),
            HamiltonError::MaskTooSmall { enabled } => write!(
                f,
                "masked ring needs at least 2 enabled cells, got {enabled}"
            ),
        }
    }
}

impl std::error::Error for HamiltonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            HamiltonError::TooSmall { cols: 1, rows: 1 },
            HamiltonError::BothSidesOdd { cols: 3, rows: 3 },
            HamiltonError::NotBothOdd { cols: 4, rows: 3 },
            HamiltonError::MaskTooSmall { enabled: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HamiltonError>();
    }
}
