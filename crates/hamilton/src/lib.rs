//! Directed Hamilton cycles over `n × m` grid systems.
//!
//! The synchronization at the heart of the paper threads all grid cells on
//! a **directed Hamilton cycle**: every head monitors the successor cell,
//! so each vacant cell has exactly one watcher and therefore exactly one
//! replacement process. This crate builds and validates the two
//! constructions the paper uses:
//!
//! * [`HamiltonCycle`] — a true directed Hamilton cycle, which exists in a
//!   grid graph iff at least one side is even (a serpentine construction;
//!   the paper's Figure 1(b) shows the 4×5 case).
//! * [`DualPathCycle`] — the paper's Section 4 construction for grids with
//!   **both sides odd**, where no Hamilton cycle exists: two directed
//!   Hamilton paths sharing `m·n − 2` cells. Path one runs `A → D → … →
//!   C → B`; path two runs `B → D → … → C → A`, where `C` is the common
//!   predecessor and `D` the common successor of the special cells `A`
//!   and `B` (Figure 4 shows the 5×5 case).
//! * [`MaskedCycle`] — the irregular-region extension: a boustrophedon
//!   path cover of a [`wsn_grid::RegionMask`]'s enabled cells, closed
//!   into one virtual directed ring so SR's one-monitor-per-cell
//!   synchronization survives obstacles (L-shapes, annuli, corridors).
//! * [`CycleTopology`] — picks the right construction for given
//!   dimensions (or a mask, via [`CycleTopology::build_masked`]) and
//!   presents the uniform *backward-walk* interface the replacement
//!   protocol consumes ([`BackwardStep`]).
//!
//! # Example
//!
//! ```
//! use wsn_hamilton::{CycleTopology, HamiltonCycle};
//! use wsn_grid::GridCoord;
//!
//! let cycle = HamiltonCycle::build(5, 4)?; // 5 cols x 4 rows (even side)
//! assert_eq!(cycle.len(), 20);
//! let c = GridCoord::new(2, 2);
//! assert_eq!(cycle.predecessor(cycle.successor(c)), c);
//!
//! // Both sides odd: automatic dual-path construction.
//! let topo = CycleTopology::build(5, 5)?;
//! assert!(matches!(topo, CycleTopology::Dual(_)));
//! # Ok::<(), wsn_hamilton::HamiltonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod dual;
mod error;
mod masked;
mod topology;
pub mod validate;

pub use cycle::HamiltonCycle;
pub use dual::DualPathCycle;
pub use error::HamiltonError;
pub use masked::MaskedCycle;
pub use topology::{BackwardStep, CycleTopology};

/// Result alias for topology-construction errors.
pub type Result<T> = std::result::Result<T, HamiltonError>;
