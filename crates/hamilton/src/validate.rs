//! Structural validation of Hamilton constructions.
//!
//! Used by unit tests, property tests and the `figures` harness sanity
//! pass. Validation returns a human-readable description of the first
//! violation, which makes proptest shrinking output immediately
//! actionable.

use std::collections::HashSet;

use wsn_grid::{GridCoord, RegionMask};

use crate::{DualPathCycle, HamiltonCycle, MaskedCycle};

/// Checks that `seq` is a Hamilton *path* over exactly the cells in
/// `expected`: consecutive cells 4-adjacent, no repeats, full coverage.
pub fn validate_path(seq: &[GridCoord], expected: &HashSet<GridCoord>) -> Result<(), String> {
    if seq.len() != expected.len() {
        return Err(format!(
            "path visits {} cells, expected {}",
            seq.len(),
            expected.len()
        ));
    }
    let mut seen = HashSet::with_capacity(seq.len());
    for (i, &c) in seq.iter().enumerate() {
        if !expected.contains(&c) {
            return Err(format!("cell {c} at index {i} not in expected set"));
        }
        if !seen.insert(c) {
            return Err(format!("cell {c} visited twice (index {i})"));
        }
        if i > 0 && !seq[i - 1].is_adjacent(c) {
            return Err(format!(
                "cells {} (index {}) and {c} (index {i}) not adjacent",
                seq[i - 1],
                i - 1
            ));
        }
    }
    Ok(())
}

/// Checks that `cycle` is a directed Hamilton cycle: a Hamilton path over
/// all cells whose last cell is adjacent to its first, with a consistent
/// position index.
pub fn validate_cycle(cycle: &HamiltonCycle) -> Result<(), String> {
    let all: HashSet<GridCoord> = (0..cycle.cols())
        .flat_map(|x| (0..cycle.rows()).map(move |y| GridCoord::new(x, y)))
        .collect();
    validate_path(cycle.order(), &all)?;
    let first = cycle.order()[0];
    let last = *cycle.order().last().expect("cycles are nonempty");
    if !last.is_adjacent(first) {
        return Err(format!("cycle does not close: {last} !~ {first}"));
    }
    for (k, &c) in cycle.order().iter().enumerate() {
        if cycle.position(c) != k {
            return Err(format!("position index wrong for {c}"));
        }
    }
    Ok(())
}

/// Checks the paper's Section-4 dual-path structure:
///
/// * path one (`A → D → … → C → B`) and path two (`B → D → … → C → A`)
///   are both Hamilton paths over the full grid;
/// * they share exactly the `m·n − 2` chain cells;
/// * `C` is the common predecessor of `A` and `B` (i.e. `C` is adjacent
///   to both and immediately precedes them on the respective paths) and
///   `D` the common successor.
pub fn validate_dual(dual: &DualPathCycle) -> Result<(), String> {
    let all: HashSet<GridCoord> = (0..dual.cols())
        .flat_map(|x| (0..dual.rows()).map(move |y| GridCoord::new(x, y)))
        .collect();
    let p1 = dual.path_one();
    let p2 = dual.path_two();
    validate_path(&p1, &all).map_err(|e| format!("path one: {e}"))?;
    validate_path(&p2, &all).map_err(|e| format!("path two: {e}"))?;

    let (a, b, c, d) = (dual.a(), dual.b(), dual.c(), dual.d());
    if p1[0] != a || *p1.last().expect("nonempty") != b {
        return Err("path one must run from A to B".into());
    }
    if p2[0] != b || *p2.last().expect("nonempty") != a {
        return Err("path two must run from B to A".into());
    }
    if p1[1] != d || p2[1] != d {
        return Err("D must be the common successor of A and B".into());
    }
    if p1[p1.len() - 2] != c || p2[p2.len() - 2] != c {
        return Err("C must be the common predecessor of A and B".into());
    }
    // Shared chain: everything except the endpoints, identical on both
    // paths and of length m*n - 2.
    let chain1 = &p1[1..p1.len() - 1];
    let chain2 = &p2[1..p2.len() - 1];
    if chain1 != chain2 {
        return Err("paths do not share the interior chain".into());
    }
    if chain1.len() != all.len() - 2 {
        return Err(format!(
            "shared chain has {} cells, expected {}",
            chain1.len(),
            all.len() - 2
        ));
    }
    if chain1 != dual.chain() {
        return Err("stored chain differs from path interiors".into());
    }
    // A, B, C, D mutual adjacency as required by the construction.
    for (x, y, name) in [(a, d, "A-D"), (b, d, "B-D"), (a, c, "A-C"), (b, c, "B-C")] {
        if !x.is_adjacent(y) {
            return Err(format!("{name} not adjacent ({x} !~ {y})"));
        }
    }
    Ok(())
}

/// Checks the masked ring against its region: the proof obligation of
/// the irregular-region construction.
///
/// * every **enabled** cell of `mask` is on exactly one directed path of
///   the cover (equivalently: appears exactly once in the ring order);
/// * no disabled cell appears anywhere;
/// * within each path, consecutive cells are 4-adjacent;
/// * the position index is consistent with the ring order;
/// * every virtual connector sits at a path boundary (inside a path all
///   steps are adjacent).
pub fn validate_masked(ring: &MaskedCycle, mask: &RegionMask) -> Result<(), String> {
    if ring.cols() != mask.cols() || ring.rows() != mask.rows() {
        return Err(format!(
            "ring is {}x{} but mask is {}x{}",
            ring.cols(),
            ring.rows(),
            mask.cols(),
            mask.rows()
        ));
    }
    let enabled: HashSet<GridCoord> = mask.iter_enabled().collect();
    if ring.len() != enabled.len() {
        return Err(format!(
            "ring visits {} cells, mask enables {}",
            ring.len(),
            enabled.len()
        ));
    }
    let mut seen = HashSet::with_capacity(ring.len());
    for (k, &c) in ring.order().iter().enumerate() {
        if !enabled.contains(&c) {
            return Err(format!("disabled cell {c} at ring position {k}"));
        }
        if !seen.insert(c) {
            return Err(format!("cell {c} on two paths (ring position {k})"));
        }
        if ring.position(c) != k {
            return Err(format!("position index wrong for {c}"));
        }
    }
    // seen == enabled now follows from equal sizes + subset.
    let mut covered = 0usize;
    for segment in ring.segments() {
        if segment.is_empty() {
            return Err("empty path in the cover".into());
        }
        for w in segment.windows(2) {
            if !w[0].is_adjacent(w[1]) {
                return Err(format!(
                    "non-adjacent step {} -> {} inside a path",
                    w[0], w[1]
                ));
            }
        }
        covered += segment.len();
    }
    if covered != ring.len() {
        return Err(format!(
            "paths cover {covered} cells, ring has {}",
            ring.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_path_rejects_gaps_and_repeats() {
        let cells: HashSet<GridCoord> = [
            GridCoord::new(0, 0),
            GridCoord::new(1, 0),
            GridCoord::new(1, 1),
        ]
        .into_iter()
        .collect();
        // Good path.
        assert!(validate_path(
            &[
                GridCoord::new(0, 0),
                GridCoord::new(1, 0),
                GridCoord::new(1, 1)
            ],
            &cells
        )
        .is_ok());
        // Non-adjacent jump.
        assert!(validate_path(
            &[
                GridCoord::new(0, 0),
                GridCoord::new(1, 1),
                GridCoord::new(1, 0)
            ],
            &cells
        )
        .is_err());
        // Repeat.
        assert!(validate_path(
            &[
                GridCoord::new(0, 0),
                GridCoord::new(1, 0),
                GridCoord::new(0, 0)
            ],
            &cells
        )
        .is_err());
        // Wrong length.
        assert!(validate_path(&[GridCoord::new(0, 0)], &cells).is_err());
        // Foreign cell.
        assert!(validate_path(
            &[
                GridCoord::new(0, 0),
                GridCoord::new(0, 1),
                GridCoord::new(1, 1)
            ],
            &cells
        )
        .is_err());
    }
}
