//! The serpentine directed Hamilton cycle for grids with an even side.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_grid::GridCoord;

use crate::{HamiltonError, Result};

/// A directed Hamilton cycle over a `cols × rows` grid.
///
/// Exists iff `cols·rows` is even (for grid graphs with both sides ≥ 2,
/// that is iff at least one side is even). The construction, for even
/// `rows` (and its transpose for even `cols`):
///
/// ```text
/// rows = 4, cols = 5 (the paper's Figure 1(b) size):
///
///   y=3  ↓ ← ← ← ←      column 0 carries the southbound return;
///   y=2  ↓ → → → ↑      rows 1..rows-1 serpentine over x ≥ 1;
///   y=1  ↓ ← ← ← ↑      row 0 runs east from the origin.
///   y=0  O → → → ↑
/// ```
///
/// The cycle direction is the paper's "direction of node moving": a
/// replacement spare moves from a cell to its *successor*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HamiltonCycle {
    cols: u16,
    rows: u16,
    /// Cells in cycle order; `order[k+1]` is the successor of `order[k]`
    /// and `order[0]` is the successor of `order.last()`.
    order: Vec<GridCoord>,
    /// Position of each cell (dense row-major index) in `order`.
    position: Vec<u32>,
}

impl HamiltonCycle {
    /// Builds the cycle for a `cols × rows` grid.
    ///
    /// # Errors
    ///
    /// [`HamiltonError::TooSmall`] when either side is below 2, and
    /// [`HamiltonError::BothSidesOdd`] when no Hamilton cycle exists
    /// (both sides odd) — odd×odd grids use
    /// [`crate::DualPathCycle`] instead.
    pub fn build(cols: u16, rows: u16) -> Result<HamiltonCycle> {
        if cols < 2 || rows < 2 {
            return Err(HamiltonError::TooSmall { cols, rows });
        }
        if cols % 2 == 1 && rows % 2 == 1 {
            return Err(HamiltonError::BothSidesOdd { cols, rows });
        }
        let order = if rows.is_multiple_of(2) {
            serpentine(cols, rows, false)
        } else {
            // cols must be even here; build the transposed cycle and swap.
            serpentine(rows, cols, true)
        };
        let mut position = vec![u32::MAX; cols as usize * rows as usize];
        for (k, c) in order.iter().enumerate() {
            position[c.y as usize * cols as usize + c.x as usize] = k as u32;
        }
        debug_assert!(position.iter().all(|&p| p != u32::MAX));
        Ok(HamiltonCycle {
            cols,
            rows,
            order,
            position,
        })
    }

    /// Grid columns.
    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Grid rows.
    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of cells on the cycle (= all cells of the grid).
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always `false`: a cycle has at least 2×2 cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The cells in cycle order.
    #[inline]
    pub fn order(&self) -> &[GridCoord] {
        &self.order
    }

    /// Position of `cell` on the cycle (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid (topologies and networks are
    /// constructed from the same dimensions, so this is a wiring bug).
    pub fn position(&self, cell: GridCoord) -> usize {
        assert!(
            cell.x < self.cols && cell.y < self.rows,
            "cell {cell} outside {}x{} cycle",
            self.cols,
            self.rows
        );
        self.position[cell.y as usize * self.cols as usize + cell.x as usize] as usize
    }

    /// The cell the head of `cell` monitors (next along the cycle).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    pub fn successor(&self, cell: GridCoord) -> GridCoord {
        let k = self.position(cell);
        self.order[(k + 1) % self.order.len()]
    }

    /// The cell whose head monitors `cell` (previous along the cycle).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    pub fn predecessor(&self, cell: GridCoord) -> GridCoord {
        let k = self.position(cell);
        self.order[(k + self.order.len() - 1) % self.order.len()]
    }

    /// Forward hop count from `from` to `to` along the cycle direction
    /// (0 when equal).
    ///
    /// # Panics
    ///
    /// Panics if either cell is outside the grid.
    pub fn forward_distance(&self, from: GridCoord, to: GridCoord) -> usize {
        let a = self.position(from);
        let b = self.position(to);
        (b + self.order.len() - a) % self.order.len()
    }

    /// Length `L` of the directed Hamilton *path* deduced by removing one
    /// vacant cell from the cycle, in hops: `m·n − 1` (Theorem 2's `L`).
    pub fn deduced_path_hops(&self) -> usize {
        self.order.len() - 1
    }
}

impl fmt::Display for HamiltonCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hamilton cycle over {}x{}", self.cols, self.rows)
    }
}

/// The serpentine construction for even `rows`; `transpose` swaps x/y in
/// the emitted coordinates (used when only `cols` is even).
fn serpentine(cols: u16, rows: u16, transpose: bool) -> Vec<GridCoord> {
    debug_assert!(rows.is_multiple_of(2) && cols >= 2 && rows >= 2);
    let mut out = Vec::with_capacity(cols as usize * rows as usize);
    let mut push = |x: u16, y: u16| {
        out.push(if transpose {
            GridCoord::new(y, x)
        } else {
            GridCoord::new(x, y)
        });
    };
    // Row 0: east from the origin.
    for x in 0..cols {
        push(x, 0);
    }
    // Rows 1..rows-1 serpentine over x in [1, cols-1]. Row 1 runs west
    // (we arrive at (cols-1, 0) and step north), row 2 east, and so on;
    // with `rows` even the final row `rows-1` runs west and ends at x=1.
    for y in 1..rows {
        if y % 2 == 1 {
            for x in (1..cols).rev() {
                push(x, y);
            }
        } else {
            for x in 1..cols {
                push(x, y);
            }
        }
    }
    // Southbound return down column 0.
    for y in (1..rows).rev() {
        push(0, y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_cycle;

    #[test]
    fn build_validates_dimensions() {
        assert_eq!(
            HamiltonCycle::build(1, 4).unwrap_err(),
            HamiltonError::TooSmall { cols: 1, rows: 4 }
        );
        assert_eq!(
            HamiltonCycle::build(4, 1).unwrap_err(),
            HamiltonError::TooSmall { cols: 4, rows: 1 }
        );
        assert_eq!(
            HamiltonCycle::build(3, 5).unwrap_err(),
            HamiltonError::BothSidesOdd { cols: 3, rows: 5 }
        );
    }

    #[test]
    fn papers_4x5_grid() {
        // Figure 1(b): 4x5 grid system; L = 19 per Figure 3(a).
        let c = HamiltonCycle::build(4, 5).unwrap();
        assert_eq!(c.len(), 20);
        assert_eq!(c.deduced_path_hops(), 19);
        validate_cycle(&c).unwrap();
    }

    #[test]
    fn papers_16x16_grid() {
        let c = HamiltonCycle::build(16, 16).unwrap();
        assert_eq!(c.len(), 256);
        assert_eq!(c.deduced_path_hops(), 255); // Figure 3(b): L = 255
        validate_cycle(&c).unwrap();
    }

    #[test]
    fn all_even_sided_grids_up_to_12_validate() {
        for cols in 2u16..=12 {
            for rows in 2u16..=12 {
                if cols % 2 == 1 && rows % 2 == 1 {
                    continue;
                }
                let c = HamiltonCycle::build(cols, rows)
                    .unwrap_or_else(|e| panic!("{cols}x{rows}: {e}"));
                validate_cycle(&c).unwrap_or_else(|m| panic!("{cols}x{rows}: {m}"));
            }
        }
    }

    #[test]
    fn successor_predecessor_inverse() {
        let c = HamiltonCycle::build(6, 4).unwrap();
        for &cell in c.order() {
            assert_eq!(c.predecessor(c.successor(cell)), cell);
            assert_eq!(c.successor(c.predecessor(cell)), cell);
            assert!(cell.is_adjacent(c.successor(cell)));
        }
    }

    #[test]
    fn forward_distance_wraps() {
        let c = HamiltonCycle::build(2, 2).unwrap();
        let o = c.order().to_vec();
        assert_eq!(c.forward_distance(o[0], o[0]), 0);
        assert_eq!(c.forward_distance(o[0], o[3]), 3);
        assert_eq!(c.forward_distance(o[3], o[0]), 1);
    }

    #[test]
    fn starts_at_origin() {
        // The construction anchors at (0,0), matching Figure 1(b)'s
        // labeled origin.
        let c = HamiltonCycle::build(4, 4).unwrap();
        assert_eq!(c.order()[0], GridCoord::new(0, 0));
        assert_eq!(c.position(GridCoord::new(0, 0)), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn position_out_of_bounds_panics() {
        let c = HamiltonCycle::build(4, 4).unwrap();
        c.position(GridCoord::new(4, 0));
    }

    #[test]
    fn transposed_construction_for_even_cols_odd_rows() {
        let c = HamiltonCycle::build(4, 5).unwrap(); // rows odd, cols even
        validate_cycle(&c).unwrap();
        let c2 = HamiltonCycle::build(6, 3).unwrap();
        validate_cycle(&c2).unwrap();
    }

    #[test]
    fn display_nonempty() {
        assert!(!HamiltonCycle::build(4, 4).unwrap().to_string().is_empty());
    }
}
