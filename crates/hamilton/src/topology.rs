//! The uniform interface the replacement protocol consumes.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_grid::{GridCoord, RegionMask};

use crate::{DualPathCycle, HamiltonCycle, MaskedCycle, Result};

#[cfg(doc)]
use crate::HamiltonError;

/// One step of the backward walk a replacement process makes from a hole
/// toward a spare node. Returned by [`CycleTopology::backward_from`],
/// which is *hole-aware* because Algorithm 2's case analysis changes the
/// step taken at the special cells depending on which cell is being
/// recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackwardStep {
    /// A single predecessor cell: probe it for a spare; otherwise it
    /// relays (its head moves forward) and the walk continues from it.
    One(GridCoord),
    /// The dual-path fork at `D`: both `A` and `B` precede `D`. The
    /// protocol probes **both** for spares (Algorithm 2 case three:
    /// "either A or B will be notified when any of them has at least one
    /// spare node"), preferring `A`, and relays through an occupied
    /// special when neither has spares. A special equal to the hole is
    /// skipped.
    ForkAB {
        /// Special cell `A` (preferred).
        a: GridCoord,
        /// Special cell `B`.
        b: GridCoord,
    },
    /// Algorithm 2 case two, at `C` while recovering hole `D`: "grid A
    /// with spare nodes is always preferred before the replacement
    /// continues to stretch along path one". The protocol probes `probe`
    /// for a spare but does **not** relay through it; if the probe has no
    /// spare the walk continues at `next`.
    ProbeThen {
        /// The spare-probe cell (`A`).
        probe: GridCoord,
        /// Where the walk relays if the probe has no spare.
        next: GridCoord,
    },
}

/// The cycle structure for a grid, hiding the even/odd distinction.
///
/// * Even-sided grids get a true directed [`HamiltonCycle`]
///   (Algorithm 1's setting).
/// * Odd×odd grids get the [`DualPathCycle`] of Section 4
///   (Algorithm 2's setting).
///
/// The replacement protocol needs three questions answered:
///
/// 1. *Who monitors cell `g`?* — [`CycleTopology::monitors`] (the head
///    that watches `g` and initiates when `g` is vacant).
/// 2. *Where does the backward walk for hole `h` go from cell `u`?* —
///    [`CycleTopology::backward_from`].
/// 3. *How long can a walk stretch?* — [`CycleTopology::max_walk_hops`]
///    (Theorem 2's `L`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CycleTopology {
    /// A single directed Hamilton cycle (at least one even side).
    Single(HamiltonCycle),
    /// The dual-path structure (both sides odd).
    Dual(DualPathCycle),
    /// The masked virtual ring for irregular regions (some cells
    /// disabled by a [`RegionMask`]).
    Masked(MaskedCycle),
}

impl CycleTopology {
    /// Builds the appropriate structure for a full `cols × rows` grid.
    ///
    /// # Errors
    ///
    /// [`HamiltonError::TooSmall`] for grids below 2×2 (or odd×odd grids
    /// below 3×3, which have no dual-path structure either).
    pub fn build(cols: u16, rows: u16) -> Result<CycleTopology> {
        if cols % 2 == 1 && rows % 2 == 1 {
            DualPathCycle::build(cols, rows).map(CycleTopology::Dual)
        } else {
            HamiltonCycle::build(cols, rows).map(CycleTopology::Single)
        }
    }

    /// Builds the appropriate structure for an arbitrary region: the
    /// paper's exact constructions when `mask` is the full rectangle,
    /// the masked virtual ring otherwise.
    ///
    /// # Errors
    ///
    /// As for [`CycleTopology::build`] on full masks;
    /// [`HamiltonError::MaskTooSmall`] when fewer than two cells are
    /// enabled.
    pub fn build_masked(mask: &RegionMask) -> Result<CycleTopology> {
        if mask.is_full() {
            CycleTopology::build(mask.cols(), mask.rows())
        } else {
            MaskedCycle::build(mask).map(CycleTopology::Masked)
        }
    }

    /// Grid columns.
    pub fn cols(&self) -> u16 {
        match self {
            CycleTopology::Single(c) => c.cols(),
            CycleTopology::Dual(d) => d.cols(),
            CycleTopology::Masked(m) => m.cols(),
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> u16 {
        match self {
            CycleTopology::Single(c) => c.rows(),
            CycleTopology::Dual(d) => d.rows(),
            CycleTopology::Masked(m) => m.rows(),
        }
    }

    /// Number of cells on the structure: every grid cell for the full
    /// constructions, the enabled cells for a masked ring.
    pub fn cell_count(&self) -> usize {
        match self {
            CycleTopology::Masked(m) => m.len(),
            _ => self.cols() as usize * self.rows() as usize,
        }
    }

    /// The cell whose head monitors `g` and initiates a replacement when
    /// `g` becomes vacant.
    ///
    /// Single cycle: the predecessor of `g` — the paper's "one and only
    /// one" synchronization. Dual paths (Algorithm 2): `A`/`B` are
    /// monitored by `C` (case one); `D` only by `B` (case two: "only B
    /// will initiate"); chain cells by their chain predecessor (case
    /// three). Masked ring: the ring predecessor (the same "one and only
    /// one" property on the irregular region).
    ///
    /// # Panics
    ///
    /// Panics if `g` is outside the grid (or, on masked rings, disabled).
    pub fn monitors(&self, g: GridCoord) -> GridCoord {
        match self {
            CycleTopology::Single(c) => c.predecessor(g),
            CycleTopology::Masked(m) => m.predecessor(g),
            CycleTopology::Dual(d) => {
                if g == d.a() || g == d.b() {
                    d.c()
                } else if g == d.d() {
                    d.b()
                } else {
                    let k = d
                        .chain_position(g)
                        .expect("non-special cells are on the chain");
                    debug_assert!(k > 0, "k = 0 is D, handled above");
                    d.chain()[k - 1]
                }
            }
        }
    }

    /// The cells the head at `u` monitors — the inverse of
    /// [`CycleTopology::monitors`]. Usually one cell; on dual-path grids
    /// `C` watches both `A` and `B`, `B` additionally watches `D`, and
    /// `A` watches nothing (case two gives `D`'s initiation to `B`
    /// alone).
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside the grid.
    pub fn monitored_by(&self, u: GridCoord) -> Vec<GridCoord> {
        match self {
            CycleTopology::Single(c) => vec![c.successor(u)],
            CycleTopology::Masked(m) => vec![m.successor(u)],
            CycleTopology::Dual(d) => {
                if u == d.c() {
                    vec![d.a(), d.b()]
                } else if u == d.b() {
                    vec![d.d()]
                } else if u == d.a() {
                    vec![]
                } else {
                    let k = d
                        .chain_position(u)
                        .expect("non-special cells are on the chain");
                    debug_assert!(k + 1 < d.chain().len(), "chain end is C, handled above");
                    vec![d.chain()[k + 1]]
                }
            }
        }
    }

    /// Where the backward walk recovering `hole` proceeds from cell `u`
    /// (the cell a notification is sent to when `u` has no spare).
    ///
    /// Returns `None` when the walk is exhausted: the next cell would be
    /// the hole itself, i.e. the process has gone all the way around
    /// without finding a spare.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `hole` is outside the grid, or if `u == hole`
    /// (a hole has no head to continue a walk).
    pub fn backward_from(&self, u: GridCoord, hole: GridCoord) -> Option<BackwardStep> {
        assert_ne!(u, hole, "walk cannot continue from the hole itself");
        match self {
            CycleTopology::Single(c) => {
                let p = c.predecessor(u);
                (p != hole).then_some(BackwardStep::One(p))
            }
            CycleTopology::Masked(m) => {
                let p = m.predecessor(u);
                (p != hole).then_some(BackwardStep::One(p))
            }
            CycleTopology::Dual(d) => {
                if u == d.a() || u == d.b() {
                    (d.c() != hole).then_some(BackwardStep::One(d.c()))
                } else if u == d.d() {
                    // Both specials precede D. If one of them is the hole
                    // the fork degenerates to the other.
                    if hole == d.a() {
                        Some(BackwardStep::One(d.b()))
                    } else if hole == d.b() {
                        Some(BackwardStep::One(d.a()))
                    } else {
                        Some(BackwardStep::ForkAB { a: d.a(), b: d.b() })
                    }
                } else {
                    let k = d
                        .chain_position(u)
                        .expect("non-special cells are on the chain");
                    if u == d.c() && hole == d.d() {
                        // Algorithm 2 case two: probe A before continuing
                        // along path one.
                        return Some(BackwardStep::ProbeThen {
                            probe: d.a(),
                            next: d.chain()[k - 1],
                        });
                    }
                    debug_assert!(k > 0, "k = 0 is D, handled above");
                    let p = d.chain()[k - 1];
                    (p != hole).then_some(BackwardStep::One(p))
                }
            }
        }
    }

    /// Theorem 2's `L`: the maximum number of hops a replacement walk can
    /// stretch. `m·n − 1` for a single cycle; `m·n − 2` for dual paths
    /// (Corollary 2 — the walk traverses the shared chain and resolves
    /// the `A`/`B` fork by notification, not traversal); `enabled − 1`
    /// for a masked ring.
    pub fn max_walk_hops(&self) -> usize {
        match self {
            CycleTopology::Single(c) => c.deduced_path_hops(),
            CycleTopology::Dual(d) => d.corollary_hops(),
            CycleTopology::Masked(m) => m.max_walk_hops(),
        }
    }

    /// `true` when this is the dual-path variant.
    pub fn is_dual(&self) -> bool {
        matches!(self, CycleTopology::Dual(_))
    }

    /// `true` when this is the masked-ring variant.
    pub fn is_masked(&self) -> bool {
        matches!(self, CycleTopology::Masked(_))
    }
}

impl fmt::Display for CycleTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleTopology::Single(c) => c.fmt(f),
            CycleTopology::Dual(d) => d.fmt(f),
            CycleTopology::Masked(m) => m.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_picks_variant_by_parity() {
        assert!(!CycleTopology::build(4, 5).unwrap().is_dual());
        assert!(!CycleTopology::build(5, 4).unwrap().is_dual());
        assert!(!CycleTopology::build(16, 16).unwrap().is_dual());
        assert!(CycleTopology::build(5, 5).unwrap().is_dual());
        assert!(CycleTopology::build(1, 1).is_err());
        assert!(CycleTopology::build(2, 1).is_err());
        assert!(CycleTopology::build(1, 3).is_err());
    }

    #[test]
    fn single_monitor_is_unique_predecessor() {
        let t = CycleTopology::build(4, 4).unwrap();
        for x in 0..4u16 {
            for y in 0..4u16 {
                let g = GridCoord::new(x, y);
                let m = t.monitors(g);
                assert_eq!(t.monitored_by(m), vec![g]);
            }
        }
    }

    #[test]
    fn dual_monitors_follow_algorithm_2() {
        let t = CycleTopology::build(5, 5).unwrap();
        let CycleTopology::Dual(ref d) = t else {
            panic!("expected dual")
        };
        // Case one: A and B are monitored by C.
        assert_eq!(t.monitors(d.a()), d.c());
        assert_eq!(t.monitors(d.b()), d.c());
        // Case two: D is monitored only by B.
        assert_eq!(t.monitors(d.d()), d.b());
        // Case three: chain cells by their chain predecessor.
        for k in 1..d.chain().len() {
            assert_eq!(t.monitors(d.chain()[k]), d.chain()[k - 1]);
        }
    }

    #[test]
    fn dual_monitored_by_is_inverse_of_monitors() {
        let t = CycleTopology::build(5, 5).unwrap();
        for x in 0..5u16 {
            for y in 0..5u16 {
                let g = GridCoord::new(x, y);
                let m = t.monitors(g);
                assert!(
                    t.monitored_by(m).contains(&g),
                    "monitor {m} of {g} does not watch it back"
                );
                for w in t.monitored_by(g) {
                    assert_eq!(t.monitors(w), g);
                }
            }
        }
    }

    #[test]
    fn backward_fork_at_d_for_chain_holes() {
        let t = CycleTopology::build(5, 5).unwrap();
        let CycleTopology::Dual(ref d) = t else {
            panic!("expected dual")
        };
        let hole = d.chain()[10];
        assert_eq!(
            t.backward_from(d.d(), hole),
            Some(BackwardStep::ForkAB { a: d.a(), b: d.b() })
        );
        // With A as the hole, the fork degenerates to B (and vice versa).
        assert_eq!(
            t.backward_from(d.d(), d.a()),
            Some(BackwardStep::One(d.b()))
        );
        assert_eq!(
            t.backward_from(d.d(), d.b()),
            Some(BackwardStep::One(d.a()))
        );
    }

    #[test]
    fn backward_probe_at_c_for_hole_d() {
        // Algorithm 2 case two.
        let t = CycleTopology::build(5, 5).unwrap();
        let CycleTopology::Dual(ref d) = t else {
            panic!("expected dual")
        };
        let chain = d.chain();
        match t.backward_from(d.c(), d.d()) {
            Some(BackwardStep::ProbeThen { probe, next }) => {
                assert_eq!(probe, d.a());
                assert_eq!(next, chain[chain.len() - 2]);
            }
            other => panic!("expected ProbeThen, got {other:?}"),
        }
        // For any other hole, C relays plainly along the chain.
        assert_eq!(
            t.backward_from(d.c(), chain[5]),
            Some(BackwardStep::One(chain[chain.len() - 2]))
        );
    }

    #[test]
    fn backward_walk_terminates_at_hole() {
        let t = CycleTopology::build(4, 4).unwrap();
        let CycleTopology::Single(ref c) = t else {
            panic!("expected single")
        };
        let hole = GridCoord::new(2, 2);
        // Walking backward from the hole's monitor eventually returns None.
        let mut u = t.monitors(hole);
        let mut hops = 1;
        while let Some(BackwardStep::One(p)) = t.backward_from(u, hole) {
            u = p;
            hops += 1;
        }
        assert_eq!(hops, c.deduced_path_hops());
    }

    #[test]
    #[should_panic(expected = "hole itself")]
    fn backward_from_hole_panics() {
        let t = CycleTopology::build(4, 4).unwrap();
        let g = GridCoord::new(1, 1);
        let _ = t.backward_from(g, g);
    }

    #[test]
    fn max_walk_hops_matches_paper() {
        // 4x5: L = 19 (Figure 3a). 16x16: L = 255 (Figure 3b).
        assert_eq!(CycleTopology::build(4, 5).unwrap().max_walk_hops(), 19);
        assert_eq!(CycleTopology::build(16, 16).unwrap().max_walk_hops(), 255);
        // 5x5 dual: m*n - 2 = 23 (Corollary 2).
        assert_eq!(CycleTopology::build(5, 5).unwrap().max_walk_hops(), 23);
    }

    #[test]
    fn masked_topology_has_unique_monitors_and_terminating_walks() {
        let mask = RegionMask::l_shape(8, 8);
        let t = CycleTopology::build_masked(&mask).unwrap();
        assert!(t.is_masked());
        assert!(!t.is_dual());
        assert_eq!(t.cell_count(), mask.enabled_count());
        assert_eq!(t.max_walk_hops(), mask.enabled_count() - 1);
        // One and only one monitor per enabled cell; inverse holds.
        for g in mask.iter_enabled() {
            let m = t.monitors(g);
            assert!(mask.is_enabled(m));
            assert_eq!(t.monitored_by(m), vec![g]);
        }
        // A backward walk for any hole visits every other enabled cell.
        let hole = mask.iter_enabled().nth(7).unwrap();
        let mut u = t.monitors(hole);
        let mut hops = 1;
        while let Some(BackwardStep::One(p)) = t.backward_from(u, hole) {
            u = p;
            hops += 1;
        }
        assert_eq!(hops, t.max_walk_hops());
    }

    #[test]
    fn build_masked_on_full_mask_is_the_paper_structure() {
        let full = RegionMask::full(6, 6);
        assert!(matches!(
            CycleTopology::build_masked(&full).unwrap(),
            CycleTopology::Single(_)
        ));
        let odd = RegionMask::full(5, 5);
        assert!(matches!(
            CycleTopology::build_masked(&odd).unwrap(),
            CycleTopology::Dual(_)
        ));
        let empty = RegionMask::full(3, 3).difference_rect(0, 0, 2, 2);
        assert!(CycleTopology::build_masked(&empty).is_err());
    }

    #[test]
    fn dims_and_display() {
        let t = CycleTopology::build(5, 4).unwrap();
        assert_eq!((t.cols(), t.rows()), (5, 4));
        assert_eq!(t.cell_count(), 20);
        assert!(!t.to_string().is_empty());
        let d = CycleTopology::build(3, 3).unwrap();
        assert_eq!(d.cell_count(), 9);
        assert!(!d.to_string().is_empty());
    }
}
