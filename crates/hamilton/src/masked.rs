//! The masked replacement structure for irregular (non-rectangular)
//! regions.
//!
//! The paper's Hamilton cycle exists only on full rectangles. For a
//! region with disabled cells ([`wsn_grid::RegionMask`]) no Hamilton
//! cycle need exist at all, so SR's synchronization is rebuilt in two
//! steps:
//!
//! 1. **Boustrophedon path cover.** Every row of the region is split
//!    into maximal horizontal intervals of enabled cells. Intervals are
//!    stitched bottom-up into serpentine paths: an interval whose end
//!    column sits directly above the endpoint of a path in the previous
//!    row extends that path through the connector column; an interval
//!    with no such connector starts a new path. The result is a
//!    **replacement forest** — a set of directed, 4-adjacent paths that
//!    together visit every enabled cell exactly once
//!    ([`crate::validate::validate_masked`] proves this).
//! 2. **Virtual ring closure.** The paths are concatenated (in
//!    construction order) into one global directed ring; the link from
//!    one path's tail to the next path's head is a *virtual connector* —
//!    the two cells need not be adjacent, so a replacement relaying
//!    across it makes a longer (obstacle-aware) movement, billed by
//!    [`wsn_grid::GridNetwork::move_node`]'s detour accounting.
//!
//! The ring restores the paper's invariants on any region: every enabled
//! cell has exactly one predecessor and one successor, so each hole is
//! detected by exactly one head and at most one replacement process runs
//! per hole; a backward walk visits every other enabled cell before
//! exhausting (`L = enabled − 1`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use wsn_grid::{GridCoord, RegionMask};

use crate::{HamiltonError, Result};

/// The directed replacement ring over an irregular region: a
/// boustrophedon path cover of the enabled cells, closed into one
/// virtual cycle.
///
/// ```
/// use wsn_grid::RegionMask;
/// use wsn_hamilton::MaskedCycle;
///
/// let mask = RegionMask::l_shape(6, 6);
/// let ring = MaskedCycle::build(&mask)?;
/// assert_eq!(ring.len(), mask.enabled_count());
/// // Every enabled cell has a unique predecessor and successor.
/// for &cell in ring.order() {
///     assert_eq!(ring.successor(ring.predecessor(cell)), cell);
/// }
/// # Ok::<(), wsn_hamilton::HamiltonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaskedCycle {
    cols: u16,
    rows: u16,
    /// Enabled cells in ring order; `order[k+1]` is the successor of
    /// `order[k]` and `order[0]` the successor of `order.last()`.
    order: Vec<GridCoord>,
    /// Ring position per dense row-major cell index; `u32::MAX` for
    /// disabled cells.
    position: Vec<u32>,
    /// Half-open `[start, end)` ranges into `order`, one per directed
    /// path of the cover. Within a segment consecutive cells are
    /// 4-adjacent; between segments (and around the wrap) the link is a
    /// virtual connector.
    segments: Vec<(u32, u32)>,
    /// Dense row-major cell index of each cell's ring successor;
    /// `u32::MAX` for disabled cells. Precomputed so the hot
    /// [`MaskedCycle::successor`] query is one indexed load instead of a
    /// position lookup plus modular arithmetic.
    succ: Vec<u32>,
    /// Dense row-major cell index of each cell's ring predecessor;
    /// `u32::MAX` for disabled cells.
    pred: Vec<u32>,
}

impl MaskedCycle {
    /// Builds the ring for `mask`'s enabled region.
    ///
    /// # Errors
    ///
    /// [`HamiltonError::MaskTooSmall`] when fewer than two cells are
    /// enabled (a ring needs somewhere for a walk to go).
    pub fn build(mask: &RegionMask) -> Result<MaskedCycle> {
        if mask.enabled_count() < 2 {
            return Err(HamiltonError::MaskTooSmall {
                enabled: mask.enabled_count(),
            });
        }
        let (cols, rows) = (mask.cols(), mask.rows());
        let mut paths: Vec<Vec<GridCoord>> = Vec::new();
        // Endpoints of still-extensible paths in the previous row,
        // keyed by column.
        let mut open_prev: HashMap<u16, usize> = HashMap::new();
        for y in 0..rows {
            let mut open_cur: HashMap<u16, usize> = HashMap::new();
            let mut x = 0u16;
            while x < cols {
                if !mask.is_enabled(GridCoord::new(x, y)) {
                    x += 1;
                    continue;
                }
                // Maximal enabled interval [x0, x1] of this row.
                let x0 = x;
                while x < cols && mask.is_enabled(GridCoord::new(x, y)) {
                    x += 1;
                }
                let x1 = x - 1;
                // Attach to a previous-row endpoint directly below either
                // end of the interval (the connector column), traversing
                // away from it; otherwise start a fresh path, alternating
                // direction by row parity for serpentine aesthetics.
                let (pi, xs): (usize, Box<dyn Iterator<Item = u16>>) =
                    if let Some(pi) = open_prev.remove(&x0) {
                        (pi, Box::new(x0..=x1))
                    } else if let Some(pi) = open_prev.remove(&x1) {
                        (pi, Box::new((x0..=x1).rev()))
                    } else {
                        paths.push(Vec::new());
                        let pi = paths.len() - 1;
                        if y % 2 == 0 {
                            (pi, Box::new(x0..=x1))
                        } else {
                            (pi, Box::new((x0..=x1).rev()))
                        }
                    };
                for cx in xs {
                    paths[pi].push(GridCoord::new(cx, y));
                }
                let end_x = paths[pi].last().expect("interval is nonempty").x;
                open_cur.insert(end_x, pi);
            }
            open_prev = open_cur;
        }

        let mut order = Vec::with_capacity(mask.enabled_count());
        let mut segments = Vec::with_capacity(paths.len());
        for p in &paths {
            let start = order.len() as u32;
            order.extend_from_slice(p);
            segments.push((start, order.len() as u32));
        }
        let cells = cols as usize * rows as usize;
        let mut position = vec![u32::MAX; cells];
        for (k, c) in order.iter().enumerate() {
            position[c.y as usize * cols as usize + c.x as usize] = k as u32;
        }
        let dense = |c: &GridCoord| c.y as usize * cols as usize + c.x as usize;
        let mut succ = vec![u32::MAX; cells];
        let mut pred = vec![u32::MAX; cells];
        let n = order.len();
        for (k, c) in order.iter().enumerate() {
            let next = &order[(k + 1) % n];
            succ[dense(c)] = dense(next) as u32;
            pred[dense(next)] = dense(c) as u32;
        }
        Ok(MaskedCycle {
            cols,
            rows,
            order,
            position,
            segments,
            succ,
            pred,
        })
    }

    /// Grid columns.
    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Grid rows.
    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of enabled cells on the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always `false`: construction requires at least two enabled cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The enabled cells in ring order.
    #[inline]
    pub fn order(&self) -> &[GridCoord] {
        &self.order
    }

    /// The directed paths of the cover, as slices of [`MaskedCycle::order`].
    /// Each path is 4-adjacent internally; the links between consecutive
    /// paths (and the closing wrap) are virtual connectors.
    pub fn segments(&self) -> impl Iterator<Item = &[GridCoord]> + '_ {
        self.segments
            .iter()
            .map(|&(s, e)| &self.order[s as usize..e as usize])
    }

    /// Number of directed paths in the cover (1 on regions where a
    /// single serpentine exists).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of ring links that are virtual connectors (not 4-adjacent
    /// steps), including the closing wrap when it is not adjacent.
    pub fn connector_count(&self) -> usize {
        let n = self.order.len();
        (0..n)
            .filter(|&k| !self.order[k].is_adjacent(self.order[(k + 1) % n]))
            .count()
    }

    /// Ring position of `cell` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid or disabled — holes can only
    /// be enabled cells, so asking about a disabled cell is a wiring bug.
    pub fn position(&self, cell: GridCoord) -> usize {
        assert!(
            cell.x < self.cols && cell.y < self.rows,
            "cell {cell} outside {}x{} masked ring",
            self.cols,
            self.rows
        );
        let p = self.position[cell.y as usize * self.cols as usize + cell.x as usize];
        assert!(p != u32::MAX, "cell {cell} is disabled (not on the ring)");
        p as usize
    }

    /// Dense row-major index of `cell`, panicking with the same messages
    /// as [`MaskedCycle::position`] when it is outside the grid.
    #[inline]
    fn dense_index(&self, cell: GridCoord) -> usize {
        assert!(
            cell.x < self.cols && cell.y < self.rows,
            "cell {cell} outside {}x{} masked ring",
            self.cols,
            self.rows
        );
        cell.y as usize * self.cols as usize + cell.x as usize
    }

    /// The cell the head of `cell` monitors (next along the ring).
    /// A single load from the precomputed flat successor table.
    ///
    /// # Panics
    ///
    /// As for [`MaskedCycle::position`].
    pub fn successor(&self, cell: GridCoord) -> GridCoord {
        let s = self.succ[self.dense_index(cell)];
        assert!(s != u32::MAX, "cell {cell} is disabled (not on the ring)");
        GridCoord::new((s % self.cols as u32) as u16, (s / self.cols as u32) as u16)
    }

    /// The cell whose head monitors `cell` (previous along the ring).
    /// A single load from the precomputed flat predecessor table.
    ///
    /// # Panics
    ///
    /// As for [`MaskedCycle::position`].
    pub fn predecessor(&self, cell: GridCoord) -> GridCoord {
        let p = self.pred[self.dense_index(cell)];
        assert!(p != u32::MAX, "cell {cell} is disabled (not on the ring)");
        GridCoord::new((p % self.cols as u32) as u16, (p / self.cols as u32) as u16)
    }

    /// Theorem 2's `L` on the masked ring: a replacement walk can
    /// stretch over every other enabled cell, `enabled − 1` hops.
    pub fn max_walk_hops(&self) -> usize {
        self.order.len() - 1
    }
}

impl fmt::Display for MaskedCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "masked ring over {}x{}: {} cells in {} paths ({} connectors)",
            self.cols,
            self.rows,
            self.order.len(),
            self.segments.len(),
            self.connector_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_masked;

    #[test]
    fn full_rectangle_is_a_single_serpentine() {
        let mask = RegionMask::full(6, 4);
        let ring = MaskedCycle::build(&mask).unwrap();
        assert_eq!(ring.len(), 24);
        assert_eq!(ring.segment_count(), 1);
        // Only the closing wrap can be a connector.
        assert!(ring.connector_count() <= 1);
        validate_masked(&ring, &mask).unwrap();
    }

    #[test]
    fn l_shape_covers_every_enabled_cell() {
        let mask = RegionMask::l_shape(8, 8);
        let ring = MaskedCycle::build(&mask).unwrap();
        assert_eq!(ring.len(), mask.enabled_count());
        validate_masked(&ring, &mask).unwrap();
        assert!(!ring.to_string().is_empty());
    }

    #[test]
    fn annulus_needs_more_than_one_path() {
        let mask = RegionMask::annulus(8, 8);
        let ring = MaskedCycle::build(&mask).unwrap();
        assert_eq!(ring.len(), mask.enabled_count());
        // The courtyard splits middle rows into two intervals; one side
        // cannot stitch into the other, so the cover has ≥ 2 paths.
        assert!(ring.segment_count() >= 2, "{ring}");
        validate_masked(&ring, &mask).unwrap();
    }

    #[test]
    fn every_shape_validates_at_multiple_sizes() {
        use wsn_grid::RegionShape;
        for shape in RegionShape::ALL {
            for (cols, rows) in [(8u16, 8u16), (16, 16), (33, 17), (64, 64)] {
                let mask = shape.build_mask(cols, rows);
                let ring = MaskedCycle::build(&mask)
                    .unwrap_or_else(|e| panic!("{shape} {cols}x{rows}: {e}"));
                validate_masked(&ring, &mask)
                    .unwrap_or_else(|m| panic!("{shape} {cols}x{rows}: {m}"));
            }
        }
    }

    #[test]
    fn successor_predecessor_are_inverse() {
        let mask = RegionMask::corridor(12, 12);
        let ring = MaskedCycle::build(&mask).unwrap();
        for &c in ring.order() {
            assert_eq!(ring.predecessor(ring.successor(c)), c);
            assert_eq!(ring.successor(ring.predecessor(c)), c);
        }
        assert_eq!(ring.max_walk_hops(), ring.len() - 1);
    }

    #[test]
    fn flat_tables_match_ring_order() {
        use wsn_grid::RegionShape;
        for shape in RegionShape::ALL {
            let mask = shape.build_mask(16, 16);
            let ring = MaskedCycle::build(&mask).unwrap();
            let n = ring.len();
            for (k, &c) in ring.order().iter().enumerate() {
                assert_eq!(ring.successor(c), ring.order()[(k + 1) % n], "{shape}");
                assert_eq!(
                    ring.predecessor(c),
                    ring.order()[(k + n - 1) % n],
                    "{shape}"
                );
            }
        }
    }

    #[test]
    fn too_small_masks_are_rejected() {
        let empty = RegionMask::full(4, 4).difference_rect(0, 0, 3, 3);
        assert_eq!(
            MaskedCycle::build(&empty).unwrap_err(),
            HamiltonError::MaskTooSmall { enabled: 0 }
        );
        let single = empty.union_rect(1, 1, 1, 1);
        assert_eq!(
            MaskedCycle::build(&single).unwrap_err(),
            HamiltonError::MaskTooSmall { enabled: 1 }
        );
    }

    #[test]
    #[should_panic(expected = "disabled")]
    fn position_of_disabled_cell_panics() {
        let mask = RegionMask::l_shape(6, 6);
        let ring = MaskedCycle::build(&mask).unwrap();
        ring.position(GridCoord::new(5, 5));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn position_out_of_grid_panics() {
        let mask = RegionMask::full(4, 4);
        let ring = MaskedCycle::build(&mask).unwrap();
        ring.position(GridCoord::new(4, 0));
    }
}
