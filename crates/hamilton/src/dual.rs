//! The Section-4 dual-path construction for odd×odd grids.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_grid::GridCoord;

use crate::{HamiltonError, Result};

/// The paper's dual-path Hamilton structure for grids where **both**
/// sides are odd and no Hamilton cycle exists.
///
/// Two directed Hamilton paths share all cells except the two special
/// cells `A` and `B`:
///
/// * path one: `A → D → (shared chain) → C → B`
/// * path two: `B → D → (shared chain) → C → A`
///
/// where `D` is the common successor and `C` the common predecessor of
/// `A` and `B`. This implementation places the special cells in the
/// bottom-left 2×2 block — `A = (0,0)`, `B = (1,1)`, `C = (1,0)`,
/// `D = (0,1)` — and routes the shared chain as:
///
/// ```text
/// 5 x 5 (the paper's Figure 4 size; D = start, C = end of the chain):
///
///   y=4  → → → → ↓        rows 2..m-1 serpentine over x ≤ n-2,
///   y=3  ↑ ← ← ← ↓        column n-1 returns south,
///   y=2  → → → ↗ ↓        rows 0..1 zigzag west back to C.
///   y=1  D · ↑ ↓ ↑ ↓
///   y=0  A C ← ↑ ← ↘
/// ```
///
/// (`A` and `B` hang off the chain ends: `C → A`, `C → B`, `A → D`,
/// `B → D`.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualPathCycle {
    cols: u16,
    rows: u16,
    a: GridCoord,
    b: GridCoord,
    c: GridCoord,
    d: GridCoord,
    /// Shared chain from `D` to `C` inclusive (`m·n − 2` cells).
    chain: Vec<GridCoord>,
    /// Position of each cell in `chain` (dense row-major index);
    /// `u32::MAX` for `A` and `B`.
    position: Vec<u32>,
}

impl DualPathCycle {
    /// Builds the dual-path structure for a `cols × rows` grid.
    ///
    /// # Errors
    ///
    /// [`HamiltonError::NotBothOdd`] when either side is even (use
    /// [`crate::HamiltonCycle`] then), and [`HamiltonError::TooSmall`]
    /// below 3×3.
    pub fn build(cols: u16, rows: u16) -> Result<DualPathCycle> {
        if cols.is_multiple_of(2) || rows.is_multiple_of(2) {
            return Err(HamiltonError::NotBothOdd { cols, rows });
        }
        if cols < 3 || rows < 3 {
            return Err(HamiltonError::TooSmall { cols, rows });
        }
        let a = GridCoord::new(0, 0);
        let b = GridCoord::new(1, 1);
        let c = GridCoord::new(1, 0);
        let d = GridCoord::new(0, 1);

        let mut chain = Vec::with_capacity(cols as usize * rows as usize - 2);
        // 1. Start at D and step north onto row 2.
        chain.push(d);
        // 2. Serpentine rows 2..rows-1 over x in [0, cols-2]; row 2 runs
        //    east, row 3 west, ...; rows-1 is even (rows odd) so the last
        //    row runs east and ends at (cols-2, rows-1).
        for y in 2..rows {
            if y % 2 == 0 {
                for x in 0..cols - 1 {
                    chain.push(GridCoord::new(x, y));
                }
            } else {
                for x in (0..cols - 1).rev() {
                    chain.push(GridCoord::new(x, y));
                }
            }
        }
        // 3. Step east to the top-right corner, then south down the last
        //    column to row 1.
        for y in (1..rows).rev() {
            chain.push(GridCoord::new(cols - 1, y));
        }
        // 4. Zigzag west over rows 0..1 for columns cols-1 .. 2, then end
        //    at C = (1, 0). Column cols-1 exits south; after that columns
        //    alternate bottom-to-top and top-to-bottom.
        chain.push(GridCoord::new(cols - 1, 0));
        let mut x = cols - 2;
        while x >= 2 {
            if (cols - 2 - x).is_multiple_of(2) {
                chain.push(GridCoord::new(x, 0));
                chain.push(GridCoord::new(x, 1));
            } else {
                chain.push(GridCoord::new(x, 1));
                chain.push(GridCoord::new(x, 0));
            }
            x -= 1;
        }
        chain.push(c);

        let mut position = vec![u32::MAX; cols as usize * rows as usize];
        for (k, cell) in chain.iter().enumerate() {
            position[cell.y as usize * cols as usize + cell.x as usize] = k as u32;
        }
        Ok(DualPathCycle {
            cols,
            rows,
            a,
            b,
            c,
            d,
            chain,
            position,
        })
    }

    /// Grid columns.
    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Grid rows.
    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Special cell `A` (start of path one, end of path two).
    #[inline]
    pub fn a(&self) -> GridCoord {
        self.a
    }

    /// Special cell `B` (start of path two, end of path one).
    #[inline]
    pub fn b(&self) -> GridCoord {
        self.b
    }

    /// Common predecessor `C` of `A` and `B`.
    #[inline]
    pub fn c(&self) -> GridCoord {
        self.c
    }

    /// Common successor `D` of `A` and `B`.
    #[inline]
    pub fn d(&self) -> GridCoord {
        self.d
    }

    /// The shared chain from `D` to `C` inclusive (`m·n − 2` cells).
    #[inline]
    pub fn chain(&self) -> &[GridCoord] {
        &self.chain
    }

    /// Path one: `A → D → … → C → B` (`m·n` cells, `m·n − 1` hops —
    /// the paper: "The replacement initiated for these two vacant grids
    /// can stretch as far as (m×n−1) hops").
    pub fn path_one(&self) -> Vec<GridCoord> {
        let mut p = Vec::with_capacity(self.chain.len() + 2);
        p.push(self.a);
        p.extend_from_slice(&self.chain);
        p.push(self.b);
        p
    }

    /// Path two: `B → D → … → C → A`.
    pub fn path_two(&self) -> Vec<GridCoord> {
        let mut p = Vec::with_capacity(self.chain.len() + 2);
        p.push(self.b);
        p.extend_from_slice(&self.chain);
        p.push(self.a);
        p
    }

    /// Position of `cell` on the shared chain, or `None` for `A` and `B`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    pub fn chain_position(&self, cell: GridCoord) -> Option<usize> {
        assert!(
            cell.x < self.cols && cell.y < self.rows,
            "cell {cell} outside {}x{} dual-path grid",
            self.cols,
            self.rows
        );
        let p = self.position[cell.y as usize * self.cols as usize + cell.x as usize];
        (p != u32::MAX).then_some(p as usize)
    }

    /// Corollary 2's walk-length parameter: the replacement process can
    /// stretch `m·n − 2` hops (the shared chain) before the final fork.
    pub fn corollary_hops(&self) -> usize {
        self.chain.len()
    }
}

impl fmt::Display for DualPathCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dual-path hamilton structure over {}x{} (A={}, B={}, C={}, D={})",
            self.cols, self.rows, self.a, self.b, self.c, self.d
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_dual;

    #[test]
    fn build_validates_dimensions() {
        assert_eq!(
            DualPathCycle::build(4, 5).unwrap_err(),
            HamiltonError::NotBothOdd { cols: 4, rows: 5 }
        );
        assert_eq!(
            DualPathCycle::build(5, 4).unwrap_err(),
            HamiltonError::NotBothOdd { cols: 5, rows: 4 }
        );
        assert_eq!(
            DualPathCycle::build(1, 3).unwrap_err(),
            HamiltonError::TooSmall { cols: 1, rows: 3 }
        );
        assert_eq!(
            DualPathCycle::build(3, 1).unwrap_err(),
            HamiltonError::TooSmall { cols: 3, rows: 1 }
        );
    }

    #[test]
    fn papers_5x5_figure_4() {
        let d = DualPathCycle::build(5, 5).unwrap();
        assert_eq!(d.chain().len(), 23); // m*n - 2
        assert_eq!(d.path_one().len(), 25);
        assert_eq!(d.path_two().len(), 25);
        assert_eq!(d.corollary_hops(), 23);
        validate_dual(&d).unwrap();
    }

    #[test]
    fn smallest_3x3() {
        let d = DualPathCycle::build(3, 3).unwrap();
        assert_eq!(d.chain().len(), 7);
        validate_dual(&d).unwrap();
    }

    #[test]
    fn all_odd_grids_up_to_13_validate() {
        for cols in (3u16..=13).step_by(2) {
            for rows in (3u16..=13).step_by(2) {
                let d = DualPathCycle::build(cols, rows)
                    .unwrap_or_else(|e| panic!("{cols}x{rows}: {e}"));
                validate_dual(&d).unwrap_or_else(|m| panic!("{cols}x{rows}: {m}"));
            }
        }
    }

    #[test]
    fn special_cells_are_bottom_left_block() {
        let d = DualPathCycle::build(7, 9).unwrap();
        assert_eq!(d.a(), GridCoord::new(0, 0));
        assert_eq!(d.b(), GridCoord::new(1, 1));
        assert_eq!(d.c(), GridCoord::new(1, 0));
        assert_eq!(d.d(), GridCoord::new(0, 1));
    }

    #[test]
    fn chain_position_none_for_a_b() {
        let d = DualPathCycle::build(5, 5).unwrap();
        assert_eq!(d.chain_position(d.a()), None);
        assert_eq!(d.chain_position(d.b()), None);
        assert_eq!(d.chain_position(d.d()), Some(0));
        assert_eq!(d.chain_position(d.c()), Some(22));
        for (k, &cell) in d.chain().iter().enumerate() {
            assert_eq!(d.chain_position(cell), Some(k));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn chain_position_out_of_bounds_panics() {
        let d = DualPathCycle::build(3, 3).unwrap();
        d.chain_position(GridCoord::new(3, 0));
    }

    #[test]
    fn display_mentions_specials() {
        let d = DualPathCycle::build(3, 3).unwrap();
        let s = d.to_string();
        assert!(s.contains("A="));
        assert!(s.contains("3x3"));
    }
}
