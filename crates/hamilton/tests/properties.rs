//! Property-based tests over all constructible grid dimensions.

use proptest::prelude::*;
use std::collections::HashSet;
use wsn_grid::GridCoord;
use wsn_hamilton::validate::{validate_cycle, validate_dual, validate_path};
use wsn_hamilton::{BackwardStep, CycleTopology, DualPathCycle, HamiltonCycle};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn cycles_validate_for_all_even_sided_dims(cols in 2u16..40, rows in 2u16..40) {
        prop_assume!(cols % 2 == 0 || rows % 2 == 0);
        let c = HamiltonCycle::build(cols, rows).unwrap();
        validate_cycle(&c).unwrap();
        prop_assert_eq!(c.len(), cols as usize * rows as usize);
    }

    #[test]
    fn duals_validate_for_all_odd_dims(ci in 1u16..20, ri in 1u16..20) {
        let (cols, rows) = (2 * ci + 1, 2 * ri + 1);
        let d = DualPathCycle::build(cols, rows).unwrap();
        validate_dual(&d).unwrap();
        prop_assert_eq!(d.chain().len(), cols as usize * rows as usize - 2);
    }

    #[test]
    fn successor_relation_is_a_permutation(cols in 2u16..20, rows in 2u16..20) {
        prop_assume!(cols % 2 == 0 || rows % 2 == 0);
        let c = HamiltonCycle::build(cols, rows).unwrap();
        let mut seen = HashSet::new();
        for x in 0..cols {
            for y in 0..rows {
                let s = c.successor(GridCoord::new(x, y));
                prop_assert!(seen.insert(s), "two cells share successor {s}");
            }
        }
        prop_assert_eq!(seen.len(), cols as usize * rows as usize);
    }

    #[test]
    fn every_cell_has_a_unique_adjacent_monitor(cols in 2u16..16, rows in 2u16..16) {
        prop_assume!(cols >= 3 || rows % 2 == 0);
        prop_assume!(rows >= 3 || cols % 2 == 0);
        let t = CycleTopology::build(cols, rows).unwrap();
        for x in 0..cols {
            for y in 0..rows {
                let g = GridCoord::new(x, y);
                let m = t.monitors(g);
                prop_assert!(m != g, "cell cannot monitor itself");
                prop_assert!(m.is_adjacent(g), "monitor must be 1-hop");
            }
        }
    }

    #[test]
    fn backward_walk_covers_every_other_cell(cols in 2u16..12, rows in 2u16..12, hx in 0u16..12, hy in 0u16..12) {
        // From any hole, the backward walk (probing forks both ways) must
        // give every other cell a chance to contribute a spare: this is
        // the "does not miss any chance to find a spare node" guarantee
        // behind Theorem 1 and Corollary 1.
        prop_assume!(cols >= 3 || rows % 2 == 0);
        prop_assume!(rows >= 3 || cols % 2 == 0);
        let hole = GridCoord::new(hx % cols, hy % rows);
        let t = CycleTopology::build(cols, rows).unwrap();
        let mut reached: HashSet<GridCoord> = HashSet::new();
        let mut stack: Vec<GridCoord> = vec![t.monitors(hole)];
        while let Some(u) = stack.pop() {
            if u == hole || !reached.insert(u) {
                continue;
            }
            match t.backward_from(u, hole) {
                Some(BackwardStep::One(p)) => stack.push(p),
                Some(BackwardStep::ForkAB { a, b }) => {
                    stack.push(a);
                    stack.push(b);
                }
                Some(BackwardStep::ProbeThen { probe, next }) => {
                    // Probes are spare-checks: they count as covered.
                    reached.insert(probe);
                    stack.push(next);
                }
                None => {}
            }
        }
        prop_assert_eq!(
            reached.len(),
            t.cell_count() - 1,
            "walk from hole {} missed cells",
            hole
        );
    }

    #[test]
    fn forward_distance_is_consistent(cols in 2u16..16, rows in 2u16..16, steps in 1usize..40) {
        prop_assume!(cols % 2 == 0 || rows % 2 == 0);
        let c = HamiltonCycle::build(cols, rows).unwrap();
        let start = GridCoord::new(0, 0);
        let mut cur = start;
        for _ in 0..steps {
            cur = c.successor(cur);
        }
        prop_assert_eq!(
            c.forward_distance(start, cur),
            steps % (cols as usize * rows as usize)
        );
    }

    #[test]
    fn dual_paths_are_hamilton_paths(ci in 1u16..12, ri in 1u16..12) {
        let (cols, rows) = (2 * ci + 1, 2 * ri + 1);
        let d = DualPathCycle::build(cols, rows).unwrap();
        let all: HashSet<GridCoord> = (0..cols)
            .flat_map(|x| (0..rows).map(move |y| GridCoord::new(x, y)))
            .collect();
        validate_path(&d.path_one(), &all).unwrap();
        validate_path(&d.path_two(), &all).unwrap();
    }
}
