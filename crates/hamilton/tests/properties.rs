//! Property-based tests over all constructible grid dimensions.

use proptest::prelude::*;
use std::collections::HashSet;
use wsn_grid::{GridCoord, RegionMask, RegionShape};
use wsn_hamilton::validate::{validate_cycle, validate_dual, validate_masked, validate_path};
use wsn_hamilton::{BackwardStep, CycleTopology, DualPathCycle, HamiltonCycle, MaskedCycle};
use wsn_simcore::SimRng;

/// A random mask carved from rectangles, guaranteed ≥ 2 enabled cells.
fn random_mask(cols: u16, rows: u16, seed: u64) -> RegionMask {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xa11c_e11a);
    let mut mask = RegionMask::full(cols, rows);
    for _ in 0..1 + rng.range_usize(4) {
        let x0 = rng.range_usize(cols as usize) as u16;
        let y0 = rng.range_usize(rows as usize) as u16;
        let x1 = x0 + rng.range_usize((cols - x0) as usize) as u16;
        let y1 = y0 + rng.range_usize((rows - y0) as usize) as u16;
        mask = mask.difference_rect(x0, y0, x1, y1);
    }
    if mask.enabled_count() < 2 {
        mask = mask.union_rect(0, 0, 1, 0);
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn masked_rings_visit_every_enabled_cell_exactly_once(
        cols in 2u16..24, rows in 2u16..24, seed in 0u64..4000,
    ) {
        let mask = random_mask(cols, rows, seed);
        let ring = MaskedCycle::build(&mask).unwrap();
        validate_masked(&ring, &mask).unwrap();
        prop_assert_eq!(ring.len(), mask.enabled_count());
        // The successor relation is a permutation of the enabled cells.
        let mut seen = HashSet::new();
        for &c in ring.order() {
            prop_assert!(seen.insert(ring.successor(c)));
        }
        prop_assert_eq!(seen.len(), mask.enabled_count());
    }

    #[test]
    fn masked_preset_shapes_validate(
        cols in 4u16..32, rows in 4u16..32, shape_idx in 0usize..4,
    ) {
        let shape = RegionShape::IRREGULAR[shape_idx];
        let mask = shape.build_mask(cols, rows);
        prop_assume!(mask.enabled_count() >= 2);
        let ring = MaskedCycle::build(&mask).unwrap();
        validate_masked(&ring, &mask).unwrap();
        let topo = CycleTopology::build_masked(&mask).unwrap();
        prop_assert!(topo.is_masked());
        // Unique adjacent-or-connector monitor per enabled cell.
        for g in mask.iter_enabled() {
            prop_assert_eq!(topo.monitored_by(topo.monitors(g)), vec![g]);
        }
    }

    #[test]
    fn cycles_validate_for_all_even_sided_dims(cols in 2u16..40, rows in 2u16..40) {
        prop_assume!(cols % 2 == 0 || rows % 2 == 0);
        let c = HamiltonCycle::build(cols, rows).unwrap();
        validate_cycle(&c).unwrap();
        prop_assert_eq!(c.len(), cols as usize * rows as usize);
    }

    #[test]
    fn duals_validate_for_all_odd_dims(ci in 1u16..20, ri in 1u16..20) {
        let (cols, rows) = (2 * ci + 1, 2 * ri + 1);
        let d = DualPathCycle::build(cols, rows).unwrap();
        validate_dual(&d).unwrap();
        prop_assert_eq!(d.chain().len(), cols as usize * rows as usize - 2);
    }

    #[test]
    fn successor_relation_is_a_permutation(cols in 2u16..20, rows in 2u16..20) {
        prop_assume!(cols % 2 == 0 || rows % 2 == 0);
        let c = HamiltonCycle::build(cols, rows).unwrap();
        let mut seen = HashSet::new();
        for x in 0..cols {
            for y in 0..rows {
                let s = c.successor(GridCoord::new(x, y));
                prop_assert!(seen.insert(s), "two cells share successor {s}");
            }
        }
        prop_assert_eq!(seen.len(), cols as usize * rows as usize);
    }

    #[test]
    fn every_cell_has_a_unique_adjacent_monitor(cols in 2u16..16, rows in 2u16..16) {
        prop_assume!(cols >= 3 || rows % 2 == 0);
        prop_assume!(rows >= 3 || cols % 2 == 0);
        let t = CycleTopology::build(cols, rows).unwrap();
        for x in 0..cols {
            for y in 0..rows {
                let g = GridCoord::new(x, y);
                let m = t.monitors(g);
                prop_assert!(m != g, "cell cannot monitor itself");
                prop_assert!(m.is_adjacent(g), "monitor must be 1-hop");
            }
        }
    }

    #[test]
    fn backward_walk_covers_every_other_cell(cols in 2u16..12, rows in 2u16..12, hx in 0u16..12, hy in 0u16..12) {
        // From any hole, the backward walk (probing forks both ways) must
        // give every other cell a chance to contribute a spare: this is
        // the "does not miss any chance to find a spare node" guarantee
        // behind Theorem 1 and Corollary 1.
        prop_assume!(cols >= 3 || rows % 2 == 0);
        prop_assume!(rows >= 3 || cols % 2 == 0);
        let hole = GridCoord::new(hx % cols, hy % rows);
        let t = CycleTopology::build(cols, rows).unwrap();
        let mut reached: HashSet<GridCoord> = HashSet::new();
        let mut stack: Vec<GridCoord> = vec![t.monitors(hole)];
        while let Some(u) = stack.pop() {
            if u == hole || !reached.insert(u) {
                continue;
            }
            match t.backward_from(u, hole) {
                Some(BackwardStep::One(p)) => stack.push(p),
                Some(BackwardStep::ForkAB { a, b }) => {
                    stack.push(a);
                    stack.push(b);
                }
                Some(BackwardStep::ProbeThen { probe, next }) => {
                    // Probes are spare-checks: they count as covered.
                    reached.insert(probe);
                    stack.push(next);
                }
                None => {}
            }
        }
        prop_assert_eq!(
            reached.len(),
            t.cell_count() - 1,
            "walk from hole {} missed cells",
            hole
        );
    }

    #[test]
    fn forward_distance_is_consistent(cols in 2u16..16, rows in 2u16..16, steps in 1usize..40) {
        prop_assume!(cols % 2 == 0 || rows % 2 == 0);
        let c = HamiltonCycle::build(cols, rows).unwrap();
        let start = GridCoord::new(0, 0);
        let mut cur = start;
        for _ in 0..steps {
            cur = c.successor(cur);
        }
        prop_assert_eq!(
            c.forward_distance(start, cur),
            steps % (cols as usize * rows as usize)
        );
    }

    #[test]
    fn dual_paths_are_hamilton_paths(ci in 1u16..12, ri in 1u16..12) {
        let (cols, rows) = (2 * ci + 1, 2 * ri + 1);
        let d = DualPathCycle::build(cols, rows).unwrap();
        let all: HashSet<GridCoord> = (0..cols)
            .flat_map(|x| (0..rows).map(move |y| GridCoord::new(x, y)))
            .collect();
        validate_path(&d.path_one(), &all).unwrap();
        validate_path(&d.path_two(), &all).unwrap();
    }
}
