//! Property-based tests for the baseline schemes.

use proptest::prelude::*;
use wsn_baselines::{smart, vf, ArConfig, ArRecovery, SmartConfig, VfConfig};
use wsn_grid::{deploy, GridNetwork, GridSystem};
use wsn_simcore::SimRng;

fn random_network(cols: u16, rows: u16, count: usize, seed: u64) -> GridNetwork {
    let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
    let mut rng = SimRng::seed_from_u64(seed);
    let pos = deploy::uniform(&sys, count, &mut rng);
    GridNetwork::new(sys, &pos)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ar_terminates_and_accounts_every_process(
        cols in 3u16..9, rows in 3u16..9,
        count in 0usize..250, seed in 0u64..5_000,
    ) {
        let net = random_network(cols, rows, count, seed);
        let mut rec = ArRecovery::new(net, ArConfig::default().with_seed(seed)).unwrap();
        let report = rec.run();
        prop_assert!(report.run.is_quiescent(), "AR must terminate");
        prop_assert_eq!(
            report.metrics.processes_initiated,
            report.metrics.processes_converged + report.metrics.processes_failed
        );
        rec.network().debug_invariants();
        // Node conservation: AR never creates or destroys nodes.
        prop_assert_eq!(report.final_stats.enabled, report.initial_stats.enabled);
    }

    #[test]
    fn ar_with_plentiful_spares_fully_covers(
        cols in 3u16..8, rows in 3u16..8, seed in 0u64..2_000,
    ) {
        // The 4x density regime AR is designed for: recovery succeeds.
        let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::per_cell_exact(&sys, 4, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        // One hole.
        let idx = rng.range_usize(sys.cell_count());
        for id in net.members(sys.coord_of(idx)).unwrap().to_vec() {
            net.disable_node(id).unwrap();
        }
        let mut rec = ArRecovery::new(net, ArConfig::default().with_seed(seed)).unwrap();
        let report = rec.run();
        prop_assert!(report.fully_covered, "4/cell density must recover");
        prop_assert!(report.metrics.processes_converged >= 1);
    }

    #[test]
    fn smart_coverage_follows_density(
        cols in 2u16..9, rows in 2u16..9,
        count in 1usize..300, seed in 0u64..5_000,
    ) {
        // Two sequential scans balance approximately (each scan rounds),
        // which is why the paper says scan methods need several-x density
        // to *guarantee* coverage. At >= 2 nodes/cell they always cover;
        // below 1 node/cell they never can.
        let mut net = random_network(cols, rows, count, seed);
        let cells = net.system().cell_count();
        let report = smart::run(&mut net, &SmartConfig { seed });
        prop_assert_eq!(report.final_stats.enabled, count);
        if count >= 2 * cells {
            prop_assert!(report.fully_covered, "2x density must cover");
        }
        if count < cells {
            prop_assert!(!report.fully_covered);
        }
    }

    #[test]
    fn smart_move_count_is_bounded_by_two_scans(
        cols in 2u16..8, rows in 2u16..8,
        count in 1usize..200, seed in 0u64..2_000,
    ) {
        // Each unit of flow crosses each row boundary at most once per
        // scan; total moves are bounded by count * (cols + rows) hops.
        let mut net = random_network(cols, rows, count, seed);
        let report = smart::run(&mut net, &SmartConfig { seed });
        prop_assert!(
            report.metrics.moves <= (count * (cols as usize + rows as usize)) as u64,
            "moves {} exceed the scan bound",
            report.metrics.moves
        );
    }

    #[test]
    fn vf_terminates_and_conserves_nodes(
        cols in 2u16..7, rows in 2u16..7,
        count in 0usize..120, seed in 0u64..2_000,
    ) {
        let mut net = random_network(cols, rows, count, seed);
        let cfg = VfConfig { seed, max_rounds: 80, ..VfConfig::default() };
        let report = vf::run(&mut net, &cfg);
        prop_assert!(report.metrics.rounds <= 80);
        prop_assert_eq!(report.final_stats.enabled, count);
        // VF never tears a node out of the surveillance area.
        prop_assert!(report.metrics.distance.is_finite());
    }

    #[test]
    fn vf_never_reduces_occupancy_catastrophically(
        seed in 0u64..1_000,
    ) {
        // Repulsion spreads nodes; occupied-cell count should not
        // collapse (allow small jitter-induced dips).
        let mut net = random_network(6, 6, 100, seed);
        let before = net.stats().occupied;
        let report = vf::run(&mut net, &VfConfig { seed, max_rounds: 80, ..VfConfig::default() });
        prop_assert!(
            report.final_stats.occupied + 3 >= before,
            "occupancy collapsed {} -> {}",
            before,
            report.final_stats.occupied
        );
    }
}
