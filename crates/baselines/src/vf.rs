//! A virtual-force deployment baseline (after Wang, Cao & La Porta \[5\]
//! and Zou & Chakrabarty \[10\], as characterized by the paper's §1).
//!
//! Nodes exert pairwise virtual forces: repulsion when closer than a
//! threshold, attraction when farther (up to a communication-range
//! cutoff). Each round every node takes a bounded step along its net
//! force; density gradients slowly push nodes from crowded cells toward
//! sparse regions and holes. The paper's criticism — "without global
//! information, these methods may take a long time to converge and are
//! not practical … due to the cost in total moving distance, total number
//! of movements" — is exactly what the bench harness measures.

use serde::{Deserialize, Serialize};

use wsn_coverage::scheme::{SchemeDetails, SchemeReport};
use wsn_geometry::{Point2, Vec2};
use wsn_grid::GridNetwork;
use wsn_simcore::{Metrics, Quiescence, RunReport, SimRng, TraceEvent, TraceLog};

/// Configuration for the virtual-force baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfConfig {
    /// Seed for the deterministic RNG (used only for symmetry breaking).
    pub seed: u64,
    /// Preferred inter-node spacing, as a multiple of the cell side
    /// (nodes closer than this repel; default √2, the spacing that
    /// tiles one node per cell).
    pub spacing_factor: f64,
    /// Maximum step per round, as a multiple of the cell side.
    pub step_factor: f64,
    /// Movements smaller than this fraction of the cell side are treated
    /// as jitter and not executed.
    pub min_step_factor: f64,
    /// Round cap.
    pub max_rounds: u64,
}

impl Default for VfConfig {
    fn default() -> Self {
        VfConfig {
            seed: 0,
            spacing_factor: std::f64::consts::SQRT_2,
            step_factor: 0.5,
            min_step_factor: 0.05,
            max_rounds: 300,
        }
    }
}

/// VF-specific extras attached to the report's
/// [`details`](SchemeReport::details) — the exemplar for the typed
/// extension mechanism:
///
/// ```
/// # use wsn_baselines::vf::{self, VfConfig, VfDetails};
/// # use wsn_grid::{deploy, GridNetwork, GridSystem};
/// # use wsn_simcore::SimRng;
/// # let sys = GridSystem::new(3, 3, 4.4721).unwrap();
/// # let mut rng = SimRng::seed_from_u64(1);
/// # let pos = deploy::uniform(&sys, 20, &mut rng);
/// # let mut net = GridNetwork::new(sys, &pos);
/// let report = vf::run(&mut net, &VfConfig::default());
/// let details = report.details.get::<VfDetails>().expect("VF attaches details");
/// assert_eq!(details.equilibrium, report.run.is_quiescent());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfDetails {
    /// `true` when the force field settled (no node above the jitter
    /// threshold) before the round cap.
    pub equilibrium: bool,
}

/// Runs the virtual-force protocol to force-equilibrium (no node wants to
/// move) or the round cap, then re-elects heads and reports. The network
/// is updated in place, so callers can compare before/after state
/// without cloning.
pub fn run(net: &mut GridNetwork, config: &VfConfig) -> SchemeReport {
    run_with(net, config, &mut TraceLog::disabled())
}

/// [`run`], additionally capturing the event trace: one
/// [`TraceEvent::NodeMoved`] (with `process: None` — force steps belong
/// to no replacement process) per executed movement. The round
/// sequence, RNG draws and report are identical to an untraced run.
pub fn run_traced(net: &mut GridNetwork, config: &VfConfig) -> (SchemeReport, TraceLog) {
    let mut trace = TraceLog::new();
    let report = run_with(net, config, &mut trace);
    (report, trace)
}

fn run_with(net: &mut GridNetwork, config: &VfConfig, trace: &mut TraceLog) -> SchemeReport {
    let mut rng = SimRng::seed_from_u64(config.seed);
    let initial_stats = net.stats();
    let mut metrics = Metrics::new();
    let r = net.system().cell_side();
    let spacing = config.spacing_factor * r;
    let cutoff = net.system().comm_range();
    let max_step = config.step_factor * r;
    let min_step = config.min_step_factor * r;
    let area = net.system().area();

    let mut rounds = 0;
    let mut equilibrium = false;
    for round in 0..config.max_rounds {
        rounds = round + 1;
        // Gather enabled ids and positions (forces computed on a frozen
        // snapshot — synchronous rounds).
        let enabled: Vec<(wsn_simcore::NodeId, Point2)> = net
            .nodes()
            .iter()
            .filter(|n| n.status().is_enabled())
            .map(|n| (n.id(), n.position()))
            .collect();
        // VF recomputes the whole force field every round — the global
        // per-round scan the paper criticizes; bill it so the comparison
        // against SR's O(changed) detection is quantified.
        metrics.cells_scanned += enabled.len() as u64;
        let mut moved_any = false;
        for (i, &(id, pos)) in enabled.iter().enumerate() {
            let mut force = Vec2::ZERO;
            for (j, &(_, other)) in enabled.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = pos.distance(other);
                if d >= cutoff || d <= f64::EPSILON {
                    continue;
                }
                let dir = match (pos - other).normalized() {
                    Some(v) => v,
                    None => continue,
                };
                if d < spacing {
                    // Repulsion grows as the overlap deepens.
                    force = force + dir * ((spacing - d) / spacing);
                } else {
                    // Mild attraction keeps the network connected.
                    force = force - dir * (0.2 * (d - spacing) / cutoff);
                }
            }
            let mag = force.length();
            if mag * r < min_step {
                continue;
            }
            let step = force * (max_step / mag.max(1.0));
            let mut target = pos + step;
            // Tiny deterministic jitter breaks symmetric stalemates.
            target.x += (rng.uniform_f64() - 0.5) * 1e-3 * r;
            target.y += (rng.uniform_f64() - 0.5) * 1e-3 * r;
            let target = area.clamp_point(target);
            if let Ok(out) = net.move_node(id, target) {
                if out.distance >= min_step {
                    metrics.record_move(out.distance);
                    moved_any = true;
                    trace.record(
                        round,
                        TraceEvent::NodeMoved {
                            process: None,
                            node: id,
                            from: out.from.into(),
                            to: out.to.into(),
                            distance: out.distance,
                        },
                    );
                }
            }
        }
        if !moved_any {
            equilibrium = true;
            break;
        }
    }
    metrics.rounds = rounds;
    let mut rng2 = SimRng::seed_from_u64(config.seed.wrapping_add(1));
    net.elect_all_heads(wsn_grid::HeadElection::FirstId, &mut rng2);
    let final_stats = net.stats();
    SchemeReport {
        run: RunReport {
            rounds,
            termination: if equilibrium {
                Quiescence::Reached
            } else {
                Quiescence::MaxRoundsExceeded
            },
        },
        metrics,
        initial_stats,
        fully_covered: final_stats.vacant == 0,
        final_stats,
        processes: Vec::new(),
        health: wsn_simcore::ProtocolHealth::default(),
        details: SchemeDetails::new(VfDetails { equilibrium }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_grid::{deploy, GridCoord, GridSystem};

    #[test]
    fn spreads_clustered_deployment_toward_coverage() {
        let sys = GridSystem::new(6, 6, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        // Everything clustered in one corner: terrible initial coverage.
        let pos = deploy::clustered(&sys, 72, 1, 3.0, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let before = net.stats().occupied;
        let report = run(&mut net, &VfConfig::default());
        assert!(
            report.final_stats.occupied > before,
            "VF must improve occupancy: {} -> {}",
            before,
            report.final_stats.occupied
        );
        assert!(report.metrics.moves > 0);
        assert!(report.metrics.distance > 0.0);
    }

    #[test]
    fn single_hole_costs_many_movements() {
        // The paper's point: VF moves *lots* of nodes to fix one hole.
        let sys = GridSystem::new(6, 6, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let pos = deploy::with_holes(&sys, &[GridCoord::new(3, 3)], 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let report = run(&mut net, &VfConfig::default());
        // Dozens of nodes jostle, far more than SR's 1-2 moves.
        assert!(
            report.metrics.moves > 10,
            "expected many VF moves, got {}",
            report.metrics.moves
        );
    }

    #[test]
    fn equilibrium_network_stops_early() {
        // One node per cell at the centers: perfectly spaced, no forces
        // above threshold.
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let pos: Vec<Point2> = sys
            .iter_coords()
            .map(|c| sys.cell_center(c).unwrap())
            .collect();
        let mut net = GridNetwork::new(sys, &pos);
        let report = run(&mut net, &VfConfig::default());
        assert!(
            report.metrics.rounds < 50,
            "should settle fast, took {}",
            report.metrics.rounds
        );
        assert!(report.run.is_quiescent());
        assert!(report.details.get::<VfDetails>().unwrap().equilibrium);
    }

    #[test]
    fn masked_region_keeps_nodes_out_of_obstacles() {
        use wsn_grid::RegionMask;
        let sys = GridSystem::new(8, 8, 4.4721).unwrap();
        let mask = RegionMask::l_shape(8, 8);
        let mut rng = SimRng::seed_from_u64(21);
        let pos = deploy::uniform_masked(&sys, &mask, 100, &mut rng);
        let mut net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
        let report = run(&mut net, &VfConfig::default());
        assert!(report.metrics.moves > 0);
        // Moves into obstacles are rejected by the network, so stats
        // stay confined to the enabled region throughout.
        assert!(report.final_stats.occupied + report.final_stats.vacant == mask.enabled_count());
        // The in-place contract: `net` is the settled network, and the
        // invariants (incl. no-node-in-disabled-cell) still hold on it.
        assert_eq!(net.stats(), report.final_stats);
        net.debug_invariants();
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let sys = GridSystem::new(5, 4, 4.4721).unwrap();
            let mut rng = SimRng::seed_from_u64(7);
            let pos = deploy::uniform(&sys, 50, &mut rng);
            GridNetwork::new(sys, &pos)
        };
        let a = run(&mut mk(), &VfConfig::default());
        let b = run(&mut mk(), &VfConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn report_display() {
        let sys = GridSystem::new(3, 3, 1.0).unwrap();
        let mut net = GridNetwork::new(sys, &[]);
        let report = run(&mut net, &VfConfig::default());
        assert!(!report.fully_covered);
        assert!(!report.to_string().is_empty());
    }
}
