//! **AR**: the unsynchronized snake-like cascading replacement of Jiang
//! et al. (WSNS'07), re-implemented from this paper's description.
//!
//! Differences from SR, per the paper's §1/§5:
//!
//! * *No synchronization:* "due to the lack of synchronization, the
//!   existence of a hole will incur multiple replacement processes" —
//!   here, **every** head 4-adjacent to a vacant cell initiates its own
//!   process.
//! * *Local direction choice:* with only 1-hop knowledge and no global
//!   cycle, each cascade picks its next cell greedily (continue straight
//!   away from the hole when possible, otherwise scan the remaining
//!   neighbors), keeping a per-process visited set.
//! * *Conflicts fail:* two cascades that ask the same head in the same
//!   round collide — the later one fails (the paper's "overreaction").
//!   A cascade that runs into a vacant cell or runs out of unvisited
//!   neighbors also fails; there is no Hamilton path to guarantee
//!   progress, which is why AR "requires at least 4×m×n deployed nodes"
//!   to be reliable.
//! * *Redundant deliveries:* when several processes recover the same
//!   hole, the extra spares still travel (unnecessary node movements,
//!   counted) and the processes still count as converged — Figure 6(b)
//!   measures spare-finding, not usefulness.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use wsn_geometry::sample;
use wsn_grid::{Direction, GridCoord, GridNetwork};
use wsn_simcore::{
    derive_stream_seed, ChangeDrivenProtocol, Endpoint, EnergyModel, Fate, Metrics, NetLink,
    NetModelSpec, NodeId, ProtocolHealth, RoundOutcome, RoundProtocol, RoundRunner, SimRng,
    TraceEvent, TraceLog,
};

use wsn_coverage::actor::NET_STREAM_TAG;
use wsn_coverage::scheme::{SchemeDetails, SchemeReport};
use wsn_coverage::SpareSelection;

/// Configuration for an AR run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArConfig {
    /// Seed for the run's deterministic RNG.
    pub seed: u64,
    /// Head-election policy (same role as in SR).
    pub election: wsn_grid::HeadElection,
    /// Spare-selection policy within a cell.
    pub spare_selection: SpareSelection,
    /// Round cap.
    pub max_rounds: u64,
    /// Cascade TTL in hops (default `m·n` at run time when 0).
    pub ttl: usize,
    /// Record a trace.
    pub trace: bool,
}

impl Default for ArConfig {
    fn default() -> Self {
        ArConfig {
            seed: 0,
            election: wsn_grid::HeadElection::FirstId,
            spare_selection: SpareSelection::ClosestToTarget,
            max_rounds: 100_000,
            ttl: 0,
            trace: false,
        }
    }
}

impl ArConfig {
    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables tracing.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

#[derive(Debug, Clone)]
struct ArProcess {
    id: u64,
    current_target: GridCoord,
    asked: GridCoord,
    visited: HashSet<GridCoord>,
    hops: usize,
    /// First round in which the asked head may act — the in-flight ask's
    /// arrival time under the event engine's network model. Always 0 in
    /// classic mode (asks arrive by axiom).
    ready_at: u64,
}

/// The AR protocol as a round-based state machine.
#[derive(Debug, Clone)]
pub struct ArProtocol {
    net: GridNetwork,
    config: ArConfig,
    rng: SimRng,
    trace: TraceLog,
    metrics: Metrics,
    energy: EnergyModel,
    active: Vec<ArProcess>,
    next_id: u64,
    /// (initiator, hole) pairs that already fired during the current
    /// vacancy episode of the hole; cleared when the hole fills.
    initiated: HashSet<(GridCoord, GridCoord)>,
    /// Cells where a cascade died. Re-detecting them would retry the
    /// same doomed walk (AR has no mechanism that could do better on a
    /// second attempt), so they stay blacklisted — this is also what
    /// bounds AR in the under-provisioned regime the paper excludes
    /// ("requires at least 4×m×n deployed nodes").
    failed_holes: HashSet<GridCoord>,
    ttl: usize,
    /// Current holes (dense row-major indices), maintained from the
    /// network's occupancy change journal — detection walks this in
    /// O(holes) instead of scanning every cell (word-level
    /// [`wsn_grid::HoleSet`], ascending order). AR keeps its redundant
    /// multi-initiation *per hole*; only hole discovery is indexed.
    pending_holes: wsn_grid::HoleSet,
    /// Scratch buffer reused by detection sweeps.
    detect_buf: Vec<usize>,
    /// The network model, when driven by the event engine
    /// ([`ArProtocol::with_net_model`]); `None` in classic mode, where
    /// detection and asks are axiomatic.
    link: Option<NetLink>,
}

impl ArProtocol {
    /// Creates the protocol and elects initial heads.
    pub fn new(mut net: GridNetwork, config: ArConfig) -> ArProtocol {
        let mut rng = SimRng::seed_from_u64(config.seed);
        net.elect_all_heads(config.election, &mut rng);
        let trace = if config.trace {
            TraceLog::new()
        } else {
            TraceLog::disabled()
        };
        let ttl = if config.ttl == 0 {
            net.system().cell_count()
        } else {
            config.ttl
        };
        let mut pending_holes = wsn_grid::HoleSet::new(net.system().cell_count());
        pending_holes.assign_vacant(net.occupancy());
        net.clear_changed_cells();
        ArProtocol {
            net,
            config,
            rng,
            trace,
            metrics: Metrics::new(),
            energy: EnergyModel::default(),
            active: Vec::new(),
            next_id: 0,
            initiated: HashSet::new(),
            failed_holes: HashSet::new(),
            ttl,
            pending_holes,
            detect_buf: Vec::new(),
            link: None,
        }
    }

    /// Like [`ArProtocol::new`] but with every monitor probe and cascade
    /// ask routed through `spec`'s network model. The link draws from
    /// its own [`derive_stream_seed`]ed stream (tag
    /// [`NET_STREAM_TAG`], shared with the SR/SR-SC event engines), so
    /// under [`NetModelSpec::Ideal`] runs are identical to classic runs.
    pub fn with_net_model(net: GridNetwork, config: ArConfig, spec: NetModelSpec) -> ArProtocol {
        let link = spec.link(derive_stream_seed(config.seed, &[NET_STREAM_TAG]));
        let mut p = ArProtocol::new(net, config);
        p.link = Some(link);
        p
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        &self.net
    }

    /// Cost counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The distributed-health ledger accumulated by the network model
    /// (all-zero in classic mode).
    pub fn health(&self) -> ProtocolHealth {
        self.link.as_ref().map(|l| l.health).unwrap_or_default()
    }

    /// Marks all still-active processes failed (driver calls this after
    /// the run ends). Processes whose ask was still in flight count as
    /// [`ProtocolHealth::stalled_repairs`].
    pub fn fail_remaining(&mut self, round: u64) {
        for p in self.active.drain(..) {
            self.metrics.processes_failed += 1;
            if p.ready_at > round {
                if let Some(link) = &mut self.link {
                    link.health.stalled_repairs += 1;
                }
            }
            self.trace.record(
                round,
                TraceEvent::ProcessFailed {
                    process: p.id,
                    reason: "run ended".into(),
                },
            );
        }
    }

    fn endpoint(&self, cell: GridCoord) -> Endpoint {
        let idx = self
            .net
            .system()
            .index_of(cell)
            .expect("cascade cells are in bounds");
        let c = self
            .net
            .system()
            .cell_center(cell)
            .expect("cascade cells are in bounds");
        Endpoint {
            cell: idx as u64,
            pos: (c.x, c.y),
        }
    }

    /// Routes a cascade ask over the network model. Returns the round
    /// the ask becomes actionable, or `None` when the network dropped it
    /// (`0` — immediately actionable — in classic mode).
    fn route_ask(&mut self, from: GridCoord, to: GridCoord, round: u64) -> Option<u64> {
        let (ef, et) = (self.endpoint(from), self.endpoint(to));
        let Some(link) = &mut self.link else {
            return Some(0);
        };
        let fate = link.route(ef, et);
        let deliver_at = match fate {
            Fate::Deliver(extra) => Some(round + 1 + extra),
            Fate::Drop => {
                link.health.lost_cascades += 1;
                None
            }
        };
        self.trace.record(
            round,
            TraceEvent::NetMessage {
                msg: "cascade_ask".into(),
                from: from.into(),
                to: to.into(),
                deliver_at,
            },
        );
        deliver_at
    }

    /// A monitor's same-tick occupancy probe of a watched hole. Always
    /// succeeds in classic mode.
    fn probe(&mut self, monitor: GridCoord, hole: GridCoord, round: u64) -> bool {
        let (ef, et) = (self.endpoint(monitor), self.endpoint(hole));
        let Some(link) = &mut self.link else {
            return true;
        };
        let probed = link.sense(ef, et);
        self.trace.record(
            round,
            TraceEvent::NetMessage {
                msg: "monitor_probe".into(),
                from: monitor.into(),
                to: hole.into(),
                deliver_at: probed.then_some(round),
            },
        );
        probed
    }

    fn is_occupied(&self, cell: GridCoord) -> bool {
        !self.net.is_vacant(cell).unwrap_or(true)
    }

    /// Whether `cell` can host a head — in bounds and not disabled by
    /// the network's region mask. Disabled cells read as occupied in the
    /// vacancy index (they are never holes), so cascades must filter
    /// them out explicitly before relaying through or initiating from
    /// them.
    fn is_usable(&self, cell: GridCoord) -> bool {
        self.net.is_cell_enabled(cell).unwrap_or(false)
    }

    fn select_spare(&self, cell: GridCoord, target: GridCoord) -> Option<NodeId> {
        if self.net.spare_count(cell).ok()? == 0 {
            return None;
        }
        let spares = self.net.spare_iter(cell).ok()?;
        let center = self
            .net
            .system()
            .cell_center(target)
            .expect("targets are cells");
        match self.config.spare_selection {
            SpareSelection::FirstId => spares.min(),
            SpareSelection::ClosestToTarget => spares.min_by(|&a, &b| {
                let da = self
                    .net
                    .node(a)
                    .expect("deployed")
                    .position()
                    .distance_squared(center);
                let db = self
                    .net
                    .node(b)
                    .expect("deployed")
                    .position()
                    .distance_squared(center);
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            }),
            SpareSelection::MaxEnergy => spares.max_by(|&a, &b| {
                let ea = self.net.node(a).expect("deployed").battery().charge();
                let eb = self.net.node(b).expect("deployed").battery().charge();
                ea.partial_cmp(&eb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            }),
        }
    }

    /// Moves `node` into the central area of `target`; elects it head if
    /// the target was headless.
    fn execute_move(&mut self, process: u64, node: NodeId, target: GridCoord, round: u64) -> f64 {
        let rect = self
            .net
            .system()
            .cell_rect(target)
            .expect("targets are cells");
        let dest =
            sample::point_in_central_area(&rect, self.rng.uniform_f64(), self.rng.uniform_f64());
        let out = self
            .net
            .move_node(node, dest)
            .expect("AR moves stay inside the area");
        if self.net.head_of(target).expect("in bounds").is_none() {
            self.net.set_head(target, node).expect("node just arrived");
        }
        self.metrics.record_move(out.distance);
        self.metrics.energy += self.energy.movement(out.distance);
        self.trace.record(
            round,
            TraceEvent::NodeMoved {
                process: Some(process),
                node,
                from: out.from.into(),
                to: out.to.into(),
                distance: out.distance,
            },
        );
        out.distance
    }

    /// Picks the next cell of a cascade using 1-hop knowledge (heads
    /// beacon their cell's enabled count, so a head knows which neighbors
    /// hold spares): prefer an unvisited neighbor **with a spare**, then
    /// the straight-line continuation away from the target, then any
    /// occupied unvisited neighbor. A cascade with no occupied unvisited
    /// neighbor is dead-ended.
    fn next_cell(&self, p: &ArProcess) -> Option<GridCoord> {
        let sys = self.net.system();
        let straight = p
            .current_target
            .direction_to(p.asked)
            .and_then(|d| sys.neighbor(p.asked, d));
        let mut candidates: Vec<GridCoord> = Vec::with_capacity(4);
        if let Some(s) = straight {
            candidates.push(s);
        }
        for d in Direction::ALL {
            if let Some(c) = sys.neighbor(p.asked, d) {
                if !candidates.contains(&c) {
                    candidates.push(c);
                }
            }
        }
        candidates
            .retain(|c| self.is_usable(*c) && !p.visited.contains(c) && *c != p.current_target);
        candidates
            .iter()
            .copied()
            .find(|&c| self.net.spare_count(c).map(|n| n > 0).unwrap_or(false))
            .or_else(|| candidates.iter().copied().find(|&c| self.is_occupied(c)))
    }

    fn fail(&mut self, p: ArProcess, reason: &str, round: u64) {
        self.failed_holes.insert(p.current_target);
        self.metrics.processes_failed += 1;
        self.trace.record(
            round,
            TraceEvent::ProcessFailed {
                process: p.id,
                reason: reason.into(),
            },
        );
    }

    /// Whether hole `idx` would trigger a new initiation if a round ran
    /// now: not blacklisted by a dead cascade, and at least one occupied
    /// neighbor has not yet fired during the hole's current vacancy
    /// episode. (A hole owned by an active cascade is covered by the
    /// active-process check in [`ChangeDrivenProtocol::has_pending_work`],
    /// which runs first.)
    fn hole_is_actionable(&self, idx: usize) -> bool {
        let g = self.net.system().coord_of(idx);
        if self.failed_holes.contains(&g) {
            return false;
        }
        if self.active.iter().any(|p| p.current_target == g) {
            return false;
        }
        self.net
            .system()
            .neighbors(g)
            .into_iter()
            .any(|w| self.is_usable(w) && self.is_occupied(w) && !self.initiated.contains(&(w, g)))
    }
}

impl ChangeDrivenProtocol for ArProtocol {
    fn has_pending_work(&self, _round: u64) -> bool {
        if !self.active.is_empty() {
            return true;
        }
        // Journal entries not yet folded into the pending set.
        if self.net.changed_cells().iter().any(|&c| {
            self.net.occupancy().is_vacant(c as usize) && self.hole_is_actionable(c as usize)
        }) {
            return true;
        }
        self.pending_holes
            .iter()
            .any(|idx| self.net.occupancy().is_vacant(idx) && self.hole_is_actionable(idx))
    }
}

impl RoundProtocol for ArProtocol {
    fn execute_round(&mut self, round: u64) -> RoundOutcome {
        let mut progress = false;
        let repaired = self.net.repair_heads(self.config.election, &mut self.rng);
        progress |= repaired > 0;

        // Processes execute in id order within the round; conflicts are
        // emergent — a cascade whose cell was drained by an earlier
        // cascade this round finds it vacant and fails.
        let mut still_active = Vec::with_capacity(self.active.len());
        let processes = std::mem::take(&mut self.active);
        for mut p in processes {
            if round < p.ready_at {
                // The ask is still in flight; the asked head does not
                // yet know it has been drafted.
                still_active.push(p);
                continue;
            }
            if !self.is_occupied(p.asked) {
                // No head to act and no synchronization to wait under:
                // either the cell was a hole all along or a competing
                // cascade just drained it (the paper's "overreaction").
                self.fail(p, "cascade ran into a vacant cell", round);
                progress = true;
                continue;
            }
            if let Some(spare) = self.select_spare(p.asked, p.current_target) {
                self.execute_move(p.id, spare, p.current_target, round);
                self.metrics.processes_converged += 1;
                self.trace.record(
                    round,
                    TraceEvent::ProcessConverged {
                        process: p.id,
                        moves: p.hops as u64 + 1,
                    },
                );
                progress = true;
                continue;
            }
            if p.hops + 1 >= self.ttl {
                self.fail(p, "ttl exhausted", round);
                progress = true;
                continue;
            }
            match self.next_cell(&p) {
                Some(next) => {
                    self.metrics.record_message();
                    self.metrics.energy += self.energy.message_cost;
                    let ask = self.route_ask(p.asked, next, round);
                    // The relaying head committed when it sent the ask:
                    // it moves whether or not the ask survives the
                    // channel (the honest failure mode — a stranded
                    // cascade, not a clairvoyant abort).
                    let head = self
                        .net
                        .head_of(p.asked)
                        .expect("in bounds")
                        .expect("occupied cells are headed after repair");
                    self.execute_move(p.id, head, p.current_target, round);
                    p.visited.insert(p.asked);
                    p.current_target = p.asked;
                    p.asked = next;
                    p.hops += 1;
                    match ask {
                        Some(ready_at) => {
                            p.ready_at = ready_at;
                            still_active.push(p);
                        }
                        None => {
                            // Dropped in transit. The hole the cascade
                            // just created stays re-detectable: the loss
                            // was weather, not structure, so it is not
                            // blacklisted.
                            self.metrics.processes_failed += 1;
                            self.trace.record(
                                round,
                                TraceEvent::ProcessFailed {
                                    process: p.id,
                                    reason: "cascade ask lost in the network".into(),
                                },
                            );
                        }
                    }
                    progress = true;
                }
                None => {
                    self.fail(p, "no unvisited neighbor to continue", round);
                    progress = true;
                }
            }
        }
        self.active = still_active;

        // Detection: every occupied neighbor of a vacant cell initiates,
        // once per vacancy episode. Episodes reset when the hole fills.
        let mut initiated = std::mem::take(&mut self.initiated);
        initiated.retain(|(_, hole)| !self.is_occupied(*hole));
        self.initiated = initiated;
        self.net.fold_changed_cells_into(&mut self.pending_holes);
        let mut buf = std::mem::take(&mut self.detect_buf);
        buf.clear();
        buf.extend(self.pending_holes.iter());
        self.metrics.cells_scanned += buf.len() as u64;
        for &hole_idx in &buf {
            let g = self.net.system().coord_of(hole_idx);
            // A vacancy created by a cascade relaying through is owned by
            // that cascade (its own tail refills it); without this, every
            // relay would spawn up to three fresh processes and the
            // network would storm. The paper's AR redundancy is the
            // multiple *initial* detectors per hole, modeled below.
            if self.active.iter().any(|p| p.current_target == g) {
                continue;
            }
            if self.failed_holes.contains(&g) {
                continue; // a cascade already died here; see field docs
            }
            let mut spawned_for_hole = 0u64;
            for w in self.net.system().neighbors(g) {
                if !self.is_usable(w) || !self.is_occupied(w) || self.initiated.contains(&(w, g)) {
                    continue;
                }
                if !self.probe(w, g, round) {
                    // The probe drowned; this monitor retries next round
                    // (its (w, g) pair stays unfired).
                    continue;
                }
                self.initiated.insert((w, g));
                if spawned_for_hole > 0 {
                    if let Some(link) = &mut self.link {
                        // AR's defining defect, now measured: every
                        // process past the first duplicates a repair
                        // already underway.
                        link.health.duplicate_initiations += 1;
                    }
                }
                spawned_for_hole += 1;
                let id = self.next_id;
                self.next_id += 1;
                self.metrics.processes_initiated += 1;
                self.trace.record(
                    round,
                    TraceEvent::ProcessInitiated {
                        process: id,
                        hole: g.into(),
                        initiator: w.into(),
                    },
                );
                let mut visited = HashSet::new();
                visited.insert(g);
                self.active.push(ArProcess {
                    id,
                    current_target: g,
                    asked: w,
                    visited,
                    hops: 0,
                    ready_at: 0,
                });
                progress = true;
            }
        }
        self.detect_buf = buf;

        // An ask in flight is scheduled work: the run must not go
        // quiescent while one is still traveling. Never fires in classic
        // mode (ready_at stays 0).
        progress |= self.active.iter().any(|p| p.ready_at > round);

        self.metrics.rounds = round + 1;
        if progress {
            RoundOutcome::Progress
        } else {
            RoundOutcome::Quiescent
        }
    }
}

/// Drives AR recovery to quiescence.
#[derive(Debug, Clone)]
pub struct ArRecovery {
    protocol: ArProtocol,
    runner: RoundRunner,
}

impl ArRecovery {
    /// Prepares an AR run (initial head election happens here).
    ///
    /// # Errors
    ///
    /// Returns [`wsn_simcore::EngineError`] for a zero round cap.
    pub fn new(net: GridNetwork, config: ArConfig) -> Result<ArRecovery, wsn_simcore::EngineError> {
        let runner = RoundRunner::with_quiescence(config.max_rounds.max(1), 2)?;
        Ok(ArRecovery {
            protocol: ArProtocol::new(net, config),
            runner,
        })
    }

    /// Like [`ArRecovery::new`] but driven through `spec`'s network
    /// model ([`ArProtocol::with_net_model`]): probes and asks can be
    /// lost or delayed, and [`SchemeReport::health`] reports the damage.
    ///
    /// # Errors
    ///
    /// Returns [`wsn_simcore::EngineError`] for a zero round cap.
    pub fn new_event(
        net: GridNetwork,
        config: ArConfig,
        spec: NetModelSpec,
    ) -> Result<ArRecovery, wsn_simcore::EngineError> {
        let runner = RoundRunner::with_quiescence(config.max_rounds.max(1), 2)?;
        Ok(ArRecovery {
            protocol: ArProtocol::with_net_model(net, config, spec),
            runner,
        })
    }

    /// Runs to quiescence (or the cap) and reports.
    pub fn run(&mut self) -> SchemeReport {
        let initial_stats = self.protocol.network().stats();
        let run = self.runner.run(&mut self.protocol);
        self.protocol.fail_remaining(run.rounds);
        let final_stats = self.protocol.network().stats();
        SchemeReport {
            run,
            metrics: *self.protocol.metrics(),
            initial_stats,
            final_stats,
            fully_covered: final_stats.vacant == 0,
            processes: Vec::new(),
            health: self.protocol.health(),
            details: SchemeDetails::none(),
        }
    }

    /// Runs using the change-driven quiescence check
    /// ([`wsn_simcore::ChangeDrivenProtocol`]), the counterpart of
    /// [`wsn_coverage::Recovery::run_adaptive`]: the run ends the moment
    /// AR's own bookkeeping (active cascades + actionable pending holes)
    /// shows nothing outstanding, skipping the idle-confirmation rounds
    /// [`ArRecovery::run`] burns. Coverage outcomes are identical to
    /// `run`'s, and on runs that end fully covered so is every cost
    /// counter except `rounds` (the `wsn-bench` conformance suite pins
    /// this). When recovery ends *incomplete*, blacklisted holes stay in
    /// the pending set, so `run`'s trailing idle-confirmation sweeps
    /// additionally bill `cells_scanned` that this fast path skips.
    pub fn run_adaptive(&mut self) -> SchemeReport {
        let initial_stats = self.protocol.network().stats();
        let run = self.runner.run_change_driven(&mut self.protocol);
        self.protocol.fail_remaining(run.rounds);
        let final_stats = self.protocol.network().stats();
        SchemeReport {
            run,
            metrics: *self.protocol.metrics(),
            initial_stats,
            final_stats,
            fully_covered: final_stats.vacant == 0,
            processes: Vec::new(),
            health: self.protocol.health(),
            details: SchemeDetails::none(),
        }
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        self.protocol.network()
    }

    /// Consumes the driver and releases the network (see
    /// [`wsn_coverage::Recovery::into_network`]).
    pub fn into_network(self) -> GridNetwork {
        self.protocol.net
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        self.protocol.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_grid::{deploy, GridSystem};

    fn network_with_holes(
        cols: u16,
        rows: u16,
        holes: &[GridCoord],
        per_cell: usize,
        seed: u64,
    ) -> GridNetwork {
        let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::with_holes(&sys, holes, per_cell, &mut rng);
        GridNetwork::new(sys, &pos)
    }

    #[test]
    fn single_hole_recovers_but_with_multiple_processes() {
        let hole = GridCoord::new(2, 2);
        let net = network_with_holes(6, 6, &[hole], 2, 1);
        let mut rec = ArRecovery::new(net, ArConfig::default().with_seed(1)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        // The headline AR defect: an interior hole has 4 occupied
        // neighbors, so 4 processes fire for one hole (SR fires 1).
        assert_eq!(report.metrics.processes_initiated, 4);
        assert!(report.metrics.processes_converged >= 1);
        // Redundant deliveries => more than one movement for one hole.
        assert!(report.metrics.moves >= 1);
        rec.network().debug_invariants();
    }

    #[test]
    fn corner_hole_gets_two_processes() {
        let hole = GridCoord::new(0, 0);
        let net = network_with_holes(6, 6, &[hole], 2, 3);
        let mut rec = ArRecovery::new(net, ArConfig::default().with_seed(3)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        assert_eq!(report.metrics.processes_initiated, 2);
    }

    #[test]
    fn ar_moves_exceed_sr_moves_on_dense_networks() {
        // The paper's headline comparison at healthy density.
        use wsn_coverage::{Recovery, SrConfig};
        let holes = [
            GridCoord::new(1, 1),
            GridCoord::new(4, 2),
            GridCoord::new(2, 4),
        ];
        let net_ar = network_with_holes(6, 6, &holes, 3, 5);
        let net_sr = network_with_holes(6, 6, &holes, 3, 5);
        let ar = ArRecovery::new(net_ar, ArConfig::default().with_seed(5))
            .unwrap()
            .run();
        let sr = Recovery::new(net_sr, SrConfig::default().with_seed(5))
            .unwrap()
            .run();
        assert!(ar.fully_covered && sr.fully_covered);
        assert!(
            ar.metrics.processes_initiated > sr.metrics.processes_initiated,
            "AR {} vs SR {} processes",
            ar.metrics.processes_initiated,
            sr.metrics.processes_initiated
        );
        assert!(
            ar.metrics.moves >= sr.metrics.moves,
            "AR {} vs SR {} moves",
            ar.metrics.moves,
            sr.metrics.moves
        );
    }

    #[test]
    fn vacant_neighbor_dead_end_fails_cleanly() {
        // A 2x2 block of holes: cascades bump into vacant cells.
        let holes = [
            GridCoord::new(2, 2),
            GridCoord::new(3, 2),
            GridCoord::new(2, 3),
            GridCoord::new(3, 3),
        ];
        let net = network_with_holes(6, 6, &holes, 2, 7);
        let mut rec = ArRecovery::new(net, ArConfig::default().with_seed(7)).unwrap();
        let report = rec.run();
        // Recovery may or may not complete, but the run must terminate
        // and account every process.
        assert!(report.run.is_quiescent());
        assert_eq!(
            report.metrics.processes_initiated,
            report.metrics.processes_converged + report.metrics.processes_failed
        );
        rec.network().debug_invariants();
    }

    #[test]
    fn no_spares_cannot_complete_coverage() {
        // With 15 nodes for 16 cells AR can shuffle the hole around —
        // uncoordinated cascades even dump nodes into occupied cells,
        // creating transient "spares" for other cascades (the redundancy
        // defect) — but coverage can never complete, and the run must
        // terminate with every process accounted for.
        let net = network_with_holes(4, 4, &[GridCoord::new(1, 1)], 1, 9);
        assert_eq!(net.total_spares(), 0);
        let mut rec = ArRecovery::new(net, ArConfig::default().with_seed(9)).unwrap();
        let report = rec.run();
        assert!(report.run.is_quiescent());
        assert!(!report.fully_covered);
        assert!(report.final_stats.vacant >= 1);
        assert!(report.metrics.processes_failed >= 1);
        assert_eq!(
            report.metrics.processes_initiated,
            report.metrics.processes_converged + report.metrics.processes_failed
        );
        rec.network().debug_invariants();
    }

    #[test]
    fn adaptive_run_matches_classic_run_minus_idle_rounds() {
        let mk = || network_with_holes(6, 6, &[GridCoord::new(2, 2), GridCoord::new(4, 4)], 3, 21);
        let classic = ArRecovery::new(mk(), ArConfig::default().with_seed(21))
            .unwrap()
            .run();
        let adaptive = ArRecovery::new(mk(), ArConfig::default().with_seed(21))
            .unwrap()
            .run_adaptive();
        assert!(classic.fully_covered && adaptive.fully_covered);
        assert!(classic.run.is_quiescent() && adaptive.run.is_quiescent());
        // Identical work, fewer bookkeeping rounds.
        assert_eq!(
            adaptive.metrics.ignoring_rounds(),
            classic.metrics.ignoring_rounds()
        );
        assert!(adaptive.run.rounds < classic.run.rounds);
    }

    #[test]
    fn masked_region_recovers_without_entering_disabled_cells() {
        use wsn_grid::RegionShape;
        for (i, shape) in RegionShape::IRREGULAR.into_iter().enumerate() {
            let sys = GridSystem::new(10, 10, 4.4721).unwrap();
            let mask = shape.build_mask(10, 10);
            let mut rng = SimRng::seed_from_u64(40 + i as u64);
            let enabled: Vec<GridCoord> = mask.iter_enabled().collect();
            let holes: Vec<GridCoord> = enabled.iter().copied().step_by(13).collect();
            let pos = deploy::with_holes_masked(&sys, &mask, &holes, 2, &mut rng);
            let net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
            let mut rec =
                ArRecovery::new(net, ArConfig::default().with_seed(40 + i as u64)).unwrap();
            let report = rec.run();
            assert!(report.run.is_quiescent(), "{shape}");
            assert!(report.fully_covered, "{shape}: {report}");
            rec.network().debug_invariants();
            for node in rec.network().nodes() {
                if node.status().is_enabled() {
                    let cell = sys.cell_of(node.position()).unwrap();
                    assert!(mask.is_enabled(cell), "{shape}: node in disabled {cell}");
                }
            }
        }
    }

    #[test]
    fn event_ideal_matches_classic() {
        let mk = || network_with_holes(6, 6, &[GridCoord::new(2, 2), GridCoord::new(4, 4)], 2, 31);
        let classic = ArRecovery::new(mk(), ArConfig::default().with_seed(31))
            .unwrap()
            .run();
        let mut event =
            ArRecovery::new_event(mk(), ArConfig::default().with_seed(31), NetModelSpec::Ideal)
                .unwrap();
        let report = event.run();
        assert_eq!(report, classic);
        assert_eq!(report.metrics, classic.metrics);
        // AR's redundancy, measured: an interior hole spawns 4 processes,
        // 3 of which duplicate a repair already underway.
        assert!(report.health.duplicate_initiations >= 3);
        assert_eq!(report.health.lost_cascades, 0);
        event.network().debug_invariants();
    }

    #[test]
    fn lossy_event_runs_lose_cascades() {
        let spec = NetModelSpec::Bernoulli {
            loss_ppm: 300_000,
            latency: 1,
        };
        let mut lost = 0u64;
        let mut dropped = 0u64;
        for seed in 0..16 {
            // One node per cell plus a lone corner spare: every repair
            // must cascade across the grid, exposing asks to the weather.
            let sys = GridSystem::new(6, 6, 4.4721).unwrap();
            let mut rng = SimRng::seed_from_u64(seed);
            let mut pos = deploy::with_holes(&sys, &[GridCoord::new(3, 3)], 1, &mut rng);
            pos.push(sys.cell_rect(GridCoord::new(0, 0)).unwrap().center());
            let net = GridNetwork::new(sys, &pos);
            let mut rec =
                ArRecovery::new_event(net, ArConfig::default().with_seed(seed), spec).unwrap();
            let report = rec.run();
            lost += report.health.lost_cascades;
            dropped += report.health.messages_dropped;
            assert!(report.run.is_quiescent(), "seed {seed}");
            assert_eq!(
                report.metrics.processes_initiated,
                report.metrics.processes_converged + report.metrics.processes_failed,
                "seed {seed}"
            );
            rec.network().debug_invariants();
        }
        assert!(dropped > 0, "30% loss must drop something across 16 runs");
        assert!(lost > 0, "some dropped ask must strand a cascade");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let net = network_with_holes(6, 6, &[GridCoord::new(3, 3)], 2, 11);
            ArRecovery::new(net, ArConfig::default().with_seed(seed))
                .unwrap()
                .run()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn report_display_nonempty() {
        let net = network_with_holes(4, 4, &[], 2, 13);
        let mut rec = ArRecovery::new(net, ArConfig::default()).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        assert_eq!(report.metrics.processes_initiated, 0);
        assert!(!report.to_string().is_empty());
    }
}
