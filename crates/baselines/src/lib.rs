//! Baseline hole-recovery schemes the paper compares against (or cites as
//! the alternatives SR displaces).
//!
//! * [`ar`] — **AR**, the primary comparator (Jiang et al., WSNS'07 — the
//!   paper's reference \[3\] and its §5 baseline): the same snake-like
//!   cascading replacement as SR but **without** the Hamilton-cycle
//!   synchronization. Every head adjacent to a hole initiates its own
//!   process, so a single hole spawns several concurrent cascades —
//!   redundant processes, unnecessary movements, and outright failures
//!   when cascades collide. The WSNS'07 paper is not publicly available;
//!   the model here follows this paper's characterization of AR, with the
//!   concrete choices documented in DESIGN.md §5.
//! * [`vf`] — a virtual-force scheme (after Wang et al. \[5\] and Zou &
//!   Chakrabarty \[10\]): density gradients push nodes from crowded regions
//!   toward sparse ones. Converges slowly with many small movements —
//!   exactly the cost profile the paper's introduction criticizes.
//! * [`smart`] — a SMART-style scan balancer (after Wu & Yang \[6\]): rows
//!   then columns are balanced globally, which recovers coverage quickly
//!   but moves nodes all over the grid "just for providing the coverage
//!   for a single hole".
//!
//! All baselines report the same cost counters as SR
//! ([`wsn_simcore::Metrics`]) so the bench harness can plot them on the
//! paper's axes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar;
pub mod schemes;
pub mod smart;
pub mod vf;

pub use ar::{ArConfig, ArProtocol, ArRecovery};
pub use schemes::{builtins, Ar, ArBuilder, Smart, Vf, VfBuilder};
pub use smart::SmartConfig;
pub use vf::{VfConfig, VfDetails};
