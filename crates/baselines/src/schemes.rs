//! The baseline schemes behind the uniform
//! [`ReplacementScheme`] API, plus [`builtins`] — the registry of all
//! five built-in schemes (SR and SR-SC from [`wsn_coverage`], AR, VF and
//! SMART from this crate).
//!
//! This crate is the lowest point in the dependency graph that can see
//! every built-in scheme, which is why the full registry is assembled
//! here rather than in `wsn_coverage`.

use wsn_coverage::scheme::{
    detach_network, DriveMode, NetworkSpec, ReplacementScheme, SchemeRegistry, SchemeReport, Sr,
    SrSc, Unsupported,
};
use wsn_grid::GridNetwork;
use wsn_simcore::TraceLog;

use crate::ar::{ArConfig, ArRecovery};
use crate::smart::{self, SmartConfig};
use crate::vf::{self, VfConfig};

/// The registry of the five built-in schemes, in stable order:
/// `sr`, `sr-sc`, `ar`, `vf`, `smart` — all with default
/// configurations. Register plugins on top, or build a custom registry
/// from individually configured schemes:
///
/// ```
/// use wsn_baselines::builtins;
///
/// let registry = builtins();
/// let ids: Vec<String> = registry.ids().iter().map(|id| id.to_string()).collect();
/// assert_eq!(ids, ["sr", "sr-sc", "ar", "vf", "smart"]);
/// assert_eq!(registry.get("ar").unwrap().label(), "AR");
/// ```
pub fn builtins() -> SchemeRegistry {
    let mut registry = SchemeRegistry::new();
    registry
        .register(Sr::new())
        .expect("built-in ids are valid and unique");
    registry
        .register(SrSc::new())
        .expect("built-in ids are valid and unique");
    registry
        .register(Ar::new())
        .expect("built-in ids are valid and unique");
    registry
        .register(Vf::new())
        .expect("built-in ids are valid and unique");
    registry
        .register(Smart::new())
        .expect("built-in ids are valid and unique");
    registry
}

/// **AR** — the unsynchronized cascading baseline ([`crate::ar`]) — as a
/// registrable scheme. Configure via [`Ar::builder`].
#[derive(Debug, Clone, Default)]
pub struct Ar {
    config: ArConfig,
}

impl Ar {
    /// AR with the default configuration.
    pub fn new() -> Ar {
        Ar::default()
    }

    /// Starts a builder over the default configuration.
    pub fn builder() -> ArBuilder {
        ArBuilder {
            config: ArConfig::default(),
        }
    }

    /// AR over an explicit config (`seed` is overridden per run).
    pub fn from_config(config: ArConfig) -> Ar {
        Ar { config }
    }

    /// The configuration this scheme runs with.
    pub fn config(&self) -> &ArConfig {
        &self.config
    }

    /// `ArRecovery::new` silently clamps a zero round cap; the trait
    /// path surfaces it as an error instead of rewriting the config.
    fn check_config(&self) -> Result<(), Unsupported> {
        if self.config.max_rounds == 0 {
            return Err(Unsupported::new(self.id(), "max_rounds must be at least 1"));
        }
        Ok(())
    }
}

/// Builder for [`Ar`].
#[derive(Debug, Clone)]
pub struct ArBuilder {
    config: ArConfig,
}

impl ArBuilder {
    /// Sets the head-election policy.
    #[must_use]
    pub fn election(mut self, election: wsn_grid::HeadElection) -> Self {
        self.config.election = election;
        self
    }

    /// Sets the spare-selection policy.
    #[must_use]
    pub fn spare_selection(mut self, selection: wsn_coverage::SpareSelection) -> Self {
        self.config.spare_selection = selection;
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.config.max_rounds = max_rounds;
        self
    }

    /// Sets the cascade TTL in hops (0 = `m·n` at run time).
    #[must_use]
    pub fn ttl(mut self, ttl: usize) -> Self {
        self.config.ttl = ttl;
        self
    }

    /// Enables or disables tracing.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.config.trace = trace;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Ar {
        Ar {
            config: self.config,
        }
    }
}

impl ReplacementScheme for Ar {
    fn id(&self) -> &str {
        "ar"
    }

    fn label(&self) -> &str {
        "AR"
    }

    fn supports(&self, _spec: &NetworkSpec) -> Result<(), Unsupported> {
        // AR needs no global structure: any region with a 4-neighborhood
        // works (cascades simply fail where the region starves them).
        // Config validity is part of the supports() contract (matrices
        // validate up front), so the round cap is checked here too.
        self.check_config()
    }

    fn supports_change_driven(&self) -> bool {
        true
    }

    fn supports_event_driven(&self) -> bool {
        true
    }

    fn run(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported> {
        self.check_config()?;
        let owned = detach_network(net);
        let mut config = self.config.clone();
        config.seed = seed;
        let mut recovery = match mode {
            DriveMode::EventDriven { net: spec } => ArRecovery::new_event(owned, config, spec),
            _ => ArRecovery::new(owned, config),
        }
        .expect("round cap pre-validated");
        let report = match mode {
            DriveMode::ChangeDriven => recovery.run_adaptive(),
            _ => recovery.run(),
        };
        *net = recovery.into_network();
        Ok(report)
    }

    fn run_traced(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        self.check_config()?;
        let owned = detach_network(net);
        let mut config = self.config.clone().with_trace(true);
        config.seed = seed;
        let mut recovery = match mode {
            DriveMode::EventDriven { net: spec } => ArRecovery::new_event(owned, config, spec),
            _ => ArRecovery::new(owned, config),
        }
        .expect("round cap pre-validated");
        let report = match mode {
            DriveMode::ChangeDriven => recovery.run_adaptive(),
            _ => recovery.run(),
        };
        let trace = recovery.trace().clone();
        *net = recovery.into_network();
        Ok((report, trace))
    }
}

/// **VF** — the virtual-force baseline ([`crate::vf`]) — as a
/// registrable scheme. Configure via [`Vf::builder`].
#[derive(Debug, Clone, Default)]
pub struct Vf {
    config: VfConfig,
}

impl Vf {
    /// VF with the default configuration.
    pub fn new() -> Vf {
        Vf::default()
    }

    /// Starts a builder over the default configuration.
    pub fn builder() -> VfBuilder {
        VfBuilder {
            config: VfConfig::default(),
        }
    }

    /// VF over an explicit config (`seed` is overridden per run).
    pub fn from_config(config: VfConfig) -> Vf {
        Vf { config }
    }

    /// The configuration this scheme runs with.
    pub fn config(&self) -> &VfConfig {
        &self.config
    }
}

/// Builder for [`Vf`].
#[derive(Debug, Clone)]
pub struct VfBuilder {
    config: VfConfig,
}

impl VfBuilder {
    /// Sets the preferred inter-node spacing (multiple of the cell side).
    #[must_use]
    pub fn spacing_factor(mut self, factor: f64) -> Self {
        self.config.spacing_factor = factor;
        self
    }

    /// Sets the per-round step bound (multiple of the cell side).
    #[must_use]
    pub fn step_factor(mut self, factor: f64) -> Self {
        self.config.step_factor = factor;
        self
    }

    /// Sets the jitter threshold (multiple of the cell side).
    #[must_use]
    pub fn min_step_factor(mut self, factor: f64) -> Self {
        self.config.min_step_factor = factor;
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.config.max_rounds = max_rounds;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Vf {
        Vf {
            config: self.config,
        }
    }
}

impl ReplacementScheme for Vf {
    fn id(&self) -> &str {
        "vf"
    }

    fn label(&self) -> &str {
        "VF"
    }

    fn supports(&self, _spec: &NetworkSpec) -> Result<(), Unsupported> {
        // Forces are geometric; any region works (moves into disabled
        // cells are rejected by the network itself).
        Ok(())
    }

    fn run(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported> {
        if mode != DriveMode::Classic {
            return Err(Unsupported::new(
                self.id(),
                "VF supports only the classic driver (the force field is global and recomputed every round)",
            ));
        }
        let mut config = self.config.clone();
        config.seed = seed;
        Ok(vf::run(net, &config))
    }

    fn run_traced(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        if mode != DriveMode::Classic {
            return Err(Unsupported::new(
                self.id(),
                "VF supports only the classic driver (the force field is global and recomputed every round)",
            ));
        }
        let mut config = self.config.clone();
        config.seed = seed;
        Ok(vf::run_traced(net, &config))
    }
}

/// **SMART** — the scan-balancing baseline ([`crate::smart`]) — as a
/// registrable scheme.
#[derive(Debug, Clone, Default)]
pub struct Smart {
    config: SmartConfig,
}

impl Smart {
    /// SMART with the default configuration.
    pub fn new() -> Smart {
        Smart::default()
    }

    /// SMART over an explicit config (`seed` is overridden per run).
    pub fn from_config(config: SmartConfig) -> Smart {
        Smart { config }
    }

    /// The configuration this scheme runs with.
    pub fn config(&self) -> &SmartConfig {
        &self.config
    }
}

impl ReplacementScheme for Smart {
    fn id(&self) -> &str {
        "smart"
    }

    fn label(&self) -> &str {
        "SMART"
    }

    fn supports(&self, _spec: &NetworkSpec) -> Result<(), Unsupported> {
        // Scan lines split at obstacles into independent runs; any
        // region works.
        Ok(())
    }

    fn run(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported> {
        if mode != DriveMode::Classic {
            return Err(Unsupported::new(
                self.id(),
                "SMART supports only the classic driver (scans are one-shot and global)",
            ));
        }
        let mut config = self.config.clone();
        config.seed = seed;
        Ok(smart::run(net, &config))
    }

    fn run_traced(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        if mode != DriveMode::Classic {
            return Err(Unsupported::new(
                self.id(),
                "SMART supports only the classic driver (scans are one-shot and global)",
            ));
        }
        let mut config = self.config.clone();
        config.seed = seed;
        Ok(smart::run_traced(net, &config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_grid::{deploy, GridCoord, GridSystem, RegionMask};
    use wsn_simcore::SimRng;

    fn holed_network(seed: u64) -> GridNetwork {
        let sys = GridSystem::new(6, 6, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::with_holes(&sys, &[GridCoord::new(2, 2)], 2, &mut rng);
        GridNetwork::new(sys, &pos)
    }

    #[test]
    fn builtins_register_all_five_in_stable_order() {
        let reg = builtins();
        assert_eq!(reg.len(), 5);
        let ids: Vec<String> = reg.ids().iter().map(ToString::to_string).collect();
        assert_eq!(ids, ["sr", "sr-sc", "ar", "vf", "smart"]);
        let labels: Vec<&str> = reg.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["SR", "SR-SC", "AR", "VF", "SMART"]);
    }

    #[test]
    fn every_builtin_drives_a_single_hole_in_place() {
        for scheme in builtins().iter() {
            let mut net = holed_network(11);
            scheme
                .supports(&NetworkSpec::of(&net))
                .unwrap_or_else(|e| panic!("{e}"));
            let before = net.stats();
            let report = scheme.run(&mut net, 11, DriveMode::Classic).unwrap();
            assert_eq!(report.initial_stats, before, "{}", scheme.id());
            assert_eq!(report.final_stats, net.stats(), "{}", scheme.id());
            assert!(report.metrics.moves >= 1, "{}", scheme.id());
            // VF is best-effort (density gradients, no guarantee — the
            // paper's criticism); every replacement scheme must close
            // the hole.
            if scheme.id() != "vf" {
                assert!(report.fully_covered, "{}: {report}", scheme.id());
            }
            net.debug_invariants();
        }
    }

    #[test]
    fn ar_scheme_matches_direct_driver_and_change_driven_conforms() {
        let ar = Ar::new();
        let mut net = holed_network(5);
        let via_trait = ar.run(&mut net, 5, DriveMode::Classic).unwrap();
        let direct = ArRecovery::new(holed_network(5), ArConfig::default().with_seed(5))
            .unwrap()
            .run();
        assert_eq!(via_trait, direct);
        assert!(ar.supports_change_driven());
        let mut net2 = holed_network(5);
        let adaptive = ar.run(&mut net2, 5, DriveMode::ChangeDriven).unwrap();
        assert_eq!(
            adaptive.metrics.ignoring_rounds(),
            direct.metrics.ignoring_rounds()
        );
    }

    #[test]
    fn vf_and_smart_reject_non_classic_modes_without_touching_the_network() {
        use wsn_simcore::NetModelSpec;
        let mut net = holed_network(7);
        let before = net.stats();
        for id in ["vf", "smart"] {
            let reg = builtins();
            let scheme = reg.get(id).unwrap();
            assert!(!scheme.supports_change_driven());
            assert!(!scheme.supports_event_driven());
            for mode in [
                DriveMode::ChangeDriven,
                DriveMode::EventDriven {
                    net: NetModelSpec::Ideal,
                },
            ] {
                let err = scheme.run(&mut net, 7, mode).unwrap_err();
                assert_eq!(err.scheme, id);
                assert_eq!(net.stats(), before, "{id} must not touch the network");
            }
        }
    }

    #[test]
    fn ar_event_driven_matches_direct_event_driver() {
        use wsn_simcore::NetModelSpec;
        let ar = Ar::new();
        assert!(ar.supports_event_driven());
        let mut net = holed_network(5);
        let via_trait = ar
            .run(
                &mut net,
                5,
                DriveMode::EventDriven {
                    net: NetModelSpec::Ideal,
                },
            )
            .unwrap();
        let direct = ArRecovery::new_event(
            holed_network(5),
            ArConfig::default().with_seed(5),
            NetModelSpec::Ideal,
        )
        .unwrap()
        .run();
        assert_eq!(via_trait, direct);
        assert_eq!(via_trait.health, direct.health);
        // And Ideal event runs match classic runs (same weather-free axioms).
        let classic = ar
            .run(&mut holed_network(5), 5, DriveMode::Classic)
            .unwrap();
        assert_eq!(via_trait, classic);
        assert_eq!(via_trait.metrics, classic.metrics);
    }

    #[test]
    fn baselines_support_masked_regions() {
        let spec = NetworkSpec::masked(RegionMask::annulus(8, 8));
        for scheme in builtins().iter() {
            assert!(
                scheme.supports(&spec).is_ok(),
                "{} must support the annulus",
                scheme.id()
            );
        }
    }

    #[test]
    fn builders_fold_config() {
        let ar = Ar::builder()
            .election(wsn_grid::HeadElection::Random)
            .spare_selection(wsn_coverage::SpareSelection::FirstId)
            .max_rounds(42)
            .ttl(9)
            .trace(true)
            .build();
        assert_eq!(ar.config().max_rounds, 42);
        assert_eq!(ar.config().ttl, 9);
        assert!(ar.config().trace);
        let vf = Vf::builder()
            .spacing_factor(1.5)
            .step_factor(0.25)
            .min_step_factor(0.01)
            .max_rounds(77)
            .build();
        assert_eq!(vf.config().max_rounds, 77);
        assert_eq!(vf.config().step_factor, 0.25);
        let smart = Smart::from_config(SmartConfig { seed: 3 });
        assert_eq!(smart.config().seed, 3);
        assert_eq!(Ar::from_config(ar.config().clone()).id(), "ar");
        assert_eq!(Vf::from_config(vf.config().clone()).label(), "VF");
    }
}
