//! A SMART-style scan-based balancing baseline (after Wu & Yang,
//! INFOCOM'05 — the paper's reference \[6\]).
//!
//! SMART treats the virtual grid as a 2-D mesh and balances load with two
//! global scans: first every **row** equalizes its cells' node counts,
//! then every **column** does the same. After both scans each cell holds
//! `⌊avg⌋` or `⌈avg⌉` nodes, so any total of at least `m·n` nodes yields
//! complete coverage. Movement is cascaded: a unit of flow crosses one
//! cell boundary per hop, which is what the movement counters measure.
//!
//! The paper's criticism (§1): the scans "require node adjustments in the
//! entire grid network, causing many unnecessary node movements just for
//! providing the coverage for a single hole" — the comparison benches
//! quantify exactly that against SR.

use serde::{Deserialize, Serialize};

use wsn_coverage::scheme::{SchemeDetails, SchemeReport};
use wsn_geometry::sample;
use wsn_grid::{GridCoord, GridNetwork};
use wsn_simcore::{Metrics, NodeId, Quiescence, RunReport, SimRng, TraceEvent, TraceLog};

/// Configuration for the SMART-style balancer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SmartConfig {
    /// Seed for the deterministic RNG (destination sampling within
    /// cells).
    pub seed: u64,
}

/// Balanced per-cell targets for a line of `loads`: each cell gets
/// `⌊avg⌋` or `⌈avg⌉`, with the remainder spread from the front.
fn line_targets(loads: &[usize]) -> Vec<usize> {
    let total: usize = loads.iter().sum();
    let n = loads.len();
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

/// Executes the cascaded flow for one line of cells. `cells` lists the
/// coordinates of the line in scan order.
fn balance_line(
    net: &mut GridNetwork,
    cells: &[GridCoord],
    metrics: &mut Metrics,
    rng: &mut SimRng,
    round: u64,
    trace: &mut TraceLog,
) {
    // Each line scan reads every cell of the line — SMART's global
    // adjustment cost ("node adjustments in the entire grid network");
    // billed so the scan-work comparison against SR is quantified.
    metrics.cells_scanned += cells.len() as u64;
    let loads: Vec<usize> = cells
        .iter()
        .map(|&c| net.members(c).expect("line cells in bounds").len())
        .collect();
    let targets = line_targets(&loads);
    // Flow across boundary i (between cells i and i+1): prefix sum of
    // surplus. Positive flows move right in a left-to-right pass,
    // negative flows move left in a right-to-left pass; prefix-sum
    // feasibility guarantees the source cell always has the nodes.
    let mut flows: Vec<i64> = Vec::with_capacity(cells.len().saturating_sub(1));
    let mut acc: i64 = 0;
    for i in 0..cells.len().saturating_sub(1) {
        acc += loads[i] as i64 - targets[i] as i64;
        flows.push(acc);
    }
    let mut transfer = |net: &mut GridNetwork, from: GridCoord, to: GridCoord, count: u64| {
        for _ in 0..count {
            let members = net.members(from).expect("in bounds");
            let node: NodeId = *members
                .iter()
                .max()
                .expect("flow feasibility guarantees a node is available");
            let rect = net.system().cell_rect(to).expect("in bounds");
            let dest = sample::point_in_central_area(&rect, rng.uniform_f64(), rng.uniform_f64());
            let out = net.move_node(node, dest).expect("targets inside area");
            metrics.record_move(out.distance);
            trace.record(
                round,
                TraceEvent::NodeMoved {
                    process: None,
                    node,
                    from: out.from.into(),
                    to: out.to.into(),
                    distance: out.distance,
                },
            );
        }
    };
    for i in 0..flows.len() {
        if flows[i] > 0 {
            transfer(net, cells[i], cells[i + 1], flows[i] as u64);
        }
    }
    for i in (0..flows.len()).rev() {
        if flows[i] < 0 {
            transfer(net, cells[i + 1], cells[i], (-flows[i]) as u64);
        }
    }
}

/// Splits a scan line into maximal runs of enabled cells. On masked
/// networks each run balances independently: SMART's cascaded flow
/// crosses one cell boundary per hop and cannot hop over an obstacle.
/// On full (rectangular) networks this is the whole line, unchanged.
fn enabled_runs(net: &GridNetwork, line: &[GridCoord]) -> Vec<Vec<GridCoord>> {
    let mut runs = Vec::new();
    let mut current = Vec::new();
    for &c in line {
        if net.is_cell_enabled(c).unwrap_or(false) {
            current.push(c);
        } else if !current.is_empty() {
            runs.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        runs.push(current);
    }
    runs
}

/// Runs the two-scan balance (rows, then columns), re-elects heads, and
/// reports. On masked networks each maximal enabled interval of a line
/// balances independently (flow cannot cross disabled cells). The
/// network is updated in place, so callers can compare before/after
/// state without cloning.
pub fn run(net: &mut GridNetwork, config: &SmartConfig) -> SchemeReport {
    run_with(net, config, &mut TraceLog::disabled())
}

/// [`run`], additionally capturing the event trace: one
/// [`TraceEvent::NodeMoved`] (with `process: None` — scan flow belongs
/// to no replacement process) per cascaded hop, stamped with the scan
/// number as the round (row scan = round 0, column scan = round 1). The
/// RNG draws and report are identical to an untraced run.
pub fn run_traced(net: &mut GridNetwork, config: &SmartConfig) -> (SchemeReport, TraceLog) {
    let mut trace = TraceLog::new();
    let report = run_with(net, config, &mut trace);
    (report, trace)
}

fn run_with(net: &mut GridNetwork, config: &SmartConfig, trace: &mut TraceLog) -> SchemeReport {
    let mut rng = SimRng::seed_from_u64(config.seed);
    let initial_stats = net.stats();
    let mut metrics = Metrics::new();
    let sys = *net.system();
    // Scan 1: every row.
    for y in 0..sys.rows() {
        let cells: Vec<GridCoord> = (0..sys.cols()).map(|x| GridCoord::new(x, y)).collect();
        for run in enabled_runs(net, &cells) {
            balance_line(net, &run, &mut metrics, &mut rng, 0, trace);
        }
    }
    // Scan 2: every column.
    for x in 0..sys.cols() {
        let cells: Vec<GridCoord> = (0..sys.rows()).map(|y| GridCoord::new(x, y)).collect();
        for run in enabled_runs(net, &cells) {
            balance_line(net, &run, &mut metrics, &mut rng, 1, trace);
        }
    }
    metrics.rounds = 2; // two global scans
    net.elect_all_heads(wsn_grid::HeadElection::FirstId, &mut rng);
    let final_stats = net.stats();
    SchemeReport {
        run: RunReport {
            rounds: 2,
            termination: Quiescence::Reached,
        },
        metrics,
        initial_stats,
        fully_covered: final_stats.vacant == 0,
        final_stats,
        processes: Vec::new(),
        health: wsn_simcore::ProtocolHealth::default(),
        details: SchemeDetails::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_grid::{deploy, GridSystem};

    #[test]
    fn line_targets_spread_remainder() {
        assert_eq!(line_targets(&[5, 0, 1]), vec![2, 2, 2]);
        assert_eq!(line_targets(&[5, 0, 2]), vec![3, 2, 2]);
        assert_eq!(line_targets(&[0, 0, 0]), vec![0, 0, 0]);
        assert_eq!(line_targets(&[1, 1, 1, 1]), vec![1, 1, 1, 1]);
    }

    #[test]
    fn balances_any_network_with_enough_nodes() {
        let sys = GridSystem::new(6, 5, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        // Clustered deployment with >= one node per cell available.
        let pos = deploy::clustered(&sys, 2 * sys.cell_count(), 2, 4.0, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let report = run(&mut net, &SmartConfig::default());
        assert!(report.fully_covered, "{report}");
        // Perfect balance: every cell within floor/ceil of the average.
        assert_eq!(report.final_stats.vacant, 0);
    }

    #[test]
    fn exact_balance_after_scans() {
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let pos = deploy::clustered(&sys, 32, 1, 2.0, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let total = net.enabled_count();
        let report = run(&mut net, &SmartConfig { seed: 2 });
        let avg = total as f64 / 16.0;
        // After balancing, occupancy equals cell count when avg >= 1.
        assert!(avg >= 1.0);
        assert!(report.fully_covered);
    }

    #[test]
    fn single_hole_costs_grid_wide_movement() {
        // The paper's criticism: one hole, yet the scans shuffle nodes
        // everywhere.
        use wsn_coverage::{Recovery, SrConfig};
        let sys = GridSystem::new(6, 6, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let pos = deploy::with_holes(&sys, &[GridCoord::new(3, 3)], 2, &mut rng);
        let mut smart_net = GridNetwork::new(sys, &pos);
        let sr_net = GridNetwork::new(sys, &pos);
        let smart = run(&mut smart_net, &SmartConfig { seed: 3 });
        let sr = Recovery::new(sr_net, SrConfig::default().with_seed(3))
            .unwrap()
            .run();
        assert!(smart.fully_covered && sr.fully_covered);
        assert!(
            smart.metrics.moves > 4 * sr.metrics.moves,
            "SMART {} moves vs SR {} moves",
            smart.metrics.moves,
            sr.metrics.moves
        );
    }

    #[test]
    fn already_balanced_network_moves_nothing() {
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let report = run(&mut net, &SmartConfig { seed: 4 });
        assert_eq!(report.metrics.moves, 0);
        assert!(report.fully_covered);
    }

    #[test]
    fn too_few_nodes_cannot_cover() {
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let pos = deploy::uniform(&sys, 10, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let report = run(&mut net, &SmartConfig { seed: 5 });
        assert!(!report.fully_covered);
        // Still balanced: at most one node per cell when total < cells.
        assert_eq!(report.final_stats.occupied, 10);
    }

    #[test]
    fn masked_region_balances_each_enabled_interval() {
        use wsn_grid::RegionMask;
        let sys = GridSystem::new(8, 8, 4.4721).unwrap();
        let mask = RegionMask::annulus(8, 8);
        let mut rng = SimRng::seed_from_u64(11);
        // Two nodes per enabled cell, then drain a few cells to make
        // imbalance the scans must fix.
        let enabled: Vec<GridCoord> = mask.iter_enabled().collect();
        let holes: Vec<GridCoord> = enabled.iter().copied().step_by(9).collect();
        let pos = deploy::with_holes_masked(&sys, &mask, &holes, 2, &mut rng);
        let mut net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
        let report = run(&mut net, &SmartConfig { seed: 11 });
        assert!(report.fully_covered, "{report}");
        assert_eq!(report.final_stats.enabled, report.initial_stats.enabled);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let sys = GridSystem::new(5, 5, 4.4721).unwrap();
            let mut rng = SimRng::seed_from_u64(6);
            let pos = deploy::uniform(&sys, 60, &mut rng);
            GridNetwork::new(sys, &pos)
        };
        assert_eq!(
            run(&mut mk(), &SmartConfig { seed: 1 }),
            run(&mut mk(), &SmartConfig { seed: 1 })
        );
    }

    #[test]
    fn preserves_network_invariants() {
        let sys = GridSystem::new(5, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(7);
        let pos = deploy::clustered(&sys, 50, 2, 3.0, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let before = net.enabled_count();
        let report = run(&mut net, &SmartConfig { seed: 7 });
        assert_eq!(report.final_stats.enabled, before);
    }
}
