//! Property-based tests for percentile reporting, pinned against a
//! sort-based oracle.
//!
//! The p50/p99/p999 surface of the steady-state availability reports
//! runs through [`Histogram::percentile`] (binned, mergeable) and
//! [`percentile_sorted`] (exact, in-memory). Both must stay total over
//! degenerate inputs — empty, single-sample, all-identical — and the
//! binned estimate must never drift more than one bin width from the
//! exact answer.

use proptest::prelude::*;
use wsn_stats::{percentile_sorted, Histogram, StreamingStat};

/// Exact sort-based oracle: linear interpolation over the order
/// statistics, independent of the library implementation.
fn oracle(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64))
}

/// Sort-based nearest-rank oracle — the quantile definition the binned
/// estimator rounds to: the smallest sample whose cumulative count
/// reaches `p`% of the total. The histogram's estimate must stay within
/// one bin width of this sample (interpolated definitions can differ by
/// a whole rank, and adjacent order statistics may sit bins apart).
fn nearest_rank(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let target = p.clamp(0.0, 100.0) / 100.0 * sorted.len() as f64;
    let idx = (target.ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    Some(sorted[idx])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentile_sorted_matches_oracle(
        mut samples in prop::collection::vec(-1000.0f64..1000.0, 0..200),
        p in 0.0f64..100.0,
    ) {
        let want = oracle(&samples, p);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got = percentile_sorted(&samples, p);
        match (got, want) {
            (None, None) => {}
            (Some(g), Some(w)) => prop_assert!((g - w).abs() < 1e-9, "{g} vs {w}"),
            other => prop_assert!(false, "mismatch: {other:?}"),
        }
    }

    #[test]
    fn histogram_percentile_within_one_bin_of_oracle(
        samples in prop::collection::vec(0.0f64..100.0, 1..300),
        bins in 1usize..64,
        p in 0.0f64..100.0,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins).unwrap();
        for &x in &samples {
            h.record(x);
        }
        let got = h.percentile(p).unwrap();
        let want = nearest_rank(&samples, p).unwrap();
        let bin_width = 100.0 / bins as f64;
        prop_assert!(
            (got - want).abs() <= bin_width + 1e-9,
            "binned {got} vs nearest-rank {want} with bin width {bin_width}"
        );
    }

    #[test]
    fn histogram_percentile_total_and_bounded(
        samples in prop::collection::vec(-50.0f64..150.0, 0..100),
        p in -20.0f64..120.0,
    ) {
        // Samples beyond the range exercise the edge-bin clamp; p beyond
        // [0, 100] exercises the percentile clamp.
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        for &x in &samples {
            h.record(x);
        }
        match h.percentile(p) {
            None => prop_assert!(samples.is_empty()),
            Some(v) => prop_assert!((0.0..=100.0).contains(&v), "estimate {v} left the range"),
        }
    }

    #[test]
    fn identical_samples_pin_every_percentile(
        x in -100.0f64..100.0,
        n in 1usize..500,
        p in 0.0f64..100.0,
    ) {
        let flat = vec![x; n];
        prop_assert_eq!(percentile_sorted(&flat, p), Some(x));
        let mut s = StreamingStat::with_histogram(Histogram::new(-100.0, 100.0, 40).unwrap());
        for &v in &flat {
            s.push(v);
        }
        let est = s.percentile(p).unwrap();
        prop_assert!((est - x).abs() <= 200.0 / 40.0, "estimate {est} vs {x}");
    }
}

#[test]
fn streaming_stat_without_histogram_has_no_percentile() {
    let mut s = StreamingStat::new();
    s.push(1.0);
    assert_eq!(s.percentile(50.0), None);
    let empty = StreamingStat::with_histogram(Histogram::new(0.0, 1.0, 2).unwrap());
    assert_eq!(empty.percentile(99.9), None);
}

// --- State-codec round trips (the checkpoint honesty contract) -------
//
// The campaign-as-a-service daemon persists folded accumulators and
// resumes them in another process; a resumed accumulator must be
// *bit-identical* to the original — not merely close — or resumed
// artifacts drift from uninterrupted ones. JSON text round-trips through
// the real parser, exactly as a checkpoint file does.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn summary_state_round_trips_bit_identically(
        samples in prop::collection::vec(-1e9f64..1e9, 0..200),
    ) {
        let s: wsn_stats::Summary = samples.iter().copied().collect();
        let text = s.to_state_json().to_string();
        let parsed = wsn_stats::JsonValue::parse(&text).unwrap();
        let restored = wsn_stats::Summary::from_state_json(&parsed).unwrap();
        // PartialEq on Summary is field-for-field over the raw Welford
        // registers, so equality here *is* bit-identity (mod -0.0 == 0.0,
        // which folds identically forever after).
        prop_assert_eq!(restored, s);
    }

    #[test]
    fn streaming_stat_state_round_trips_and_keeps_folding(
        samples in prop::collection::vec(0.0f64..1000.0, 1..150),
        tail in prop::collection::vec(0.0f64..1000.0, 1..50),
        bins in 1usize..32,
    ) {
        let mut orig = StreamingStat::with_histogram(
            Histogram::new(0.0, 1000.0, bins).unwrap(),
        );
        for &x in &samples {
            orig.push(x);
        }
        let text = orig.to_state_json().to_string();
        let parsed = wsn_stats::JsonValue::parse(&text).unwrap();
        let mut restored = StreamingStat::from_state_json(&parsed).unwrap();
        prop_assert_eq!(&restored, &orig);
        // The restored accumulator continues the fold identically.
        for &x in &tail {
            orig.push(x);
            restored.push(x);
        }
        prop_assert_eq!(
            restored.to_state_json().to_string(),
            orig.to_state_json().to_string()
        );
    }
}

#[test]
fn state_codecs_reject_malformed_input() {
    use wsn_stats::{JsonValue, Summary};
    for bad in [
        "{}",
        r#"{"count":-1,"mean":0,"m2":0,"min":0,"max":0}"#,
        r#"{"count":1.5,"mean":0,"m2":0,"min":0,"max":0}"#,
        r#"{"count":1,"mean":null,"m2":0,"min":0,"max":0}"#,
    ] {
        let v = JsonValue::parse(bad).unwrap();
        assert!(Summary::from_state_json(&v).is_err(), "{bad}");
    }
    // Empty summaries restore their infinite extrema from count alone.
    let empty = Summary::new();
    let v = JsonValue::parse(&empty.to_state_json().to_string()).unwrap();
    assert_eq!(Summary::from_state_json(&v).unwrap(), empty);
    // Histograms with a broken range are rejected, not mis-restored.
    let v = JsonValue::parse(r#"{"min":5,"max":5,"counts":[0]}"#).unwrap();
    assert!(Histogram::from_state_json(&v).is_err());
    // A bare stat round-trips without a histogram block.
    let mut s = StreamingStat::new();
    s.push(7.0);
    let text = s.to_state_json().to_string();
    assert!(!text.contains("histogram"));
    let v = JsonValue::parse(&text).unwrap();
    assert_eq!(StreamingStat::from_state_json(&v).unwrap(), s);
}
