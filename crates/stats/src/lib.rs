//! Statistics and reporting utilities for the experiment harness.
//!
//! The paper's figures are 2-D series plots (cost vs. number of spare
//! nodes `N`). Rust has no canonical plotting stack suitable for a
//! dependency-light reproduction, so this crate renders figures three
//! ways, all deterministic:
//!
//! * [`plot::AsciiPlot`] — terminal line/scatter plots (what
//!   `wsn-bench`'s `figures` binary prints),
//! * [`csv`] — CSV files for any external plotting tool,
//! * [`table::TextTable`] — aligned tables for EXPERIMENTS.md.
//!
//! Plus the numeric machinery: [`Summary`] (Welford online moments),
//! [`ci`] (normal-approximation confidence intervals), [`Series`]
//! (labelled x/y data with per-x aggregation over Monte-Carlo trials),
//! and [`stream::StreamingStat`] (Welford + online histogram, the
//! per-cell accumulator behind `wsn-bench`'s campaign engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod csv;
pub mod histogram;
pub mod json;
pub mod plot;
mod series;
pub mod stream;
mod summary;
pub mod table;

pub use ci::ConfidenceInterval;
pub use histogram::Histogram;
pub use json::{JsonParseError, JsonValue};
pub use series::Series;
pub use stream::StreamingStat;
pub use summary::{percentile_sorted, Summary};
