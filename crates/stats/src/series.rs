//! Labelled x/y series with Monte-Carlo aggregation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::Summary;

/// A labelled series of `(x, y)` points — one curve of a paper figure.
///
/// ```
/// use wsn_stats::Series;
///
/// let mut s = Series::new("SR");
/// s.push(10.0, 3.0);
/// s.push(10.0, 5.0); // second trial at the same x
/// s.push(20.0, 2.0);
/// let mean = s.aggregate_mean();
/// assert_eq!(mean.points(), &[(10.0, 4.0), (20.0, 2.0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with a legend label.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// A series from existing points.
    pub fn from_points(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Legend label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The points, in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point (non-finite points are dropped — they would break
    /// plotting and aggregation).
    pub fn push(&mut self, x: f64, y: f64) {
        if x.is_finite() && y.is_finite() {
            self.points.push((x, y));
        }
    }

    /// Groups points by `x` and replaces each group with its mean `y`,
    /// returning a new series sorted by `x`. This is how raw Monte-Carlo
    /// trials become a paper-figure curve.
    pub fn aggregate_mean(&self) -> Series {
        let mut groups: BTreeMap<u64, Summary> = BTreeMap::new();
        for &(x, y) in &self.points {
            groups.entry(x.to_bits()).or_default().push(y);
        }
        let mut pts: Vec<(f64, f64)> = groups
            .into_iter()
            .map(|(bits, s)| (f64::from_bits(bits), s.mean()))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite xs"));
        Series {
            label: self.label.clone(),
            points: pts,
        }
    }

    /// Per-x summaries (for confidence intervals), sorted by `x`.
    pub fn aggregate_summaries(&self) -> Vec<(f64, Summary)> {
        let mut groups: BTreeMap<u64, Summary> = BTreeMap::new();
        for &(x, y) in &self.points {
            groups.entry(x.to_bits()).or_default().push(y);
        }
        let mut out: Vec<(f64, Summary)> = groups
            .into_iter()
            .map(|(bits, s)| (f64::from_bits(bits), s))
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite xs"));
        out
    }

    /// Finds the first x where `self` drops to or below `other`
    /// (piecewise-linear interpolation between shared sample points) —
    /// the *crossover* of two cost curves, e.g. the paper's "N ≈ 55"
    /// point where SR's movement cost falls below AR's.
    ///
    /// Both series are aggregated by mean per x first; only x values
    /// present in both participate. Returns `None` when `self` never
    /// crosses below `other` in the shared range, and the first shared x
    /// when `self` already starts at or below `other`.
    pub fn crossover_below(&self, other: &Series) -> Option<f64> {
        let a = self.aggregate_mean();
        let b = other.aggregate_mean();
        let shared: Vec<(f64, f64, f64)> = a
            .points()
            .iter()
            .filter_map(|&(x, ya)| {
                b.points()
                    .iter()
                    .find(|&&(xb, _)| xb == x)
                    .map(|&(_, yb)| (x, ya, yb))
            })
            .collect();
        let mut prev: Option<(f64, f64)> = None; // (x, diff)
        for &(x, ya, yb) in &shared {
            let diff = ya - yb;
            if diff <= 0.0 {
                return Some(match prev {
                    // Interpolate between the sign change's endpoints.
                    Some((px, pdiff)) if pdiff > 0.0 => px + (x - px) * pdiff / (pdiff - diff),
                    _ => x,
                });
            }
            prev = Some((x, diff));
        }
        None
    }

    /// Bounds `(x_min, x_max, y_min, y_max)`, or `None` when empty.
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let mut b = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y) in &self.points {
            b.0 = b.0.min(x);
            b.1 = b.1.max(x);
            b.2 = b.2.min(y);
            b.3 = b.3.max(y);
        }
        Some(b)
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "series '{}' ({} points)", self.label, self.points.len())
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (x, y) in iter {
            self.push(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drops_non_finite() {
        let mut s = Series::new("t");
        s.push(1.0, 2.0);
        s.push(f64::NAN, 1.0);
        s.push(1.0, f64::INFINITY);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn aggregate_mean_groups_and_sorts() {
        let mut s = Series::new("t");
        s.extend([
            (20.0, 4.0),
            (10.0, 1.0),
            (10.0, 3.0),
            (20.0, 6.0),
            (5.0, 9.0),
        ]);
        let m = s.aggregate_mean();
        assert_eq!(m.points(), &[(5.0, 9.0), (10.0, 2.0), (20.0, 5.0)]);
        assert_eq!(m.label(), "t");
    }

    #[test]
    fn aggregate_summaries_counts() {
        let mut s = Series::new("t");
        s.extend([(1.0, 2.0), (1.0, 4.0), (2.0, 10.0)]);
        let sums = s.aggregate_summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].1.count(), 2);
        assert_eq!(sums[0].1.mean(), 3.0);
        assert_eq!(sums[1].1.count(), 1);
    }

    #[test]
    fn crossover_detection() {
        // a starts above b, crosses at x = 2.5 exactly.
        let a = Series::from_points("a", vec![(1.0, 10.0), (2.0, 6.0), (3.0, 2.0)]);
        let b = Series::from_points("b", vec![(1.0, 4.0), (2.0, 4.0), (3.0, 4.0)]);
        let x = a.crossover_below(&b).unwrap();
        assert!((x - 2.5).abs() < 1e-9, "got {x}");
        // Already below at the first shared x.
        assert_eq!(b.crossover_below(&a), Some(1.0));
        // Never crosses.
        let c = Series::from_points("c", vec![(1.0, 100.0), (3.0, 50.0)]);
        assert_eq!(c.crossover_below(&b), None);
        // No shared x values.
        let d = Series::from_points("d", vec![(9.0, 0.0)]);
        assert_eq!(d.crossover_below(&b), None);
    }

    #[test]
    fn bounds() {
        assert_eq!(Series::new("e").bounds(), None);
        let s = Series::from_points("b", vec![(1.0, -2.0), (3.0, 7.0)]);
        assert_eq!(s.bounds(), Some((1.0, 3.0, -2.0, 7.0)));
        assert!(!s.is_empty());
        assert!(!s.to_string().is_empty());
    }
}
