//! Minimal CSV export (hand-rolled — the data is all numeric labels and
//! floats, so a dependency would buy nothing).

use std::io::{self, Write};
use std::path::Path;

use crate::Series;

/// Escapes one CSV field per RFC 4180: quote when the field contains a
/// comma, quote or newline, doubling interior quotes.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Writes rows of string fields as CSV lines to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_rows<W: Write>(mut w: W, rows: &[Vec<String>]) -> io::Result<()> {
    for row in rows {
        let line = row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(",");
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Serializes a set of series to "long" CSV: `series,x,y` per row, with a
/// header.
pub fn series_to_csv(series: &[Series]) -> String {
    let mut rows: Vec<Vec<String>> = vec![vec!["series".into(), "x".into(), "y".into()]];
    for s in series {
        for &(x, y) in s.points() {
            rows.push(vec![s.label().to_owned(), x.to_string(), y.to_string()]);
        }
    }
    let mut buf = Vec::new();
    write_rows(&mut buf, &rows).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("escape emits UTF-8")
}

/// Writes the series CSV to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_series(path: &Path, series: &[Series]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, series_to_csv(series))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn series_csv_long_format() {
        let s1 = Series::from_points("SR", vec![(1.0, 2.0)]);
        let s2 = Series::from_points("AR", vec![(1.0, 4.0), (2.0, 5.0)]);
        let csv = series_to_csv(&[s1, s2]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines[1], "SR,1,2");
        assert_eq!(lines[3], "AR,2,5");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join("wsn_stats_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        save_series(&path, &[Series::from_points("a", vec![(0.0, 1.0)])]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("a,0,1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_rows_to_vec() {
        let mut buf = Vec::new();
        write_rows(&mut buf, &[vec!["x".into(), "y,z".into()]]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "x,\"y,z\"\n");
    }
}
