//! Online descriptive statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::JsonValue;

/// Reads one finite number out of a state-codec object field.
pub(crate) fn state_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    let n = v
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("state field '{key}' missing or not a number"))?;
    if !n.is_finite() {
        return Err(format!("state field '{key}' is not finite"));
    }
    Ok(n)
}

/// Converts one JSON number into a non-negative integer (exactly
/// representable in `f64`).
pub(crate) fn u64_value(v: &JsonValue) -> Result<u64, String> {
    let n = v.as_f64().ok_or("expected a number")?;
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
        return Err(format!("{n} is not an exactly-representable u64"));
    }
    Ok(n as u64)
}

/// Reads one non-negative integer (exactly representable in `f64`) out
/// of a state-codec object field.
pub(crate) fn state_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    let field = v
        .get(key)
        .ok_or_else(|| format!("state field '{key}' missing"))?;
    u64_value(field).map_err(|e| format!("state field '{key}': {e}"))
}

/// Streaming summary statistics over `f64` observations.
///
/// Uses Welford's numerically stable online algorithm, so millions of
/// Monte-Carlo observations can be folded without keeping them.
///
/// ```
/// use wsn_stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in. Non-finite observations are ignored
    /// (they would poison every downstream moment).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`m2/n`; 0 when fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`m2/(n−1)`; 0 when fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the accumulator *state* (not a report): every Welford
    /// register, rendered in shortest-round-trip decimal so
    /// [`Summary::from_state_json`] restores the bit-identical
    /// accumulator. This is the unit the campaign checkpoint codec is
    /// built from — a restored summary must keep folding exactly as the
    /// original would have.
    pub fn to_state_json(&self) -> JsonValue {
        // min/max are ±inf while empty; JSON has no infinities, so the
        // empty extrema are encoded as null and restored from `count`.
        let finite = |x: f64| {
            if x.is_finite() {
                JsonValue::from(x)
            } else {
                JsonValue::Null
            }
        };
        JsonValue::obj([
            ("count", JsonValue::from(self.count)),
            ("mean", JsonValue::from(self.mean)),
            ("m2", JsonValue::from(self.m2)),
            ("min", finite(self.min)),
            ("max", finite(self.max)),
        ])
    }

    /// Restores a [`Summary::to_state_json`] state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_state_json(v: &JsonValue) -> Result<Summary, String> {
        let count = state_u64(v, "count")?;
        if count == 0 {
            return Ok(Summary::new());
        }
        Ok(Summary {
            count,
            mean: state_f64(v, "mean")?,
            m2: state_f64(v, "m2")?,
            min: state_f64(v, "min")?,
            max: state_f64(v, "max")?,
        })
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

/// Percentile of pre-sorted data by linear interpolation, `p ∈ [0, 100]`.
///
/// Total over its inputs: an empty slice yields `None` (there is no
/// observation to report — previously this panicked, which made p999
/// reporting on sparse workloads a landmine), a single-sample slice
/// yields that sample for every `p`, and all-identical data yields the
/// common value. `p` outside `[0, 100]` is clamped.
pub fn percentile_sorted(data: &[f64], p: f64) -> Option<f64> {
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]), "data must be sorted");
    let (first, rest) = data.split_first()?;
    if rest.is_empty() {
        return Some(*first);
    }
    let rank = p.clamp(0.0, 100.0) / 100.0 * (data.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(data[lo] + (data[hi] - data[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_conventions() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn non_finite_ignored() {
        let mut s = Summary::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let seq: Summary = all.iter().copied().collect();
        let mut a: Summary = all[..33].iter().copied().collect();
        let b: Summary = all[33..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-8);
        // Merge with empty is identity both ways.
        let mut c = seq;
        c.merge(&Summary::new());
        assert_eq!(c, seq);
        let mut d = Summary::new();
        d.merge(&seq);
        assert_eq!(d.count(), seq.count());
    }

    #[test]
    fn percentiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&data, 0.0), Some(1.0));
        assert_eq!(percentile_sorted(&data, 100.0), Some(5.0));
        assert_eq!(percentile_sorted(&data, 50.0), Some(3.0));
        assert_eq!(percentile_sorted(&data, 25.0), Some(2.0));
        assert_eq!(percentile_sorted(&[7.5], 40.0), Some(7.5));
    }

    #[test]
    fn percentile_edge_inputs_are_well_defined() {
        // Empty: no observation, no panic.
        assert_eq!(percentile_sorted(&[], 50.0), None);
        assert_eq!(percentile_sorted(&[], 99.9), None);
        // Single sample: that sample at every p, including the extremes.
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(percentile_sorted(&[3.25], p), Some(3.25));
        }
        // All-identical: the common value at every p.
        let flat = [2.0; 17];
        for p in [0.0, 12.5, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(percentile_sorted(&flat, p), Some(2.0));
        }
        // Out-of-range p clamps instead of panicking.
        let data = [1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&data, -5.0), Some(1.0));
        assert_eq!(percentile_sorted(&data, 140.0), Some(3.0));
    }

    #[test]
    fn extend_and_display() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert!(s.to_string().contains("n=3"));
    }
}
