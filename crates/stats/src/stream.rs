//! Streaming per-metric aggregation for campaign-scale Monte-Carlo runs.
//!
//! A campaign executes thousands of trials but must keep memory
//! proportional to the experiment *matrix* (scheme × grid × spare
//! target), not to the trial count. [`StreamingStat`] is the per-cell,
//! per-metric accumulator that makes this possible: a Welford
//! [`Summary`] for the moments (mean, variance, confidence interval) and
//! an optional online [`Histogram`] for the shape, folded one
//! observation at a time. [`StreamingStat::merge`] is the
//! parallel-reduction counterpart of [`Summary::merge`] for consumers
//! that shard their observations; note the campaign engine itself does
//! *not* merge — it folds each cell strictly in trial order, because
//! Welford merges at worker-dependent split points would cost the
//! bit-identical-across-worker-counts guarantee.
//!
//! # Example
//!
//! One accumulator per observable: fold trial outcomes in as they
//! complete, read moments, intervals, and (when attached) the
//! histogram at the end — memory stays O(1) per observable however
//! many trials stream through:
//!
//! ```
//! use wsn_stats::{Histogram, StreamingStat};
//!
//! // Track "moves per trial" with a 4-bin histogram over [0, 40).
//! let mut moves = StreamingStat::with_histogram(
//!     Histogram::new(0.0, 40.0, 4).unwrap(),
//! );
//! for outcome in [12.0, 17.0, 9.0, 31.0, 14.0] {
//!     moves.push(outcome);
//! }
//! assert_eq!(moves.summary().count(), 5);
//! assert!((moves.summary().mean() - 16.6).abs() < 1e-12);
//! // 95% interval for the mean, ready for figure whiskers.
//! let ci = moves.ci(0.95);
//! assert!(ci.low() < 16.6 && 16.6 < ci.high());
//! // The histogram binned every observation.
//! assert_eq!(moves.histogram().unwrap().total(), 5);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{ConfidenceInterval, Histogram, JsonValue, Summary};

/// A streaming accumulator over one observable: Welford moments plus an
/// optional fixed-range histogram.
///
/// ```
/// use wsn_stats::stream::StreamingStat;
///
/// let mut s = StreamingStat::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.summary().mean(), 5.0);
/// let ci = s.ci(0.95);
/// assert!(ci.contains(5.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingStat {
    summary: Summary,
    histogram: Option<Histogram>,
}

impl StreamingStat {
    /// An empty accumulator with no histogram.
    pub fn new() -> StreamingStat {
        StreamingStat {
            summary: Summary::new(),
            histogram: None,
        }
    }

    /// An empty accumulator that also bins observations into `histogram`.
    pub fn with_histogram(histogram: Histogram) -> StreamingStat {
        StreamingStat {
            summary: Summary::new(),
            histogram: Some(histogram),
        }
    }

    /// Folds one observation in (non-finite values are ignored, matching
    /// [`Summary::push`] / [`Histogram::record`]).
    pub fn push(&mut self, x: f64) {
        self.summary.push(x);
        if let Some(h) = &mut self.histogram {
            h.record(x);
        }
    }

    /// Merges another accumulator (parallel Welford merge + histogram
    /// count addition).
    ///
    /// # Panics
    ///
    /// Panics when exactly one side carries a histogram, or the two
    /// histograms are binned differently.
    pub fn merge(&mut self, other: &StreamingStat) {
        self.summary.merge(&other.summary);
        match (&mut self.histogram, &other.histogram) {
            (None, None) => {}
            (Some(a), Some(b)) => a.merge(b),
            _ => panic!("cannot merge a histogram-carrying stat with a bare one"),
        }
    }

    /// The Welford moments accumulated so far.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The histogram, when one was attached.
    pub fn histogram(&self) -> Option<&Histogram> {
        self.histogram.as_ref()
    }

    /// Normal-approximation confidence interval for the mean at `level`
    /// (0.90 / 0.95 / 0.99, per [`ConfidenceInterval::normal`]).
    pub fn ci(&self, level: f64) -> ConfidenceInterval {
        ConfidenceInterval::normal(&self.summary, level)
    }

    /// Percentile estimate from the attached histogram, `p ∈ [0, 100]`
    /// (clamped). `None` when no histogram was attached or nothing has
    /// been recorded — see [`Histogram::percentile`] for resolution and
    /// edge-case semantics. This is the p50/p99/p999 surface the
    /// steady-state hole-lifetime reporting reads.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.histogram.as_ref()?.percentile(p)
    }

    /// Serializes the accumulator for campaign artifacts: count, moments,
    /// extrema, the interval at `ci_level`, and the histogram counts when
    /// present. Field order is fixed, so identical aggregates render
    /// byte-identical JSON.
    pub fn to_json(&self, ci_level: f64) -> JsonValue {
        let ci = self.ci(ci_level);
        let mut fields = vec![
            ("count", JsonValue::from(self.summary.count())),
            ("mean", JsonValue::from(self.summary.mean())),
            ("std_dev", JsonValue::from(self.summary.std_dev())),
            ("std_error", JsonValue::from(self.summary.std_error())),
            (
                "min",
                self.summary.min().map_or(JsonValue::Null, JsonValue::from),
            ),
            (
                "max",
                self.summary.max().map_or(JsonValue::Null, JsonValue::from),
            ),
            (
                "ci",
                JsonValue::obj([
                    ("level", JsonValue::from(ci.level)),
                    ("half_width", JsonValue::from(ci.half_width)),
                    ("low", JsonValue::from(ci.low())),
                    ("high", JsonValue::from(ci.high())),
                ]),
            ),
        ];
        if let Some(h) = &self.histogram {
            let counts: Vec<JsonValue> = h.counts().iter().map(|&c| JsonValue::from(c)).collect();
            fields.push((
                "histogram",
                JsonValue::obj([
                    (
                        "bin_centers",
                        JsonValue::Arr(
                            (0..h.counts().len())
                                .map(|i| JsonValue::from(h.bin_center(i)))
                                .collect(),
                        ),
                    ),
                    ("counts", JsonValue::Arr(counts)),
                ]),
            ));
        }
        JsonValue::obj(fields)
    }

    /// Serializes the accumulator *state* — the Welford registers plus
    /// (when attached) the histogram's range and counts — so
    /// [`StreamingStat::from_state_json`] restores an accumulator that
    /// keeps folding exactly as this one would. [`StreamingStat::to_json`]
    /// is the human/figure-facing report; this is the checkpoint codec
    /// the campaign-as-a-service daemon persists between runs.
    pub fn to_state_json(&self) -> JsonValue {
        let mut fields = vec![("summary", self.summary.to_state_json())];
        if let Some(h) = &self.histogram {
            fields.push(("histogram", h.to_state_json()));
        }
        JsonValue::obj(fields)
    }

    /// Restores a [`StreamingStat::to_state_json`] state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_state_json(v: &JsonValue) -> Result<StreamingStat, String> {
        let summary =
            Summary::from_state_json(v.get("summary").ok_or("state field 'summary' missing")?)?;
        let histogram = match v.get("histogram") {
            Some(h) => Some(Histogram::from_state_json(h)?),
            None => None,
        };
        Ok(StreamingStat { summary, histogram })
    }
}

impl Default for StreamingStat {
    fn default() -> StreamingStat {
        StreamingStat::new()
    }
}

impl fmt::Display for StreamingStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_feeds_both_summary_and_histogram() {
        let mut s = StreamingStat::with_histogram(Histogram::new(0.0, 10.0, 5).unwrap());
        for x in [1.0, 3.0, 9.0, f64::NAN] {
            s.push(x);
        }
        assert_eq!(s.summary().count(), 3);
        assert_eq!(s.histogram().unwrap().total(), 3);
        assert_eq!(s.histogram().unwrap().counts(), &[1, 1, 0, 0, 1]);
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let all: Vec<f64> = (0..200).map(|i| (i as f64) * 0.13).collect();
        let mut seq = StreamingStat::with_histogram(Histogram::new(0.0, 30.0, 6).unwrap());
        for &x in &all {
            seq.push(x);
        }
        let mut a = StreamingStat::with_histogram(Histogram::new(0.0, 30.0, 6).unwrap());
        let mut b = StreamingStat::with_histogram(Histogram::new(0.0, 30.0, 6).unwrap());
        for &x in &all[..70] {
            a.push(x);
        }
        for &x in &all[70..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.summary().count(), seq.summary().count());
        assert!((a.summary().mean() - seq.summary().mean()).abs() < 1e-10);
        assert_eq!(
            a.histogram().unwrap().counts(),
            seq.histogram().unwrap().counts()
        );
    }

    #[test]
    #[should_panic(expected = "histogram-carrying")]
    fn merge_rejects_histogram_mismatch() {
        let mut a = StreamingStat::new();
        let b = StreamingStat::with_histogram(Histogram::new(0.0, 1.0, 2).unwrap());
        a.merge(&b);
    }

    #[test]
    fn json_shape_and_determinism() {
        let mut s = StreamingStat::with_histogram(Histogram::new(0.0, 4.0, 2).unwrap());
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        let a = s.to_json(0.95).to_string();
        let b = s.to_json(0.95).to_string();
        assert_eq!(a, b);
        assert!(a.contains("\"count\":3"));
        assert!(a.contains("\"mean\":2"));
        assert!(a.contains("\"ci\":{\"level\":0.95"));
        assert!(a.contains("\"histogram\""));
        assert!(a.contains("\"counts\":[1,2]"));
        // Empty accumulators render null extrema, not NaN.
        let empty = StreamingStat::new().to_json(0.95).to_string();
        assert!(empty.contains("\"min\":null"));
        assert!(!empty.contains("NaN"));
    }

    #[test]
    fn display_delegates_to_summary() {
        let mut s = StreamingStat::new();
        s.push(1.0);
        assert!(s.to_string().contains("n=1"));
    }
}
