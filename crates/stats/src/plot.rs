//! Terminal rendering of figure data: multi-series ASCII plots.
//!
//! The reproduction's stand-in for gnuplot: deterministic, zero-dependency
//! character plots good enough to read a curve's shape, crossover points
//! and relative ordering — which is exactly what reproducing the paper's
//! figures requires (shapes, not pixels).

use crate::Series;

/// A multi-series ASCII plot renderer.
///
/// ```
/// use wsn_stats::{plot::AsciiPlot, Series};
///
/// let s = Series::from_points("demo", (0..20).map(|i| (i as f64, (i * i) as f64)).collect());
/// let text = AsciiPlot::new("quadratic", "x", "y").render(&[s]);
/// assert!(text.contains("quadratic"));
/// assert!(text.contains("demo"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

impl AsciiPlot {
    /// A plot with the default 72×20 canvas.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> AsciiPlot {
        AsciiPlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 72,
            height: 20,
        }
    }

    /// Overrides the canvas size (minimums 16×8 are enforced).
    #[must_use]
    pub fn with_size(mut self, width: usize, height: usize) -> AsciiPlot {
        self.width = width.max(16);
        self.height = height.max(8);
        self
    }

    /// Renders the series onto a character canvas with axes and legend.
    /// Empty input (or all-empty series) yields a "(no data)" placeholder
    /// rather than panicking.
    pub fn render(&self, series: &[Series]) -> String {
        let mut bounds: Option<(f64, f64, f64, f64)> = None;
        for s in series {
            if let Some((x0, x1, y0, y1)) = s.bounds() {
                bounds = Some(match bounds {
                    None => (x0, x1, y0, y1),
                    Some((a, b, c, d)) => (a.min(x0), b.max(x1), c.min(y0), d.max(y1)),
                });
            }
        }
        let Some((x0, x1, y0, y1)) = bounds else {
            return format!("{}\n(no data)\n", self.title);
        };
        // Pad degenerate ranges so a flat series still renders.
        let (x0, x1) = pad_range(x0, x1);
        // Anchor y at zero when everything is positive: the paper's plots
        // all start at 0 and shapes read better.
        let y0 = if y0 > 0.0 { 0.0 } else { y0 };
        let (y0, y1) = pad_range(y0, y1);

        let w = self.width;
        let h = self.height;
        let mut canvas = vec![vec![' '; w]; h];
        for (si, s) in series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in s.points() {
                let cx = ((x - x0) / (x1 - x0) * (w - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (h - 1) as f64).round() as usize;
                let row = h - 1 - cy.min(h - 1);
                let col = cx.min(w - 1);
                canvas[row][col] = glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{} ^\n", self.y_label));
        for (i, row) in canvas.iter().enumerate() {
            let yval = y1 - (y1 - y0) * i as f64 / (h - 1) as f64;
            let label = if i % 4 == 0 {
                format!("{yval:>10.1}")
            } else {
                " ".repeat(10)
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!("{} +{}\n", " ".repeat(10), "-".repeat(w)));
        out.push_str(&format!(
            "{}{:<12.1}{:>width$.1}  ({})\n",
            " ".repeat(12),
            x0,
            x1,
            self.x_label,
            width = w.saturating_sub(12)
        ));
        out.push_str("legend: ");
        for (si, s) in series.iter().enumerate() {
            out.push_str(&format!("{}={}  ", GLYPHS[si % GLYPHS.len()], s.label()));
        }
        out.push('\n');
        out
    }
}

fn pad_range(lo: f64, hi: f64) -> (f64, f64) {
    if (hi - lo).abs() < f64::EPSILON {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, slope: f64) -> Series {
        Series::from_points(
            label,
            (0..50).map(|i| (i as f64, slope * i as f64)).collect(),
        )
    }

    #[test]
    fn renders_title_axes_legend() {
        let text = AsciiPlot::new("My Figure", "N", "moves").render(&[line("SR", 1.0)]);
        assert!(text.contains("My Figure"));
        assert!(text.contains("(N)"));
        assert!(text.contains("moves ^"));
        assert!(text.contains("*=SR"));
    }

    #[test]
    fn multiple_series_distinct_glyphs() {
        let text =
            AsciiPlot::new("f", "x", "y").render(&[line("a", 1.0), line("b", 2.0), line("c", 0.5)]);
        assert!(text.contains("*=a"));
        assert!(text.contains("+=b"));
        assert!(text.contains("o=c"));
        assert!(text.contains('*'));
        assert!(text.contains('+'));
    }

    #[test]
    fn empty_input_is_graceful() {
        let text = AsciiPlot::new("empty", "x", "y").render(&[]);
        assert!(text.contains("(no data)"));
        let text2 = AsciiPlot::new("empty2", "x", "y").render(&[Series::new("nothing")]);
        assert!(text2.contains("(no data)"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let s = Series::from_points("flat", vec![(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]);
        let text = AsciiPlot::new("flat", "x", "y").render(&[s]);
        assert!(text.contains('*'));
    }

    #[test]
    fn single_point_renders() {
        let s = Series::from_points("dot", vec![(1.0, 1.0)]);
        let text = AsciiPlot::new("dot", "x", "y").render(&[s]);
        assert!(text.contains('*'));
    }

    #[test]
    fn size_override_is_clamped() {
        let p = AsciiPlot::new("t", "x", "y").with_size(1, 1);
        let text = p.render(&[line("a", 1.0)]);
        assert!(text.lines().count() >= 8);
    }

    #[test]
    fn monotone_series_plots_monotone() {
        // The rendered column of the max-x point must sit above (smaller
        // row index) the min-x point for an increasing series.
        let text = AsciiPlot::new("m", "x", "y").render(&[line("inc", 2.0)]);
        let rows: Vec<&str> = text.lines().collect();
        let first_star_row = rows.iter().position(|r| r.contains('*')).unwrap();
        let last_star_row = rows.iter().rposition(|r| r.contains('*')).unwrap();
        let top_row_col = rows[first_star_row].find('*').unwrap();
        let bottom_row_col = rows[last_star_row].find('*').unwrap();
        assert!(
            top_row_col > bottom_row_col,
            "higher values must appear farther right for an increasing line"
        );
    }
}
