//! Fixed-range histograms (for hop-count distributions vs Theorem 2's
//! `P(i)`).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::summary::{state_f64, u64_value};
use crate::JsonValue;

/// A histogram over `[min, max)` with equal-width bins; values outside
/// the range are clamped into the edge bins so no observation is lost.
///
/// ```
/// use wsn_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [0.5, 1.5, 2.5, 2.6, 9.9] {
///     h.record(x); // bins are [0,2), [2,4), [4,6), [6,8), [8,10)
/// }
/// assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram; `None` when the range is empty/non-finite or
    /// `bins == 0`.
    pub fn new(min: f64, max: f64, bins: usize) -> Option<Histogram> {
        if !(min.is_finite() && max.is_finite()) || max <= min || bins == 0 {
            return None;
        }
        Some(Histogram {
            min,
            max,
            counts: vec![0; bins],
        })
    }

    /// Records one observation (non-finite values are ignored).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.min) / (self.max - self.min);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bin relative frequencies (empty histogram yields zeros).
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Merges another histogram's counts into this one (the parallel
    /// counterpart of [`Histogram::record`], like
    /// [`crate::Summary::merge`]).
    ///
    /// # Panics
    ///
    /// Panics when the two histograms have different ranges or bin
    /// counts — merging them would silently misbin.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.min == other.min
                && self.max == other.max
                && self.counts.len() == other.counts.len(),
            "cannot merge histograms with different binning: [{}, {})x{} vs [{}, {})x{}",
            self.min,
            self.max,
            self.counts.len(),
            other.min,
            other.max,
            other.counts.len()
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
    }

    /// Percentile estimate from the binned counts, `p ∈ [0, 100]`
    /// (clamped). `None` when no observation has been recorded.
    ///
    /// The estimate interpolates linearly *within* the bin containing
    /// the target rank, so its resolution is one bin width — good enough
    /// for SLA-style p50/p99/p999 reporting when the range is chosen to
    /// cover the observable, and exact for [`Histogram::merge`]d shards
    /// because it depends only on counts. Degenerate inputs are
    /// well-defined: a single sample reports from its bin at every `p`,
    /// and all-identical samples always report from the one occupied bin
    /// (never an empty neighbor). Clamped out-of-range recordings
    /// ([`Histogram::record`] puts them in the edge bins) are read back
    /// as edge-bin values: the estimate never leaves `[min, max)`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        // Target rank in [0, total], the count-domain analog of
        // percentile_sorted's index rank.
        let target = p.clamp(0.0, 100.0) / 100.0 * total as f64;
        let width = (self.max - self.min) / self.counts.len() as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = acc + c;
            if next as f64 >= target {
                let lo = self.min + i as f64 * width;
                let frac = ((target - acc as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + frac * width);
            }
            acc = next;
        }
        // p = 100 with floating-point slack: the top of the last
        // occupied bin.
        let last = self.counts.iter().rposition(|&c| c > 0)?;
        Some(self.min + (last as f64 + 1.0) * width)
    }

    /// Serializes the full histogram *state* — range and every bin
    /// count — so [`Histogram::from_state_json`] restores an identical
    /// accumulator (the checkpoint counterpart of
    /// [`crate::Summary::to_state_json`]).
    pub fn to_state_json(&self) -> JsonValue {
        JsonValue::obj([
            ("min", JsonValue::from(self.min)),
            ("max", JsonValue::from(self.max)),
            (
                "counts",
                JsonValue::Arr(self.counts.iter().map(|&c| JsonValue::from(c)).collect()),
            ),
        ])
    }

    /// Restores a [`Histogram::to_state_json`] state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field (including a
    /// range [`Histogram::new`] would reject).
    pub fn from_state_json(v: &JsonValue) -> Result<Histogram, String> {
        let min = state_f64(v, "min")?;
        let max = state_f64(v, "max")?;
        let counts = v
            .get("counts")
            .and_then(JsonValue::as_arr)
            .ok_or("state field 'counts' missing or not an array")?;
        let mut h = Histogram::new(min, max, counts.len())
            .ok_or_else(|| format!("invalid histogram range [{min}, {max}) x {}", counts.len()))?;
        for (i, c) in counts.iter().enumerate() {
            h.counts[i] = u64_value(c).map_err(|e| format!("counts[{i}]: {e}"))?;
        }
        Ok(h)
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.max - self.min) / self.counts.len() as f64;
        self.min + (i as f64 + 0.5) * w
    }

    /// Renders horizontal bars, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width.max(1)) / max_count as usize);
            out.push_str(&format!(
                "{:>10.2} | {:<w$} {}\n",
                self.bin_center(i),
                bar,
                c,
                w = width
            ));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram [{}, {}) with {} bins, {} observations",
            self.min,
            self.max,
            self.counts.len(),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 4).is_some());
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 10.0, 2).unwrap();
        h.record(-5.0);
        h.record(15.0);
        h.record(f64::NAN); // dropped
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        for i in 0..1000 {
            h.record((i % 100) as f64 / 100.0);
        }
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Empty histogram: zeros, not NaN.
        let empty = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(empty.frequencies(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_center_out_of_range_panics() {
        Histogram::new(0.0, 1.0, 2).unwrap().bin_center(2);
    }

    #[test]
    fn percentile_edge_inputs_are_well_defined() {
        // Empty: no observation, no estimate.
        let empty = Histogram::new(0.0, 10.0, 5).unwrap();
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(empty.percentile(p), None);
        }
        // Single sample: every p reads from its bin [4, 6).
        let mut one = Histogram::new(0.0, 10.0, 5).unwrap();
        one.record(4.7);
        for p in [0.0, 50.0, 99.9, 100.0] {
            let v = one.percentile(p).unwrap();
            assert!((4.0..=6.0).contains(&v), "p={p} -> {v}");
        }
        // All-identical: every p reads from the one occupied bin, never
        // an empty neighbor.
        let mut flat = Histogram::new(0.0, 10.0, 5).unwrap();
        for _ in 0..1000 {
            flat.record(2.5);
        }
        for p in [0.0, 12.5, 50.0, 99.0, 99.9, 100.0] {
            let v = flat.percentile(p).unwrap();
            assert!((2.0..=4.0).contains(&v), "p={p} -> {v}");
        }
        // Out-of-range p clamps; out-of-range samples clamp to edge bins.
        let mut edges = Histogram::new(0.0, 10.0, 5).unwrap();
        edges.record(-100.0);
        edges.record(100.0);
        assert_eq!(edges.percentile(-5.0), edges.percentile(0.0));
        assert_eq!(edges.percentile(140.0), edges.percentile(100.0));
        let lo = edges.percentile(0.0).unwrap();
        let hi = edges.percentile(100.0).unwrap();
        assert!((0.0..=2.0).contains(&lo));
        assert!((8.0..=10.0).contains(&hi));
    }

    #[test]
    fn percentile_is_monotone_and_merge_invariant() {
        let mut a = Histogram::new(0.0, 100.0, 50).unwrap();
        let mut b = Histogram::new(0.0, 100.0, 50).unwrap();
        let mut whole = Histogram::new(0.0, 100.0, 50).unwrap();
        for i in 0..500 {
            let x = (i as f64 * 37.0) % 100.0;
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = whole.percentile(p).unwrap();
            assert!(v >= prev, "percentile must be monotone in p");
            prev = v;
            // Percentiles depend only on counts, so merged shards agree
            // exactly with the sequential fold.
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        a.record(1.0);
        a.record(9.0);
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        b.record(1.5);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 0, 0, 1]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let b = Histogram::new(0.0, 10.0, 4).unwrap();
        a.merge(&b);
    }

    #[test]
    fn render_contains_bars_and_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.record(0.5);
        h.record(0.6);
        h.record(1.5);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
        assert!(!h.to_string().is_empty());
    }
}
