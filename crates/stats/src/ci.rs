//! Confidence intervals for Monte-Carlo means.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Summary;

/// A symmetric confidence interval about a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level in `(0, 1)` (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Normal-approximation interval for the mean of `summary` at the
    /// given level. Supported levels: 0.90, 0.95, 0.99 (the standard
    /// z-quantiles; Monte-Carlo trial counts here are large enough that
    /// the t-correction is negligible).
    ///
    /// # Panics
    ///
    /// Panics on unsupported levels.
    pub fn normal(summary: &Summary, level: f64) -> ConfidenceInterval {
        let z = match level {
            l if (l - 0.90).abs() < 1e-9 => 1.644_853_626_951,
            l if (l - 0.95).abs() < 1e-9 => 1.959_963_984_540,
            l if (l - 0.99).abs() < 1e-9 => 2.575_829_303_549,
            other => panic!("unsupported confidence level {other}; use 0.90/0.95/0.99"),
        };
        ConfidenceInterval {
            mean: summary.mean(),
            half_width: z * summary.std_error(),
            level,
        }
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.low()..=self.high()).contains(&x)
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({:.0}%)",
            self.mean,
            self.half_width,
            self.level * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of(n: usize) -> Summary {
        // Deterministic pseudo-data with known mean 0.5-ish.
        (0..n)
            .map(|i| ((i * 37 + 11) % 100) as f64 / 100.0)
            .collect()
    }

    #[test]
    fn interval_brackets_mean() {
        let s = summary_of(1000);
        let ci = ConfidenceInterval::normal(&s, 0.95);
        assert!(ci.contains(s.mean()));
        assert!(ci.low() < s.mean() && s.mean() < ci.high());
        assert!(ci.half_width > 0.0);
    }

    #[test]
    fn wider_level_wider_interval() {
        let s = summary_of(500);
        let c90 = ConfidenceInterval::normal(&s, 0.90);
        let c95 = ConfidenceInterval::normal(&s, 0.95);
        let c99 = ConfidenceInterval::normal(&s, 0.99);
        assert!(c90.half_width < c95.half_width);
        assert!(c95.half_width < c99.half_width);
    }

    #[test]
    fn more_samples_narrower_interval() {
        let a = ConfidenceInterval::normal(&summary_of(100), 0.95);
        let b = ConfidenceInterval::normal(&summary_of(10_000), 0.95);
        assert!(b.half_width < a.half_width);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence level")]
    fn unsupported_level_panics() {
        ConfidenceInterval::normal(&summary_of(10), 0.42);
    }

    #[test]
    fn display_mentions_level() {
        let ci = ConfidenceInterval::normal(&summary_of(10), 0.95);
        assert!(ci.to_string().contains("95%"));
    }
}
