//! Aligned plain-text tables (for EXPERIMENTS.md and terminal reports).

use std::fmt;

/// An aligned text table with a header row.
///
/// ```
/// use wsn_stats::table::TextTable;
///
/// let mut t = TextTable::new(vec!["N", "SR moves", "AR moves"]);
/// t.add_row(vec!["10".into(), "23.2".into(), "8.1".into()]);
/// t.add_row(vec!["1000".into(), "1.1".into(), "2.4".into()]);
/// let s = t.to_string();
/// assert!(s.contains("SR moves"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row's arity differs from the header's — a silent
    /// ragged table would misalign every column after it.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Convenience: formats an iterator of `f64` cells after a label.
    pub fn add_numeric_row(&mut self, label: impl Into<String>, values: &[f64], precision: usize) {
        let mut row = vec![label.into()];
        row.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.add_row(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a Markdown table (pipes and a separator row).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_to_widest() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.add_row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-' || c == ' '));
    }

    #[test]
    fn numeric_rows_format_precision() {
        let mut t = TextTable::new(vec!["label", "v1", "v2"]);
        t.add_numeric_row("row", &[1.23456, 2.0], 2);
        assert!(t.to_string().contains("1.23"));
        assert!(t.to_string().contains("2.00"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn markdown_shape() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.add_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }
}
