//! Minimal JSON emission and parsing (hand-rolled, like [`crate::csv`]
//! — the sweep results are flat numeric records, so a serializer
//! dependency would buy nothing, and the offline `serde` stand-in has
//! no `serde_json`).
//!
//! Construction is by value tree; [`JsonValue`]'s `Display` renders
//! RFC 8259-conformant text with escaped strings and finite numbers
//! (non-finite floats render as `null`, the interoperable convention).
//! [`JsonValue::parse`] is the inverse — a recursive-descent reader for
//! the artifacts this workspace itself writes (the perf ledger compares
//! fresh `BENCH_*.json` runs against checked-in baselines).

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders with a trailing newline — the shape result files want.
    pub fn to_file_string(&self) -> String {
        format!("{self}\n")
    }

    /// Parses RFC 8259 JSON text into a value tree.
    ///
    /// Supports everything this workspace's writers emit (and standard
    /// JSON generally): the five escape shorthands plus `\u` (including
    /// surrogate pairs), scientific-notation numbers, and nested
    /// containers up to [`JsonValue::MAX_PARSE_DEPTH`] levels — the
    /// explicit cap turns a `[[[[…` stack-overflow crash on adversarial
    /// input into an ordinary parse error. Numbers follow the strict RFC
    /// grammar: leading zeros (`01`), bare fractions (`.5`, `1.`), and
    /// empty exponents are rejected rather than passed to `f64::parse`'s
    /// looser rules. Object key order is preserved as read.
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] with the byte offset of the first violation —
    /// including trailing non-whitespace after the top-level value.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Maximum container nesting [`JsonValue::parse`] accepts. Every
    /// artifact this workspace writes nests a handful of levels; 128
    /// leaves two orders of magnitude of headroom while keeping the
    /// recursive-descent parser's stack usage bounded.
    pub const MAX_PARSE_DEPTH: usize = 128;

    /// Object field lookup (`None` for absent keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the first offending character.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, checked against
    /// [`JsonValue::MAX_PARSE_DEPTH`] on every `[` / `{`.
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", JsonValue::Null),
            Some(b't') => self.expect_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.expect_literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
        }
    }

    /// Bumps the container depth on `[` / `{`, erroring past the cap.
    /// The matching decrement happens in the container's success path,
    /// so sibling containers at the same level do not accumulate.
    fn enter(&mut self) -> Result<(), JsonParseError> {
        if self.depth >= JsonValue::MAX_PARSE_DEPTH {
            return Err(self.err("containers nested deeper than the 128-level cap"));
        }
        self.depth += 1;
        Ok(())
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.enter()?;
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                self.depth -= 1;
                return Ok(JsonValue::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.enter()?;
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                self.depth -= 1;
                return Ok(JsonValue::Obj(pairs));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            continue; // hex4 already advanced past the escape
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences arrive
                    // from a &str, so they are valid by construction).
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by match");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes a non-empty digit run; errors with `what` when the next
    /// byte is not a digit.
    fn digits(&mut self, what: &str) -> Result<(), JsonParseError> {
        if !matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            return Err(self.err(what));
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        // Strict RFC 8259 grammar, enforced *before* f64::parse — Rust's
        // float parser accepts "01", "1.", and ".5", all of which JSON
        // forbids, and a lenient reader here would let a corrupted
        // artifact slip through the perf-ledger gate.
        let start = self.pos;
        self.eat(b'-');
        match self.bytes.get(self.pos) {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => {
                self.digits("expected a digit")?;
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.eat(b'.') {
            self.digits("expected a digit after the decimal point")?;
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            self.digits("expected a digit in the exponent")?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonParseError {
                offset: start,
                message: format!("bad number {text:?}"),
            })
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> JsonValue {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> JsonValue {
        JsonValue::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest round-trip form; integers
                    // print without a fraction part, as JSON expects.
                    write!(f, "{n}")
                } else {
                    write!(f, "null")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsonValue::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(3u64).to_string(), "3");
        assert_eq!(JsonValue::from(2.5).to_string(), "2.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_control_and_quote_characters() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_compose() {
        let v = JsonValue::obj([
            ("name", JsonValue::from("sweep")),
            ("targets", JsonValue::from(vec![10u64, 55])),
            ("nested", JsonValue::obj([("ok", JsonValue::from(true))])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"sweep","targets":[10,55],"nested":{"ok":true}}"#
        );
        assert!(v.to_file_string().ends_with('\n'));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Arr(vec![]).to_string(), "[]");
        assert_eq!(JsonValue::Obj(vec![]).to_string(), "{}");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let v = JsonValue::obj([
            ("name", JsonValue::from("bench \"perf\"\n")),
            ("targets", JsonValue::from(vec![10u64, 55])),
            ("min_ns", JsonValue::from(1234.5)),
            ("exp", JsonValue::from(2.5e-3)),
            ("neg", JsonValue::from(-7.0)),
            ("flag", JsonValue::from(true)),
            ("gap", JsonValue::Null),
            (
                "nested",
                JsonValue::Arr(vec![JsonValue::Obj(vec![]), JsonValue::Arr(vec![])]),
            ),
        ]);
        let parsed = JsonValue::parse(&v.to_file_string()).unwrap();
        assert_eq!(parsed, v);
        // Accessors walk the tree.
        assert_eq!(
            parsed.get("min_ns").and_then(JsonValue::as_f64),
            Some(1234.5)
        );
        assert_eq!(
            parsed.get("name").and_then(JsonValue::as_str),
            Some("bench \"perf\"\n")
        );
        assert_eq!(
            parsed
                .get("targets")
                .and_then(JsonValue::as_arr)
                .map(<[_]>::len),
            Some(2)
        );
        assert_eq!(parsed.get("absent"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let parsed = JsonValue::parse(r#""a\u0041\n\t\/\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(parsed, JsonValue::from("aA\n\t/é 😀"));
        // Raw multi-byte UTF-8 passes through unescaped.
        assert_eq!(
            JsonValue::parse("\"héllo\"").unwrap(),
            JsonValue::from("héllo")
        );
    }

    #[test]
    fn parse_caps_nesting_depth_instead_of_overflowing() {
        // Well within the cap: fine both ways.
        let deep_ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&deep_ok).is_ok());
        // One past the cap: a parse error, not a stack overflow.
        let over = JsonValue::MAX_PARSE_DEPTH + 1;
        let arrs = format!("{}0{}", "[".repeat(over), "]".repeat(over));
        let err = JsonValue::parse(&arrs).unwrap_err();
        assert!(err.to_string().contains("128-level cap"), "{err}");
        // Adversarial megabyte-scale nesting (the classic crash input)
        // fails fast with the same error for arrays and objects alike.
        let bomb = "[".repeat(1_000_000);
        assert!(JsonValue::parse(&bomb).is_err());
        let objs = "{\"k\":".repeat(1_000_000);
        assert!(JsonValue::parse(&objs).is_err());
        // Depth is nesting, not sibling count: wide documents at shallow
        // depth parse fine (the success path releases each level).
        let wide = format!("[{}]", vec!["[0]"; 500].join(","));
        assert!(JsonValue::parse(&wide).is_ok());
    }

    #[test]
    fn parse_enforces_strict_number_grammar() {
        // Leading zeros and bare fractions are RFC violations that
        // f64::parse would happily accept.
        for bad in [
            "01",
            "-01",
            "007",
            "01.5",
            "1.",
            "-3.",
            ".5",
            "-.5",
            "1e",
            "1e+",
            "2E-",
            "-",
            "--1",
            "[01]",
            "{\"a\":01}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // The strict grammar still admits everything JSON allows.
        for (ok, want) in [
            ("0", 0.0),
            ("-0", -0.0),
            ("0.5", 0.5),
            ("-0.25", -0.25),
            ("10", 10.0),
            ("0e10", 0.0),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("1e+2", 100.0),
        ] {
            assert_eq!(
                JsonValue::parse(ok).unwrap().as_f64(),
                Some(want),
                "{ok:?} should parse"
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for (text, what) in [
            ("", "end of input"),
            ("{\"a\":1,}", "string key"),
            ("[1,2", "',' or ']'"),
            ("{\"a\" 1}", "':'"),
            ("truth", "'true'"),
            ("\"abc", "unterminated"),
            ("\"\\q\"", "bad escape"),
            ("\"\\ud800x\"", "surrogate"),
            ("1 2", "trailing"),
            ("@", "expected a JSON value"),
        ] {
            let err = JsonValue::parse(text).unwrap_err();
            assert!(err.to_string().contains(what), "{text:?}: {err}");
        }
    }
}
