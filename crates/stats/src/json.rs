//! Minimal JSON emission (hand-rolled, like [`crate::csv`] — the sweep
//! results are flat numeric records, so a serializer dependency would
//! buy nothing, and the offline `serde` stand-in has no `serde_json`).
//!
//! Construction is by value tree; [`JsonValue`]'s `Display` renders
//! RFC 8259-conformant text with escaped strings and finite numbers
//! (non-finite floats render as `null`, the interoperable convention).

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders with a trailing newline — the shape result files want.
    pub fn to_file_string(&self) -> String {
        format!("{self}\n")
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> JsonValue {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> JsonValue {
        JsonValue::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest round-trip form; integers
                    // print without a fraction part, as JSON expects.
                    write!(f, "{n}")
                } else {
                    write!(f, "null")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsonValue::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(3u64).to_string(), "3");
        assert_eq!(JsonValue::from(2.5).to_string(), "2.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_control_and_quote_characters() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_compose() {
        let v = JsonValue::obj([
            ("name", JsonValue::from("sweep")),
            ("targets", JsonValue::from(vec![10u64, 55])),
            ("nested", JsonValue::obj([("ok", JsonValue::from(true))])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"sweep","targets":[10,55],"nested":{"ok":true}}"#
        );
        assert!(v.to_file_string().ends_with('\n'));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Arr(vec![]).to_string(), "[]");
        assert_eq!(JsonValue::Obj(vec![]).to_string(), "{}");
    }
}
