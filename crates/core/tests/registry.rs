//! Property tests for the scheme registry: duplicate registration is
//! always rejected, iteration order is always registration order, and
//! id validation round-trips through `FromStr`/`Display`.

use proptest::prelude::*;
use wsn_coverage::scheme::{
    DriveMode, NetworkSpec, RegistryError, ReplacementScheme, SchemeId, SchemeRegistry,
    SchemeReport, Unsupported,
};
use wsn_grid::GridNetwork;

/// A do-nothing scheme carrying an arbitrary id, for registry-shape
/// tests (its `run` is never called here).
#[derive(Debug)]
struct Named {
    id: String,
}

impl ReplacementScheme for Named {
    fn id(&self) -> &str {
        &self.id
    }
    fn label(&self) -> &str {
        "NAMED"
    }
    fn supports(&self, _spec: &NetworkSpec) -> Result<(), Unsupported> {
        Ok(())
    }
    fn run(
        &self,
        _net: &mut GridNetwork,
        _seed: u64,
        _mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported> {
        Err(Unsupported::new(self.id(), "test stub never runs"))
    }
}

/// Decodes a number into a valid id from a small pool, so random
/// sequences contain plenty of duplicates.
fn id_from(n: usize) -> String {
    let pool = [
        "sr", "sr-sc", "ar", "vf", "smart", "oracle", "x1", "plugin-b",
    ];
    pool[n % pool.len()].to_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn registration_order_is_iteration_order_and_duplicates_rejected(
        picks in proptest::collection::vec(0usize..8, 1..14),
    ) {
        let ids: Vec<String> = picks.into_iter().map(id_from).collect();
        let mut registry = SchemeRegistry::new();
        let mut accepted: Vec<String> = Vec::new();
        for id in &ids {
            match registry.register(Named { id: id.clone() }) {
                Ok(token) => {
                    prop_assert_eq!(token.as_str(), id.as_str());
                    prop_assert!(!accepted.contains(id), "duplicate must be rejected");
                    accepted.push(id.clone());
                }
                Err(RegistryError::Duplicate { id: dup }) => {
                    prop_assert_eq!(&dup, id);
                    prop_assert!(accepted.contains(id), "only real duplicates are rejected");
                }
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
        // Iteration order is exactly first-registration order, stably.
        let listed: Vec<String> = registry.ids().iter().map(ToString::to_string).collect();
        prop_assert_eq!(&listed, &accepted);
        let relisted: Vec<String> = registry.iter().map(|s| s.id().to_owned()).collect();
        prop_assert_eq!(&relisted, &accepted);
        prop_assert_eq!(registry.len(), accepted.len());
        // Every accepted id resolves; lookups agree with iteration.
        for id in &accepted {
            prop_assert!(registry.contains(id));
            prop_assert_eq!(registry.get(id).unwrap().id(), id.as_str());
        }
    }

    #[test]
    fn scheme_ids_round_trip_from_str_display(
        a in 0usize..8,
        b in 0usize..8,
        suffix in 0u32..1000,
    ) {
        // Compose valid ids like "ar-smart-17" from pool segments.
        let id = format!("{}-{}-{}", id_from(a), id_from(b), suffix);
        let parsed: SchemeId = id.parse().expect("composed ids are valid");
        prop_assert_eq!(parsed.to_string(), id.clone());
        let reparsed: SchemeId = parsed.to_string().parse().unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    #[test]
    fn malformed_ids_never_register(pick in 0usize..7, n in 0u32..100) {
        let raw = match pick {
            0 => String::new(),
            1 => format!("UPPER{n}"),
            2 => format!("has space{n}"),
            3 => format!("-leading{n}"),
            4 => format!("trailing{n}-"),
            5 => format!("under_score{n}"),
            _ => "x".repeat(65 + n as usize),
        };
        let mut registry = SchemeRegistry::new();
        prop_assert!(raw.parse::<SchemeId>().is_err());
        let outcome = registry.register(Named { id: raw });
        let rejected = matches!(outcome, Err(RegistryError::InvalidId(_)));
        prop_assert!(rejected);
        prop_assert!(registry.is_empty());
    }
}
