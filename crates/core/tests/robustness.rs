//! Robustness property tests: SR under randomized fault plans, the
//! asynchronous extension, battery dynamics, and the SR-SC shortcut.

use proptest::prelude::*;
use wsn_coverage::{Recovery, ShortcutRecovery, SrConfig};
use wsn_grid::{deploy, GridNetwork, GridSystem};
use wsn_simcore::fault::{FaultEvent, FaultPlan};
use wsn_simcore::SimRng;

fn dense_network(cols: u16, rows: u16, per_cell: usize, seed: u64) -> GridNetwork {
    let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
    let mut rng = SimRng::seed_from_u64(seed);
    let pos = deploy::per_cell_exact(&sys, per_cell, &mut rng);
    GridNetwork::new(sys, &pos)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_fault_plans_never_break_invariants(
        cols in 3u16..8, rows in 3u16..8,
        seed in 0u64..5_000,
        events in proptest::collection::vec((0u64..40, 1usize..12), 0..6),
    ) {
        let net = dense_network(cols, rows, 3, seed);
        let mut plan = FaultPlan::new();
        for (round, kills) in events {
            plan = plan.at(round, FaultEvent::KillRandomEnabled { count: kills });
        }
        let cfg = SrConfig::default().with_seed(seed).with_fault_plan(plan);
        let mut rec = Recovery::new(net, cfg).unwrap();
        let report = rec.run();
        prop_assert!(report.run.is_quiescent(), "must terminate: {}", report);
        rec.network().debug_invariants();
        // Process accounting always balances.
        prop_assert_eq!(
            report.metrics.processes_initiated,
            report.metrics.processes_converged + report.metrics.processes_failed
        );
        // With 3 nodes/cell and at most ~66 kills, spares usually
        // suffice; whenever they did, coverage must be complete.
        if report.final_stats.spares > 0 {
            prop_assert!(report.fully_covered, "spares left over but holes remain");
        }
    }

    #[test]
    fn async_activation_converges_to_same_coverage(
        seed in 0u64..2_000,
        p in 0.15f64..1.0,
        holes in 1usize..6,
    ) {
        let sys = GridSystem::new(6, 6, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        for idx in rng.sample_indices(sys.cell_count(), holes) {
            for id in net.members(sys.coord_of(idx)).unwrap().to_vec() {
                net.disable_node(id).unwrap();
            }
        }
        let cfg = SrConfig::default()
            .with_seed(seed)
            .with_activation_probability(p);
        let mut rec = Recovery::new(net, cfg).unwrap();
        let report = rec.run();
        prop_assert!(report.fully_covered, "async SR must still recover");
        prop_assert_eq!(report.metrics.processes_failed, 0);
        rec.network().debug_invariants();
    }

    #[test]
    fn battery_dynamics_terminate_and_keep_invariants(
        seed in 0u64..2_000,
        capacity in 3.0f64..60.0,
        holes in 1usize..5,
    ) {
        // Nodes with batteries from "dies after one hop" to "plenty":
        // recovery must terminate cleanly either way.
        use wsn_geometry::sample;
        use wsn_simcore::{Battery, SensorNode, NodeId};
        let sys = GridSystem::new(5, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        // Hand-build nodes with the chosen battery capacity.
        let mut positions = Vec::new();
        for coord in sys.iter_coords() {
            let rect = sys.cell_rect(coord).unwrap();
            for _ in 0..2 {
                positions.push(sample::point_in_rect(&rect, rng.uniform_f64(), rng.uniform_f64()));
            }
        }
        let mut net = GridNetwork::new(sys, &positions);
        // Note: GridNetwork::new uses default batteries; drain them down
        // to the chosen capacity through the public API.
        let node_count = net.node_count();
        for i in 0..node_count {
            let id = NodeId::new(i as u32);
            let full = net.node(id).unwrap().battery().charge();
            net.draw_battery(id, full - capacity).unwrap();
        }
        let _ = SensorNode::with_battery(
            NodeId::new(0),
            wsn_geometry::Point2::ORIGIN,
            Battery::new(capacity),
        );
        for idx in rng.sample_indices(sys.cell_count(), holes) {
            for id in net.members(sys.coord_of(idx)).unwrap().to_vec() {
                net.disable_node(id).unwrap();
            }
        }
        let cfg = SrConfig::default()
            .with_seed(seed)
            .with_battery_dynamics(true);
        let mut rec = Recovery::new(net, cfg).unwrap();
        let report = rec.run();
        prop_assert!(report.run.is_quiescent(), "must terminate");
        rec.network().debug_invariants();
    }

    #[test]
    fn shortcut_equals_sr_coverage_with_fewer_moves(
        seed in 0u64..2_000,
        holes in 1usize..6,
    ) {
        let sys = GridSystem::new(6, 6, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        for idx in rng.sample_indices(sys.cell_count(), holes) {
            for id in net.members(sys.coord_of(idx)).unwrap().to_vec() {
                net.disable_node(id).unwrap();
            }
        }
        let sr = Recovery::new(net.clone(), SrConfig::default().with_seed(seed))
            .unwrap()
            .run();
        let sc = ShortcutRecovery::new(net, SrConfig::default().with_seed(seed))
            .unwrap()
            .run();
        prop_assert_eq!(sr.fully_covered, sc.fully_covered);
        prop_assert!(sc.metrics.moves <= sr.metrics.moves);
        // SR-SC makes exactly one move per converged process.
        prop_assert_eq!(sc.metrics.moves, sc.metrics.processes_converged);
    }
}
