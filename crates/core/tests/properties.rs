//! Property-based tests for the SR protocol: Theorem 1 / Corollary 1
//! (complete recovery whenever spares exist) over randomized networks,
//! hole patterns and grid parities.

use proptest::prelude::*;
use wsn_coverage::{Recovery, SpareSelection, SrConfig};
use wsn_grid::{deploy, GridNetwork, GridSystem, HeadElection};
use wsn_simcore::SimRng;

fn usable_dims() -> impl Strategy<Value = (u16, u16)> {
    // Dimensions for which a topology exists: >= 2x2, and odd x odd only
    // from 3x3 up.
    (2u16..9, 2u16..9).prop_filter("odd x odd needs >= 3", |(c, r)| {
        !(c % 2 == 1 && r % 2 == 1) || (*c >= 3 && *r >= 3)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem_1_all_holes_recover_when_spares_suffice(
        (cols, rows) in usable_dims(),
        seed in 0u64..10_000,
        holes_frac in 0.05f64..0.45,
    ) {
        // Build a fully occupied network with 2 nodes per cell, then
        // punch random holes by disabling whole cells. Spares (one per
        // surviving cell) always outnumber holes for holes_frac < 0.5.
        let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        let n_holes = ((sys.cell_count() as f64 * holes_frac) as usize).max(1);
        let cell_idx = rng.sample_indices(sys.cell_count(), n_holes);
        for idx in cell_idx {
            let coord = sys.coord_of(idx);
            for id in net.members(coord).unwrap().to_vec() {
                net.disable_node(id).unwrap();
            }
        }
        let spares_before = net.total_spares();
        let holes_before = net.vacant_count();
        prop_assume!(spares_before >= holes_before);

        let mut rec = Recovery::new(net, SrConfig::default().with_seed(seed)).unwrap();
        let report = rec.run();
        prop_assert!(report.run.is_quiescent(), "must reach quiescence");
        prop_assert!(report.fully_covered, "all holes must be filled");
        prop_assert_eq!(report.metrics.processes_failed, 0);
        prop_assert_eq!(report.metrics.success_rate_percent(), 100.0);
        rec.network().debug_invariants();
        // Spare conservation: each filled hole consumed exactly one spare.
        prop_assert_eq!(
            report.final_stats.spares,
            spares_before - holes_before
        );
    }

    #[test]
    fn recovery_is_deterministic_per_seed(
        (cols, rows) in usable_dims(),
        seed in 0u64..1_000,
    ) {
        let run = |seed: u64| {
            let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
            let mut rng = SimRng::seed_from_u64(seed);
            let pos = deploy::uniform(&sys, sys.cell_count() * 2, &mut rng);
            let net = GridNetwork::new(sys, &pos);
            let mut rec = Recovery::new(net, SrConfig::default().with_seed(seed)).unwrap();
            rec.run()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn policies_do_not_affect_correctness(
        (cols, rows) in usable_dims(),
        seed in 0u64..1_000,
        election_idx in 0usize..4,
        spare_idx in 0usize..3,
    ) {
        let election = [
            HeadElection::FirstId,
            HeadElection::MaxEnergy,
            HeadElection::ClosestToCenter,
            HeadElection::Random,
        ][election_idx];
        let spare = [
            SpareSelection::ClosestToTarget,
            SpareSelection::FirstId,
            SpareSelection::MaxEnergy,
        ][spare_idx];
        let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        // One hole.
        let idx = rng.range_usize(sys.cell_count());
        for id in net.members(sys.coord_of(idx)).unwrap().to_vec() {
            net.disable_node(id).unwrap();
        }
        let cfg = SrConfig::default()
            .with_seed(seed)
            .with_election(election)
            .with_spare_selection(spare);
        let mut rec = Recovery::new(net, cfg).unwrap();
        let report = rec.run();
        prop_assert!(report.fully_covered);
        prop_assert_eq!(report.metrics.processes_initiated, 1);
        // The monitor cell always has a spare here (2 per cell), so the
        // replacement is a single move regardless of policy (Theorem 2's
        // i = 1 case).
        prop_assert_eq!(report.metrics.moves, 1);
    }

    #[test]
    fn movement_distances_respect_paper_bounds(
        (cols, rows) in usable_dims(),
        seed in 0u64..1_000,
    ) {
        let r = 4.4721;
        let sys = GridSystem::new(cols, rows, r).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform(&sys, sys.cell_count() * 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let mut rec = Recovery::new(
            net,
            SrConfig::default().with_seed(seed).with_trace(true),
        )
        .unwrap();
        let report = rec.run();
        let geom = *rec.network().system().geometry();
        for rec in rec.trace().of_kind("node_moved") {
            if let wsn_simcore::TraceEvent::NodeMoved { distance, .. } = &rec.event {
                // Source nodes start anywhere in their cell (not only the
                // central area), so the lower bound is 0; the upper bound
                // is the corner-to-far-central-corner maximum.
                prop_assert!(*distance <= geom.max_move_distance() + 1e-9);
                prop_assert!(*distance >= 0.0);
            }
        }
        let _ = report;
    }
}
