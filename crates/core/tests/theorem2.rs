//! Monte-Carlo validation of Theorem 2: the simulated number of node
//! movements per replacement matches the analytical model `M(L, N)`
//! (the correctness check the paper's §5 performs by overlaying Figures
//! 7(a)/7(b) and 8(a)/8(b)).

use wsn_coverage::{analysis, Recovery, SrConfig};
use wsn_grid::{deploy, GridNetwork, GridSystem};
use wsn_simcore::SimRng;

/// Runs one single-hole replacement with exactly `n` spares placed
/// uniformly over the non-hole cells, returning the hop count of the
/// (single) converged process.
fn simulate_single_replacement(cols: u16, rows: u16, n: usize, seed: u64) -> u64 {
    let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
    let mut rng = SimRng::seed_from_u64(seed);
    // One node in every cell except the hole...
    let hole = sys.coord_of(rng.range_usize(sys.cell_count()));
    let mut pos = deploy::with_holes(&sys, &[hole], 1, &mut rng);
    // ...plus n spares in uniformly random non-hole cells (the model's
    // "N spare nodes uniformly distributed over the path").
    let occupied: Vec<_> = sys.iter_coords().filter(|c| *c != hole).collect();
    for _ in 0..n {
        let cell = occupied[rng.range_usize(occupied.len())];
        let rect = sys.cell_rect(cell).unwrap();
        pos.push(wsn_geometry::sample::point_in_rect(
            &rect,
            rng.uniform_f64(),
            rng.uniform_f64(),
        ));
    }
    let net = GridNetwork::new(sys, &pos);
    assert_eq!(net.total_spares(), n);
    let mut rec = Recovery::new(net, SrConfig::default().with_seed(seed)).unwrap();
    let report = rec.run();
    assert!(report.fully_covered, "a spare exists, so SR must converge");
    assert_eq!(report.metrics.processes_converged, 1);
    report.processes[0].hops
}

fn mean_simulated_moves(cols: u16, rows: u16, n: usize, trials: u64, seed0: u64) -> f64 {
    let total: u64 = (0..trials)
        .map(|t| simulate_single_replacement(cols, rows, n, seed0 + t))
        .sum();
    total as f64 / trials as f64
}

#[test]
fn theorem_2_matches_simulation_4x5() {
    // The paper's Figure 3(a) setting: 4x5 grid, L = 19.
    for &(n, trials, tol) in &[(3usize, 400u64, 0.35), (12, 400, 0.12), (40, 300, 0.06)] {
        let analytical = analysis::expected_moves(19, n);
        let simulated = mean_simulated_moves(4, 5, n, trials, 1000 + n as u64);
        assert!(
            (simulated - analytical).abs() / analytical < tol,
            "N={n}: simulated {simulated:.3} vs analytical {analytical:.3}"
        );
    }
}

#[test]
fn theorem_2_matches_simulation_16x16() {
    // Figure 3(b) setting: 16x16 grid, L = 255. Fewer trials (larger
    // runs), looser tolerance.
    for &(n, trials, tol) in &[(55usize, 200u64, 0.25), (200, 400, 0.12)] {
        let analytical = analysis::expected_moves(255, n);
        let simulated = mean_simulated_moves(16, 16, n, trials, 9000 + n as u64);
        assert!(
            (simulated - analytical).abs() / analytical < tol,
            "N={n}: simulated {simulated:.3} vs analytical {analytical:.3}"
        );
    }
}

#[test]
fn corollary_2_matches_simulation_5x5_dual() {
    // Dual-path grids follow M(m*n - 2) (Corollary 2).
    let n = 10usize;
    let analytical = analysis::expected_moves_dual(5, 5, n);
    let simulated = mean_simulated_moves(5, 5, n, 400, 4242);
    assert!(
        (simulated - analytical).abs() / analytical < 0.15,
        "simulated {simulated:.3} vs analytical {analytical:.3}"
    );
}

#[test]
fn paper_example_two_movements_at_n12() {
    // "in most cases, the replacement process will converge within 2
    // movements" (4x5, N = 12).
    let simulated = mean_simulated_moves(4, 5, 12, 500, 77);
    assert!(
        (1.6..=2.5).contains(&simulated),
        "mean movements {simulated}"
    );
}

#[test]
fn distance_tracks_moves_times_hop_factor() {
    // Figure 5/8 logic: total distance ~ 1.08 r * moves, within the gap
    // between the paper's 1.08 and the exact 1.050 factor.
    let sys = GridSystem::new(8, 8, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(31415);
    let mut total_moves = 0u64;
    let mut total_distance = 0.0f64;
    for t in 0..120u64 {
        let mut pos = deploy::per_cell_exact(&sys, 1, &mut rng);
        // 6 extra spares, then three holes.
        for _ in 0..6 {
            let cell = sys.coord_of(rng.range_usize(sys.cell_count()));
            let rect = sys.cell_rect(cell).unwrap();
            pos.push(wsn_geometry::sample::point_in_rect(
                &rect,
                rng.uniform_f64(),
                rng.uniform_f64(),
            ));
        }
        let mut net = GridNetwork::new(sys, &pos);
        for idx in rng.sample_indices(sys.cell_count(), 3) {
            for id in net.members(sys.coord_of(idx)).unwrap().to_vec() {
                net.disable_node(id).unwrap();
            }
        }
        let mut rec = Recovery::new(net, SrConfig::default().with_seed(t)).unwrap();
        let report = rec.run();
        total_moves += report.metrics.moves;
        total_distance += report.metrics.distance;
    }
    let per_hop = total_distance / total_moves as f64 / 10.0; // factor of r
    assert!((0.95..=1.15).contains(&per_hop), "per-hop factor {per_hop}");
}
