//! The discrete-event engine: heads and spares as message-passing
//! actors over a lossy network model.
//!
//! The classic round loop ([`crate::SrProtocol`],
//! [`crate::ShortcutProtocol`]) treats message delivery as an axiom:
//! a notification sent this round is *known* next round. This module
//! re-implements SR and SR-SC as genuine distributed protocols whose
//! every inter-cell exchange is an envelope routed through a
//! [`NetLink`]:
//!
//! * **`MonitorProbe`** — the monitoring head's same-tick occupancy
//!   probe of its watched cell. A dropped probe defers detection to the
//!   next round.
//! * **`HoleAnnounce`** — the backward notification carrying the
//!   cascade. It is the protocol's *baton*: the asked head acts only
//!   while holding it. A dropped announce loses the baton
//!   ([`ProtocolHealth::lost_cascades`]); a slow one leaves the
//!   receiving head ignorant, and an ignorant monitor re-initiates the
//!   repair ([`ProtocolHealth::duplicate_initiations`]).
//! * **`SpareRequest` / `MoveNotify`** — intra-cell head↔spare
//!   exchanges; a cell is one radio neighborhood, so these never
//!   traverse the lossy channel (counted, not routed).
//! * **`MoveAck`** — the filled cell's new head confirming arrival to
//!   the dispatcher; informational.
//!
//! # The conformance contract
//!
//! Under [`NetModelSpec::Ideal`] every envelope is delivered on the
//! classic one-round cadence and the engine replicates the classic
//! protocols draw-for-draw: the run RNG sees the identical call
//! sequence (link randomness lives in a separate
//! [`derive_stream_seed`]ed stream), rounds make the identical progress
//! verdicts, and the resulting [`SchemeReport`] metrics are
//! byte-identical to [`crate::Recovery`] / [`crate::ShortcutRecovery`].
//! The conformance battery in the bench crate pins this over a scenario
//! grid; degraded models then *measure* what the synchronous model
//! assumes away, in [`SchemeReport::health`].

use std::collections::HashSet;

use wsn_grid::{GridCoord, GridNetwork, HoleSet};
use wsn_hamilton::{BackwardStep, CycleTopology};
use wsn_simcore::{
    derive_stream_seed, Endpoint, EnergyModel, EventQueue, Fate, Metrics, NetLink, NetModelSpec,
    NodeId, ProtocolHealth, RoundOutcome, RoundProtocol, RoundRunner, SimRng, TraceEvent, TraceLog,
};

use crate::movement::movement_target;
use crate::process::{ProcessId, ProcessStatus, ProcessSummary};
use crate::protocol::DetectionOutcome;
use crate::recovery::SrError;
use crate::scheme::{SchemeDetails, SchemeReport};
use crate::shortcut::ScRing;
use crate::{SpareSelection, SrConfig};

/// Stream tag separating the network-model RNG from the run RNG: links
/// draw from `derive_stream_seed(config.seed, &[NET_STREAM_TAG])`, so
/// under `Ideal` (no link draws at all) the run RNG sees the
/// byte-identical sequence the classic engine does. Baseline schemes
/// that join the event engine derive their link seed the same way, so a
/// given `(seed, net model)` is the same weather for every scheme.
pub const NET_STREAM_TAG: u64 = 0x004E_4554; // "NET"

/// Where a process's notification baton currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatonState {
    /// The asked head holds the notification and can act.
    Held,
    /// The notification is in transit; delivery is scheduled.
    InFlight,
    /// The network dropped the notification; nobody holds the baton.
    Lost,
}

/// Scheduled deliveries (the event queue's payload).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Envelope {
    /// The cascade baton arriving at the asked cell of `process`.
    HoleAnnounce {
        /// Raw [`ProcessId`] of the owning process.
        process: u64,
    },
    /// Informational convergence confirmation; delivery is a no-op.
    MoveAck,
}

/// One active event-driven SR process: the classic state plus the baton.
#[derive(Debug, Clone)]
struct EventProcess {
    id: ProcessId,
    hole: GridCoord,
    current_vacant: GridCoord,
    asked: GridCoord,
    baton: BatonState,
    /// Round in which `current_vacant` was vacated by a relay — the
    /// one-round window in which its monitor may not yet have observed
    /// the vacancy (so detection does not treat it as unowned).
    vacated_round: Option<u64>,
}

/// Internal outcome of resolving the next backward hop (mirrors the
/// classic protocol's resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackwardResolution {
    Next(GridCoord),
    Wait,
    Exhausted,
}

/// Event-driven SR: the classic snake-like replacement re-expressed as
/// per-cell actors exchanging envelopes through a [`NetLink`].
///
/// Use [`EventSrRecovery`] to drive it; the protocol type is public for
/// custom drivers, like [`crate::SrProtocol`].
#[derive(Debug, Clone)]
pub struct EventSrProtocol {
    net: GridNetwork,
    topo: CycleTopology,
    config: SrConfig,
    rng: SimRng,
    trace: TraceLog,
    metrics: Metrics,
    energy: EnergyModel,
    active: Vec<EventProcess>,
    summaries: Vec<ProcessSummary>,
    failed_holes: HashSet<GridCoord>,
    pending_holes: HoleSet,
    detect_buf: Vec<usize>,
    queue: EventQueue<Envelope>,
    link: NetLink,
}

impl EventSrProtocol {
    /// Creates the protocol, electing initial heads in every occupied
    /// cell (the identical initialization sequence to
    /// [`crate::SrProtocol::new`], so the run RNG streams align).
    ///
    /// # Panics
    ///
    /// Panics if `topo` and `net` disagree on grid dimensions.
    pub fn new(
        mut net: GridNetwork,
        topo: CycleTopology,
        config: SrConfig,
        spec: NetModelSpec,
    ) -> EventSrProtocol {
        assert_eq!(
            (topo.cols(), topo.rows()),
            (net.system().cols(), net.system().rows()),
            "topology and network dimensions must match"
        );
        let mut rng = SimRng::seed_from_u64(config.seed);
        net.elect_all_heads(config.election, &mut rng);
        let trace = if config.trace {
            TraceLog::new()
        } else {
            TraceLog::disabled()
        };
        let mut pending_holes = HoleSet::new(net.system().cell_count());
        pending_holes.assign_vacant(net.occupancy());
        net.clear_changed_cells();
        let link = spec.link(derive_stream_seed(config.seed, &[NET_STREAM_TAG]));
        EventSrProtocol {
            net,
            topo,
            config,
            rng,
            trace,
            metrics: Metrics::new(),
            energy: EnergyModel::default(),
            active: Vec::new(),
            summaries: Vec::new(),
            failed_holes: HashSet::new(),
            pending_holes,
            detect_buf: Vec::new(),
            queue: EventQueue::new(),
            link,
        }
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        &self.net
    }

    /// Consumes the protocol and releases its network.
    pub fn into_network(self) -> GridNetwork {
        self.net
    }

    /// Cost counters accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Per-process summaries.
    pub fn process_summaries(&self) -> &[ProcessSummary] {
        &self.summaries
    }

    /// The distributed-health ledger (messages, drops, duplicates, …).
    pub fn health(&self) -> ProtocolHealth {
        self.link.health
    }

    /// Marks all still-active processes failed. Processes whose baton
    /// was in flight or lost when the run ended are additionally
    /// counted as [`ProtocolHealth::stalled_repairs`].
    pub fn fail_remaining(&mut self, round: u64) {
        for p in self.active.drain(..) {
            let s = &mut self.summaries[p.id.raw() as usize];
            s.status = ProcessStatus::Failed;
            s.ended_round = Some(round);
            self.metrics.processes_failed += 1;
            let reason = if p.baton == BatonState::Held {
                "no reachable spare (run ended)"
            } else {
                self.link.health.stalled_repairs += 1;
                "notification lost in the network (run ended)"
            };
            self.trace.record(
                round,
                TraceEvent::ProcessFailed {
                    process: p.id.raw(),
                    reason: reason.into(),
                },
            );
        }
    }

    fn endpoint(&self, cell: GridCoord) -> Endpoint {
        let idx = self
            .net
            .system()
            .index_of(cell)
            .expect("protocol cells are in bounds");
        let c = self
            .net
            .system()
            .cell_center(cell)
            .expect("protocol cells are in bounds");
        Endpoint {
            cell: idx as u64,
            pos: (c.x, c.y),
        }
    }

    fn spare_count(&self, cell: GridCoord) -> usize {
        self.net.spare_count(cell).unwrap_or(0)
    }

    fn is_occupied(&self, cell: GridCoord) -> bool {
        !self.net.is_vacant(cell).unwrap_or(true)
    }

    fn select_spare(&mut self, cell: GridCoord, target: GridCoord) -> Option<NodeId> {
        if self.net.spare_count(cell).ok()? == 0 {
            return None;
        }
        let spares = self.net.spare_iter(cell).ok()?;
        let target_center = self
            .net
            .system()
            .cell_center(target)
            .expect("targets are in-bounds cells");
        match self.config.spare_selection {
            SpareSelection::FirstId => spares.min(),
            SpareSelection::ClosestToTarget => spares.min_by(|&a, &b| {
                let da = self
                    .net
                    .node(a)
                    .expect("spares are deployed")
                    .position()
                    .distance_squared(target_center);
                let db = self
                    .net
                    .node(b)
                    .expect("spares are deployed")
                    .position()
                    .distance_squared(target_center);
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            }),
            SpareSelection::MaxEnergy => spares.max_by(|&a, &b| {
                let ea = self.net.node(a).expect("deployed").battery().charge();
                let eb = self.net.node(b).expect("deployed").battery().charge();
                ea.partial_cmp(&eb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            }),
        }
    }

    /// Identical movement execution to the classic protocol (same RNG
    /// draws, metrics, trace and battery bookkeeping).
    fn execute_move(
        &mut self,
        process: ProcessId,
        node: NodeId,
        target: GridCoord,
        round: u64,
    ) -> f64 {
        let dest = movement_target(self.net.system(), target, &mut self.rng);
        let out = self
            .net
            .move_node(node, dest)
            .expect("targets are in-bounds cells");
        self.net.set_head(target, node).expect("node just arrived");
        self.metrics.record_move(out.distance);
        let cost = self.energy.movement(out.distance);
        self.metrics.energy += cost;
        self.trace.record(
            round,
            TraceEvent::NodeMoved {
                process: Some(process.raw()),
                node,
                from: out.from.into(),
                to: out.to.into(),
                distance: out.distance,
            },
        );
        if self.config.battery_dynamics {
            let depleted = self
                .net
                .draw_battery(node, cost)
                .expect("movers are deployed");
            if depleted {
                self.net.disable_node(node).expect("movers are deployed");
                self.failed_holes.clear();
                self.trace.record(
                    round,
                    TraceEvent::NodeDisabled {
                        node,
                        cell: out.to.into(),
                    },
                );
            }
        }
        out.distance
    }

    fn resolve_backward(&self, asked: GridCoord, hole: GridCoord) -> BackwardResolution {
        let Some(step) = self.topo.backward_from(asked, hole) else {
            return BackwardResolution::Exhausted;
        };
        match step {
            BackwardStep::One(p) => BackwardResolution::Next(p),
            BackwardStep::ForkAB { a, b } => {
                if self.spare_count(a) > 0 {
                    BackwardResolution::Next(a)
                } else if self.spare_count(b) > 0 {
                    BackwardResolution::Next(b)
                } else if self.is_occupied(a) {
                    BackwardResolution::Next(a)
                } else if self.is_occupied(b) {
                    BackwardResolution::Next(b)
                } else {
                    BackwardResolution::Wait
                }
            }
            BackwardStep::ProbeThen { probe, next } => {
                if self.spare_count(probe) > 0 {
                    BackwardResolution::Next(probe)
                } else {
                    BackwardResolution::Next(next)
                }
            }
        }
    }

    /// Routes an informational `MoveAck` from the just-filled cell back
    /// to the dispatcher.
    fn send_ack(&mut self, from: GridCoord, to: GridCoord, round: u64) {
        let fate = self.link.route(self.endpoint(from), self.endpoint(to));
        let deliver_at = match fate {
            Fate::Deliver(extra) => {
                let at = round + 1 + extra;
                self.queue.schedule(at, Envelope::MoveAck);
                Some(at)
            }
            Fate::Drop => None,
        };
        self.trace.record(
            round,
            TraceEvent::NetMessage {
                msg: "move_ack".into(),
                from: from.into(),
                to: to.into(),
                deliver_at,
            },
        );
    }

    /// Terminates process `i` because its target vacancy was already
    /// refilled by a duplicate when its baton (re)surfaced.
    fn terminate_superseded(&mut self, i: usize, round: u64) {
        let p = self.active.remove(i);
        let s = &mut self.summaries[p.id.raw() as usize];
        s.status = ProcessStatus::Failed;
        s.ended_round = Some(round);
        self.metrics.processes_failed += 1;
        self.link.health.superseded_repairs += 1;
        self.trace.record(
            round,
            TraceEvent::ProcessFailed {
                process: p.id.raw(),
                reason: "superseded by a duplicate repair".into(),
            },
        );
    }

    /// Delivers every envelope due this round. Returns `true` when a
    /// delivery ended a process (superseded repairs — unreachable under
    /// `Ideal`, where no duplicates exist to race the baton).
    fn drain_due(&mut self, round: u64) -> bool {
        let mut progress = false;
        while let Some(sched) = self.queue.pop_due(round) {
            match sched.payload {
                Envelope::HoleAnnounce { process } => {
                    let Some(i) = self.active.iter().position(|p| p.id.raw() == process) else {
                        continue;
                    };
                    if self.is_occupied(self.active[i].current_vacant) {
                        self.terminate_superseded(i, round);
                        progress = true;
                    } else {
                        self.active[i].baton = BatonState::Held;
                    }
                }
                Envelope::MoveAck => {}
            }
        }
        progress
    }

    /// One action for one process — the classic step gated on holding
    /// the baton. Returns `true` on progress.
    fn step_process(&mut self, idx: usize, round: u64) -> bool {
        let p = self.active[idx].clone();
        if p.baton != BatonState::Held {
            // The asked head has not received the notification yet (or
            // never will); nothing to act on.
            return false;
        }
        if self.is_occupied(p.current_vacant) {
            // A duplicate repair filled the target while the baton sat
            // here (unreachable under `Ideal`).
            self.terminate_superseded(idx, round);
            return true;
        }
        if !self.is_occupied(p.asked) {
            return false;
        }
        if self.config.activation_probability < 1.0
            && !self.rng.bernoulli(self.config.activation_probability)
        {
            return true;
        }
        if let Some(spare) = self.select_spare(p.asked, p.current_vacant) {
            // Head → co-located spare: ask, then order the move. One
            // radio neighborhood, so neither envelope can be lost.
            self.link.local(); // SpareRequest
            self.link.local(); // MoveNotify
            let d = self.execute_move(p.id, spare, p.current_vacant, round);
            let s = &mut self.summaries[p.id.raw() as usize];
            s.hops += 1;
            s.moves += 1;
            s.distance += d;
            s.status = ProcessStatus::Converged;
            s.ended_round = Some(round);
            self.metrics.processes_converged += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessConverged {
                    process: p.id.raw(),
                    moves: s.moves,
                },
            );
            self.active.remove(idx);
            self.send_ack(p.current_vacant, p.asked, round);
            return true;
        }
        match self.resolve_backward(p.asked, p.hole) {
            BackwardResolution::Wait => false,
            BackwardResolution::Next(next_asked) => {
                // Classic billing first (the sender pays for the
                // transmission whether or not it arrives) …
                self.metrics.record_message();
                self.metrics.energy += self.energy.message_cost;
                self.trace.record(
                    round,
                    TraceEvent::NotificationSent {
                        process: p.id.raw(),
                        from: p.asked.into(),
                        to: next_asked.into(),
                    },
                );
                // … then the envelope takes its chances on the channel.
                let fate = self
                    .link
                    .route(self.endpoint(p.asked), self.endpoint(next_asked));
                let deliver_at = match fate {
                    Fate::Deliver(extra) => {
                        let at = round + 1 + extra;
                        self.queue.schedule(
                            at,
                            Envelope::HoleAnnounce {
                                process: p.id.raw(),
                            },
                        );
                        Some(at)
                    }
                    Fate::Drop => None,
                };
                self.trace.record(
                    round,
                    TraceEvent::NetMessage {
                        msg: "hole_announce".into(),
                        from: p.asked.into(),
                        to: next_asked.into(),
                        deliver_at,
                    },
                );
                // The relaying head moves regardless: it committed the
                // moment it sent the notification (the honest failure
                // mode — a lost baton, not a clairvoyant abort).
                let head = self
                    .net
                    .head_of(p.asked)
                    .expect("asked cell is in bounds")
                    .expect("occupied cells are headed after repair");
                let d = self.execute_move(p.id, head, p.current_vacant, round);
                let s = &mut self.summaries[p.id.raw() as usize];
                s.hops += 1;
                s.moves += 1;
                s.distance += d;
                let ap = &mut self.active[idx];
                ap.current_vacant = p.asked;
                ap.asked = next_asked;
                ap.vacated_round = Some(round);
                ap.baton = match fate {
                    Fate::Deliver(_) => BatonState::InFlight,
                    Fate::Drop => {
                        self.link.health.lost_cascades += 1;
                        BatonState::Lost
                    }
                };
                true
            }
            BackwardResolution::Exhausted => {
                let s = &mut self.summaries[p.id.raw() as usize];
                s.status = ProcessStatus::Failed;
                s.ended_round = Some(round);
                self.metrics.processes_failed += 1;
                self.trace.record(
                    round,
                    TraceEvent::ProcessFailed {
                        process: p.id.raw(),
                        reason: "walk exhausted without finding a spare".into(),
                    },
                );
                self.failed_holes.insert(p.current_vacant);
                self.active.remove(idx);
                true
            }
        }
    }

    /// Detection through real probes. A hole is *owned* only while its
    /// process holds the baton or vacated it this very round — a stale
    /// owner (baton in flight or lost) is invisible to the monitor,
    /// which honestly re-initiates
    /// ([`ProtocolHealth::duplicate_initiations`]).
    fn detect_and_initiate(&mut self, round: u64) -> DetectionOutcome {
        self.net.fold_changed_cells_into(&mut self.pending_holes);
        let mut buf = std::mem::take(&mut self.detect_buf);
        buf.clear();
        buf.extend(self.pending_holes.iter());
        self.metrics.cells_scanned += buf.len() as u64;
        let mut outcome = DetectionOutcome::default();
        for &idx in &buf {
            let g = self.net.system().coord_of(idx);
            if self.failed_holes.contains(&g) {
                continue;
            }
            if self.active.iter().any(|p| {
                p.current_vacant == g
                    && (p.baton == BatonState::Held || p.vacated_round == Some(round))
            }) {
                continue; // a live cascade owns this cell, observably
            }
            let monitor = self.topo.monitors(g);
            if !self.is_occupied(monitor) {
                continue;
            }
            let probed = self.link.sense(self.endpoint(monitor), self.endpoint(g));
            self.trace.record(
                round,
                TraceEvent::NetMessage {
                    msg: "monitor_probe".into(),
                    from: monitor.into(),
                    to: g.into(),
                    deliver_at: probed.then_some(round),
                },
            );
            if !probed {
                // The weather ate the probe; the monitor retries next
                // round. Still outstanding work.
                outcome.pending += 1;
                continue;
            }
            if self.config.activation_probability < 1.0
                && !self.rng.bernoulli(self.config.activation_probability)
            {
                outcome.pending += 1;
                continue;
            }
            if self.active.iter().any(|p| p.current_vacant == g) {
                // A stale owner exists after all: this initiation
                // duplicates a cascade the monitor could not observe.
                self.link.health.duplicate_initiations += 1;
            }
            self.trace.record(
                round,
                TraceEvent::VacancyDetected {
                    cell: g.into(),
                    detector: monitor.into(),
                },
            );
            let id = ProcessId::new(self.summaries.len() as u64);
            self.summaries.push(ProcessSummary {
                id,
                hole: g,
                initiator: monitor,
                initiated_round: round,
                ended_round: None,
                status: ProcessStatus::Active,
                hops: 0,
                moves: 0,
                distance: 0.0,
            });
            self.active.push(EventProcess {
                id,
                hole: g,
                current_vacant: g,
                asked: monitor,
                baton: BatonState::Held,
                vacated_round: None,
            });
            self.metrics.processes_initiated += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessInitiated {
                    process: id.raw(),
                    hole: g.into(),
                    initiator: monitor.into(),
                },
            );
            outcome.initiated += 1;
        }
        self.detect_buf = buf;
        outcome
    }
}

impl RoundProtocol for EventSrProtocol {
    fn execute_round(&mut self, round: u64) -> RoundOutcome {
        let mut progress = false;

        // 0. Due envelopes arrive before anyone acts this round.
        progress |= self.drain_due(round);

        // 1. Scheduled faults (identical to the classic engine).
        let fault_events: Vec<_> = self.config.fault_plan.events_at(round).cloned().collect();
        for ev in fault_events {
            let killed = self.net.apply_fault(&ev, &mut self.rng);
            if !killed.is_empty() {
                self.failed_holes.clear();
            }
            for id in &killed {
                let cell = self
                    .net
                    .system()
                    .cell_of(self.net.node(*id).expect("deployed").position())
                    .expect("positions stay in the area");
                self.trace.record(
                    round,
                    TraceEvent::NodeDisabled {
                        node: *id,
                        cell: cell.into(),
                    },
                );
            }
            progress |= !killed.is_empty();
        }

        // 2. Rotation and local head repair (identical).
        if let Some(period) = self.config.head_rotation_period {
            if round > 0 && round.is_multiple_of(period) {
                self.net
                    .elect_all_heads(self.config.election, &mut self.rng);
            }
        }
        self.net.repair_heads(self.config.election, &mut self.rng);

        // 3. Process steps, in id order, gated on the baton.
        let mut i = 0;
        while i < self.active.len() {
            let before = self.active.len();
            let acted = self.step_process(i, round);
            progress |= acted;
            if self.active.len() == before {
                i += 1;
            }
        }

        // 4. Detection through probes.
        progress |= self.detect_and_initiate(round).any_activity();

        // 5. Idle surveillance drain (identical to classic).
        if self.config.battery_dynamics {
            let idle = self.energy.idle_cost_per_round;
            let heads: Vec<NodeId> = self
                .net
                .system()
                .iter_coords()
                .filter_map(|c| self.net.head_of(c).expect("in bounds"))
                .collect();
            for head in heads {
                self.metrics.energy += idle;
                if self
                    .net
                    .draw_battery(head, idle)
                    .expect("heads are deployed")
                {
                    self.net.disable_node(head).expect("heads are deployed");
                    self.failed_holes.clear();
                    progress = true;
                }
            }
        }

        progress |= self
            .config
            .fault_plan
            .last_round()
            .is_some_and(|r| r > round);

        // In-flight envelopes are scheduled work: a run must not go
        // quiescent while a baton is still in the air. Under `Ideal`
        // every envelope scheduled in a progress round drains in the
        // next, so this never changes a classic quiescence verdict.
        progress |= !self.queue.is_empty();

        self.metrics.rounds = round + 1;
        if progress {
            RoundOutcome::Progress
        } else {
            RoundOutcome::Quiescent
        }
    }
}

/// Drives event-driven SR to quiescence — the event-engine counterpart
/// of [`crate::Recovery`], selected by
/// [`crate::DriveMode::EventDriven`].
#[derive(Debug, Clone)]
pub struct EventSrRecovery {
    protocol: EventSrProtocol,
    runner: RoundRunner,
}

impl EventSrRecovery {
    /// Builds the cycle topology for the network's region and prepares
    /// the event protocol.
    ///
    /// # Errors
    ///
    /// [`SrError::Topology`] when the region has no replacement
    /// structure, [`SrError::Engine`] for invalid round caps.
    pub fn new(
        net: GridNetwork,
        config: SrConfig,
        spec: NetModelSpec,
    ) -> Result<EventSrRecovery, SrError> {
        let topo = CycleTopology::build_masked(net.mask())?;
        EventSrRecovery::with_topology(net, topo, config, spec)
    }

    /// Like [`EventSrRecovery::new`] with a pre-built topology.
    ///
    /// # Errors
    ///
    /// [`SrError::Engine`] for invalid round caps in `config`.
    pub fn with_topology(
        net: GridNetwork,
        topo: CycleTopology,
        config: SrConfig,
        spec: NetModelSpec,
    ) -> Result<EventSrRecovery, SrError> {
        let runner = RoundRunner::with_quiescence(config.max_rounds, config.quiescent_rounds)?;
        Ok(EventSrRecovery {
            protocol: EventSrProtocol::new(net, topo, config, spec),
            runner,
        })
    }

    /// Runs to quiescence (or the round cap) and reports, with the
    /// health ledger filled in.
    pub fn run(&mut self) -> SchemeReport {
        let initial_stats = self.protocol.network().stats();
        let run = self.runner.run(&mut self.protocol);
        self.protocol.fail_remaining(run.rounds);
        let final_stats = self.protocol.network().stats();
        SchemeReport {
            run,
            metrics: *self.protocol.metrics(),
            initial_stats,
            final_stats,
            fully_covered: final_stats.vacant == 0,
            processes: self.protocol.process_summaries().to_vec(),
            health: self.protocol.health(),
            details: SchemeDetails::none(),
        }
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        self.protocol.network()
    }

    /// Consumes the driver and releases the network.
    pub fn into_network(self) -> GridNetwork {
        self.protocol.into_network()
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        self.protocol.trace()
    }

    /// The underlying protocol (for custom inspection).
    pub fn protocol(&self) -> &EventSrProtocol {
        &self.protocol
    }
}

/// One active event-driven SR-SC process: the classic courier walk plus
/// the baton.
#[derive(Debug, Clone)]
struct EventScProcess {
    id: ProcessId,
    hole: GridCoord,
    courier: GridCoord,
    forwarded: usize,
    baton: BatonState,
}

/// Event-driven SR-SC: the shortcut protocol's courier notifications
/// and gossip beacons routed through a [`NetLink`].
///
/// A dropped courier forward permanently strands the repair (the hole
/// stays owned by its process, so — unlike SR — no duplicate rescues
/// it; the failure mode is [`ProtocolHealth::stalled_repairs`]), and a
/// dropped gossip beacon leaves the receiving head's spare-distance
/// entry stale for a round.
#[derive(Debug, Clone)]
pub struct EventScProtocol {
    net: GridNetwork,
    cycle: ScRing,
    config: SrConfig,
    rng: SimRng,
    trace: TraceLog,
    metrics: Metrics,
    energy: EnergyModel,
    spare_dist: Vec<u32>,
    active: Vec<EventScProcess>,
    summaries: Vec<ProcessSummary>,
    failed_holes: HashSet<GridCoord>,
    pending_holes: HoleSet,
    detect_buf: Vec<usize>,
    queue: EventQueue<Envelope>,
    link: NetLink,
}

impl EventScProtocol {
    /// Creates the protocol over a unique-predecessor ring (identical
    /// initialization to [`crate::ShortcutProtocol`]).
    pub(crate) fn new(
        mut net: GridNetwork,
        cycle: ScRing,
        config: SrConfig,
        spec: NetModelSpec,
    ) -> EventScProtocol {
        let mut rng = SimRng::seed_from_u64(config.seed);
        net.elect_all_heads(config.election, &mut rng);
        let trace = if config.trace {
            TraceLog::new()
        } else {
            TraceLog::disabled()
        };
        let cells = net.system().cell_count();
        let mut pending_holes = HoleSet::new(cells);
        pending_holes.assign_vacant(net.occupancy());
        net.clear_changed_cells();
        let link = spec.link(derive_stream_seed(config.seed, &[NET_STREAM_TAG]));
        EventScProtocol {
            net,
            cycle,
            config,
            rng,
            trace,
            metrics: Metrics::new(),
            energy: EnergyModel::default(),
            spare_dist: vec![u32::MAX; cells],
            active: Vec::new(),
            summaries: Vec::new(),
            failed_holes: HashSet::new(),
            pending_holes,
            detect_buf: Vec::new(),
            queue: EventQueue::new(),
            link,
        }
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        &self.net
    }

    /// Cost counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Per-process summaries.
    pub fn process_summaries(&self) -> &[ProcessSummary] {
        &self.summaries
    }

    /// The distributed-health ledger.
    pub fn health(&self) -> ProtocolHealth {
        self.link.health
    }

    /// Marks still-active processes failed; stranded couriers count as
    /// stalled repairs.
    pub fn fail_remaining(&mut self, round: u64) {
        for p in self.active.drain(..) {
            let s = &mut self.summaries[p.id.raw() as usize];
            s.status = ProcessStatus::Failed;
            s.ended_round = Some(round);
            self.metrics.processes_failed += 1;
            let reason = if p.baton == BatonState::Held {
                "no reachable spare (run ended)"
            } else {
                self.link.health.stalled_repairs += 1;
                "notification lost in the network (run ended)"
            };
            self.trace.record(
                round,
                TraceEvent::ProcessFailed {
                    process: p.id.raw(),
                    reason: reason.into(),
                },
            );
        }
    }

    fn endpoint(&self, cell: GridCoord) -> Endpoint {
        let idx = self
            .net
            .system()
            .index_of(cell)
            .expect("ring cells are in bounds");
        let c = self
            .net
            .system()
            .cell_center(cell)
            .expect("ring cells are in bounds");
        Endpoint {
            cell: idx as u64,
            pos: (c.x, c.y),
        }
    }

    fn spare_count(&self, cell: GridCoord) -> usize {
        self.net.spare_count(cell).unwrap_or(0)
    }

    fn idx(&self, cell: GridCoord) -> usize {
        self.net
            .system()
            .index_of(cell)
            .expect("cycle cells are in bounds")
    }

    /// One gossip sweep, each predecessor read riding a real beacon: a
    /// dropped beacon leaves the stale value in place for a round.
    fn gossip(&mut self) {
        let prev = self.spare_dist.clone();
        let sys = *self.net.system();
        self.metrics.cells_scanned += self.cycle.len() as u64;
        for coord in sys.iter_coords() {
            if !self.net.is_cell_enabled(coord).unwrap_or(false) {
                continue;
            }
            let i = self.idx(coord);
            if self.net.is_vacant(coord).unwrap_or(true) {
                self.spare_dist[i] = u32::MAX;
                continue;
            }
            if self.spare_count(coord) > 0 {
                self.spare_dist[i] = 0;
                continue;
            }
            let pred = self.cycle.predecessor(coord);
            if self.link.sense(self.endpoint(pred), self.endpoint(coord)) {
                self.spare_dist[i] = prev[self.idx(pred)].saturating_add(1);
            }
            // Dropped beacon: keep the stale entry (it refreshes next
            // round with probability 1 − loss).
        }
    }

    fn send_ack(&mut self, from: GridCoord, to: GridCoord, round: u64) {
        let fate = self.link.route(self.endpoint(from), self.endpoint(to));
        let deliver_at = match fate {
            Fate::Deliver(extra) => {
                let at = round + 1 + extra;
                self.queue.schedule(at, Envelope::MoveAck);
                Some(at)
            }
            Fate::Drop => None,
        };
        self.trace.record(
            round,
            TraceEvent::NetMessage {
                msg: "move_ack".into(),
                from: from.into(),
                to: to.into(),
                deliver_at,
            },
        );
    }

    /// Delivers due envelopes; courier batons become actionable.
    fn drain_due(&mut self, round: u64) {
        while let Some(sched) = self.queue.pop_due(round) {
            match sched.payload {
                Envelope::HoleAnnounce { process } => {
                    if let Some(i) = self.active.iter().position(|p| p.id.raw() == process) {
                        self.active[i].baton = BatonState::Held;
                    }
                }
                Envelope::MoveAck => {}
            }
        }
    }

    fn step_process(&mut self, i: usize, round: u64) -> bool {
        let p = self.active[i].clone();
        if p.baton != BatonState::Held {
            return false;
        }
        if self.net.is_vacant(p.courier).unwrap_or(true) {
            return false;
        }
        if self.spare_count(p.courier) > 0 {
            self.link.local(); // SpareRequest to the co-located spare
            let spare = self
                .net
                .spare_iter(p.courier)
                .expect("in bounds")
                .min()
                .expect("non-empty by spare_count");
            let dest = movement_target(self.net.system(), p.hole, &mut self.rng);
            let out = self
                .net
                .move_node(spare, dest)
                .expect("targets inside the area");
            self.net
                .set_head(p.hole, spare)
                .expect("spare just arrived");
            self.metrics.record_move(out.distance);
            self.metrics.energy += self.energy.movement(out.distance);
            self.trace.record(
                round,
                TraceEvent::NodeMoved {
                    process: Some(p.id.raw()),
                    node: spare,
                    from: out.from.into(),
                    to: out.to.into(),
                    distance: out.distance,
                },
            );
            let s = &mut self.summaries[p.id.raw() as usize];
            s.hops = p.forwarded as u64 + 1;
            s.moves += 1;
            s.distance += out.distance;
            s.status = ProcessStatus::Converged;
            s.ended_round = Some(round);
            self.metrics.processes_converged += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessConverged {
                    process: p.id.raw(),
                    moves: s.moves,
                },
            );
            self.active.remove(i);
            self.send_ack(p.hole, p.courier, round);
            return true;
        }
        if p.forwarded >= self.cycle.max_hops() {
            let s = &mut self.summaries[p.id.raw() as usize];
            s.status = ProcessStatus::Failed;
            s.ended_round = Some(round);
            self.metrics.processes_failed += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessFailed {
                    process: p.id.raw(),
                    reason: "notification circled the cycle without finding a spare".into(),
                },
            );
            self.failed_holes.insert(p.hole);
            self.active.remove(i);
            return true;
        }
        let next = self.cycle.predecessor(p.courier);
        let target = if next == p.hole {
            self.cycle.predecessor(next)
        } else {
            next
        };
        self.active[i].courier = target;
        self.active[i].forwarded += 1;
        self.metrics.record_message();
        self.metrics.energy += self.energy.message_cost;
        self.trace.record(
            round,
            TraceEvent::NotificationSent {
                process: p.id.raw(),
                from: p.courier.into(),
                to: target.into(),
            },
        );
        let fate = self
            .link
            .route(self.endpoint(p.courier), self.endpoint(target));
        let deliver_at = match fate {
            Fate::Deliver(extra) => {
                let at = round + 1 + extra;
                self.queue.schedule(
                    at,
                    Envelope::HoleAnnounce {
                        process: p.id.raw(),
                    },
                );
                Some(at)
            }
            Fate::Drop => None,
        };
        self.trace.record(
            round,
            TraceEvent::NetMessage {
                msg: "hole_announce".into(),
                from: p.courier.into(),
                to: target.into(),
                deliver_at,
            },
        );
        self.active[i].baton = match fate {
            Fate::Deliver(_) => BatonState::InFlight,
            Fate::Drop => {
                self.link.health.lost_cascades += 1;
                BatonState::Lost
            }
        };
        true
    }

    fn detect_and_initiate(&mut self, round: u64) -> DetectionOutcome {
        self.net.fold_changed_cells_into(&mut self.pending_holes);
        let mut buf = std::mem::take(&mut self.detect_buf);
        buf.clear();
        buf.extend(self.pending_holes.iter());
        let mut outcome = DetectionOutcome::default();
        for &idx in &buf {
            let g = self.net.system().coord_of(idx);
            if self.failed_holes.contains(&g) || self.active.iter().any(|p| p.hole == g) {
                continue;
            }
            let monitor = self.cycle.predecessor(g);
            if self.net.is_vacant(monitor).unwrap_or(true) {
                continue;
            }
            let probed = self.link.sense(self.endpoint(monitor), self.endpoint(g));
            self.trace.record(
                round,
                TraceEvent::NetMessage {
                    msg: "monitor_probe".into(),
                    from: monitor.into(),
                    to: g.into(),
                    deliver_at: probed.then_some(round),
                },
            );
            if !probed {
                outcome.pending += 1;
                continue;
            }
            let id = ProcessId::new(self.summaries.len() as u64);
            self.summaries.push(ProcessSummary {
                id,
                hole: g,
                initiator: monitor,
                initiated_round: round,
                ended_round: None,
                status: ProcessStatus::Active,
                hops: 0,
                moves: 0,
                distance: 0.0,
            });
            self.active.push(EventScProcess {
                id,
                hole: g,
                courier: monitor,
                forwarded: 0,
                baton: BatonState::Held,
            });
            self.metrics.processes_initiated += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessInitiated {
                    process: id.raw(),
                    hole: g.into(),
                    initiator: monitor.into(),
                },
            );
            outcome.initiated += 1;
        }
        self.detect_buf = buf;
        outcome
    }
}

impl RoundProtocol for EventScProtocol {
    fn execute_round(&mut self, round: u64) -> RoundOutcome {
        let mut progress = false;
        self.drain_due(round);
        let fault_events: Vec<_> = self.config.fault_plan.events_at(round).cloned().collect();
        for ev in fault_events {
            let killed = self.net.apply_fault(&ev, &mut self.rng);
            if !killed.is_empty() {
                self.failed_holes.clear();
                progress = true;
            }
        }
        progress |= self.net.repair_heads(self.config.election, &mut self.rng) > 0;
        self.gossip();
        let mut i = 0;
        while i < self.active.len() {
            let before = self.active.len();
            progress |= self.step_process(i, round);
            if self.active.len() == before {
                i += 1;
            }
        }
        progress |= self.detect_and_initiate(round).any_activity();
        progress |= self
            .config
            .fault_plan
            .last_round()
            .is_some_and(|r| r > round);
        progress |= !self.queue.is_empty();
        self.metrics.rounds = round + 1;
        if progress {
            RoundOutcome::Progress
        } else {
            RoundOutcome::Quiescent
        }
    }
}

/// Drives event-driven SR-SC to quiescence — the event-engine
/// counterpart of [`crate::ShortcutRecovery`].
#[derive(Debug, Clone)]
pub struct EventScRecovery {
    protocol: EventScProtocol,
    runner: RoundRunner,
}

impl EventScRecovery {
    /// Builds the shortcut event recovery over the network's ring.
    ///
    /// # Errors
    ///
    /// [`SrError::ShortcutNeedsCycle`] on dual-path (odd×odd) grids,
    /// [`SrError::Topology`] for regions with no structure, and
    /// [`SrError::Engine`] for invalid round caps.
    pub fn new(
        net: GridNetwork,
        config: SrConfig,
        spec: NetModelSpec,
    ) -> Result<EventScRecovery, SrError> {
        let topo = CycleTopology::build_masked(net.mask())?;
        EventScRecovery::with_topology(net, topo, config, spec)
    }

    /// Like [`EventScRecovery::new`] with a pre-built topology.
    ///
    /// # Errors
    ///
    /// [`SrError::ShortcutNeedsCycle`] when `topo` is the dual-path
    /// structure, and [`SrError::Engine`] for invalid round caps.
    pub fn with_topology(
        net: GridNetwork,
        topo: CycleTopology,
        config: SrConfig,
        spec: NetModelSpec,
    ) -> Result<EventScRecovery, SrError> {
        let ring = match topo {
            CycleTopology::Single(cycle) => ScRing::Cycle(cycle),
            CycleTopology::Masked(ring) => ScRing::Masked(ring),
            CycleTopology::Dual(_) => return Err(SrError::ShortcutNeedsCycle),
        };
        let runner = RoundRunner::with_quiescence(config.max_rounds, config.quiescent_rounds)?;
        Ok(EventScRecovery {
            protocol: EventScProtocol::new(net, ring, config, spec),
            runner,
        })
    }

    /// Runs to quiescence and reports, with the health ledger filled
    /// in.
    pub fn run(&mut self) -> SchemeReport {
        let initial_stats = self.protocol.network().stats();
        let run = self.runner.run(&mut self.protocol);
        self.protocol.fail_remaining(run.rounds);
        let final_stats = self.protocol.network().stats();
        SchemeReport {
            run,
            metrics: *self.protocol.metrics(),
            initial_stats,
            final_stats,
            fully_covered: final_stats.vacant == 0,
            processes: self.protocol.process_summaries().to_vec(),
            health: self.protocol.health(),
            details: SchemeDetails::none(),
        }
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        self.protocol.network()
    }

    /// Consumes the driver and releases the network.
    pub fn into_network(self) -> GridNetwork {
        self.protocol.net
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        self.protocol.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recovery, ShortcutRecovery};
    use wsn_grid::{deploy, GridSystem};

    fn network_with_holes(
        cols: u16,
        rows: u16,
        holes: &[GridCoord],
        per_cell: usize,
        seed: u64,
    ) -> GridNetwork {
        let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::with_holes(&sys, holes, per_cell, &mut rng);
        GridNetwork::new(sys, &pos)
    }

    /// One spare in a far corner so every repair is a long cascade —
    /// the regime where the network actually carries notifications.
    fn cascade_network(seed: u64) -> GridNetwork {
        let sys = GridSystem::new(8, 8, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let hole = GridCoord::new(4, 4);
        let mut pos = deploy::with_holes(&sys, &[hole], 1, &mut rng);
        pos.push(sys.cell_rect(GridCoord::new(0, 0)).unwrap().center());
        GridNetwork::new(sys, &pos)
    }

    #[test]
    fn ideal_sr_matches_classic_byte_for_byte() {
        for (holes, seed) in [
            (vec![GridCoord::new(2, 2)], 1u64),
            (
                vec![
                    GridCoord::new(0, 0),
                    GridCoord::new(3, 1),
                    GridCoord::new(1, 3),
                ],
                7,
            ),
        ] {
            let net = network_with_holes(6, 6, &holes, 2, seed);
            let cfg = SrConfig::default().with_seed(seed).with_trace(true);
            let classic = Recovery::new(net.clone(), cfg.clone()).unwrap().run();
            let mut event = EventSrRecovery::new(net, cfg, NetModelSpec::Ideal).unwrap();
            let report = event.run();
            assert_eq!(report, classic, "seed {seed}");
            assert_eq!(report.metrics, classic.metrics, "rounds included");
            assert!(report.health.is_clean());
            assert!(report.health.messages_sent > 0);
            event.network().debug_invariants();
        }
    }

    #[test]
    fn ideal_sr_matches_classic_under_faults_and_cascades() {
        use wsn_simcore::fault::{FaultEvent, FaultPlan};
        let mk = || {
            let net = cascade_network(3);
            let victims: Vec<NodeId> = net.members(GridCoord::new(6, 6)).unwrap().to_vec();
            let cfg = SrConfig::default()
                .with_seed(3)
                .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillNodes(victims)));
            (net, cfg)
        };
        let (net, cfg) = mk();
        let classic = Recovery::new(net, cfg).unwrap().run();
        let (net, cfg) = mk();
        let event = EventSrRecovery::new(net, cfg, NetModelSpec::Ideal)
            .unwrap()
            .run();
        assert_eq!(event, classic);
        assert_eq!(event.metrics, classic.metrics);
    }

    #[test]
    fn ideal_sr_matches_classic_on_dual_path_grids() {
        let net = network_with_holes(5, 5, &[GridCoord::new(2, 2), GridCoord::new(4, 0)], 2, 17);
        let cfg = SrConfig::default().with_seed(17);
        let classic = Recovery::new(net.clone(), cfg.clone()).unwrap().run();
        let event = EventSrRecovery::new(net, cfg, NetModelSpec::Ideal)
            .unwrap()
            .run();
        assert_eq!(event, classic);
        assert_eq!(event.metrics, classic.metrics);
    }

    #[test]
    fn ideal_sc_matches_classic_byte_for_byte() {
        let holes = [GridCoord::new(2, 2), GridCoord::new(6, 5)];
        let net = network_with_holes(8, 8, &holes, 2, 1);
        let cfg = SrConfig::default().with_seed(1);
        let classic = ShortcutRecovery::new(net.clone(), cfg.clone())
            .unwrap()
            .run();
        let event = EventScRecovery::new(net, cfg, NetModelSpec::Ideal)
            .unwrap()
            .run();
        assert_eq!(event, classic);
        assert_eq!(event.metrics, classic.metrics);
        assert!(event.health.is_clean());
    }

    #[test]
    fn fixed_latency_still_recovers() {
        let net = cascade_network(5);
        let spec = NetModelSpec::FixedLatency { ticks: 3 };
        let mut rec = EventSrRecovery::new(net, SrConfig::default().with_seed(5), spec).unwrap();
        let report = rec.run();
        assert!(report.fully_covered, "{report}");
        assert_eq!(report.health.messages_dropped, 0);
        rec.network().debug_invariants();
    }

    #[test]
    fn lossy_sr_reports_duplicates_and_lost_cascades() {
        let spec = NetModelSpec::Bernoulli {
            loss_ppm: 300_000,
            latency: 1,
        };
        let mut duplicates = 0u64;
        let mut lost = 0u64;
        for seed in 0..24 {
            let net = cascade_network(seed);
            let report = EventSrRecovery::new(net, SrConfig::default().with_seed(seed), spec)
                .unwrap()
                .run();
            duplicates += report.health.duplicate_initiations;
            lost += report.health.lost_cascades;
        }
        assert!(lost > 0, "30% loss must drop some cascade notification");
        assert!(
            duplicates > 0,
            "a lost baton must provoke a duplicate initiation"
        );
    }

    #[test]
    fn lossy_sc_strands_couriers_as_stalled_repairs() {
        let spec = NetModelSpec::Bernoulli {
            loss_ppm: 400_000,
            latency: 1,
        };
        let mut stalled = 0u64;
        for seed in 0..24 {
            let net = cascade_network(seed);
            let cfg = SrConfig::default().with_seed(seed).with_max_rounds(60);
            let report = EventScRecovery::new(net, cfg, spec).unwrap().run();
            stalled += report.health.stalled_repairs;
        }
        assert!(
            stalled > 0,
            "a dropped courier forward must strand the repair"
        );
    }

    #[test]
    fn total_loss_prevents_detection_entirely() {
        let spec = NetModelSpec::Bernoulli {
            loss_ppm: 1_000_000,
            latency: 1,
        };
        let net = network_with_holes(4, 4, &[GridCoord::new(2, 2)], 2, 9);
        let cfg = SrConfig::default().with_seed(9).with_max_rounds(40);
        let report = EventSrRecovery::new(net, cfg, spec).unwrap().run();
        assert!(!report.fully_covered);
        assert_eq!(report.metrics.processes_initiated, 0);
        assert!(report.health.messages_dropped > 0);
    }

    #[test]
    fn traces_carry_the_message_choreography() {
        let net = network_with_holes(4, 4, &[GridCoord::new(2, 2)], 2, 11);
        let cfg = SrConfig::default().with_seed(11).with_trace(true);
        let mut rec = EventSrRecovery::new(net, cfg, NetModelSpec::Ideal).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        let net_msgs = rec.trace().count_kind("net_message");
        assert!(net_msgs > 0, "probes and acks must be traced");
    }
}
