//! The round-based SR protocol: Algorithm 1 (single directed Hamilton
//! cycle) and Algorithm 2 (dual-path structure for odd×odd grids).
//!
//! # Round semantics (from the paper)
//!
//! The paper describes the scheme "in a round-based system". Every round:
//!
//! 1. scheduled faults fire (nodes are disabled; new holes may appear);
//! 2. cells that lost their head but still hold members re-elect locally
//!    ("the role of each head can be rotated within the grid" — no
//!    movement needed);
//! 3. each active replacement process performs **one** action:
//!    * if the asked cell has a spare, the spare moves into the process's
//!      vacant cell and becomes its head — the process **converges**;
//!    * otherwise the asked head sends a notification backward (one
//!      message) and moves itself into the vacant cell, leaving its own
//!      cell vacant for the cascade — the snake advances one hop;
//!    * if the asked cell is itself vacant (another hole), the process
//!      **waits**: the paper's step 3(b) ("wait until the corresponding
//!      head w receives this notification") cannot complete until that
//!      hole is repaired by its own process;
//!    * if the walk has gone all the way around without finding a spare,
//!      the process **fails**;
//! 4. every vacant cell not already owned by an active process is
//!    detected by its (unique) monitoring head, which initiates a new
//!    process — the paper's synchronization guarantees one and only one
//!    initiation per hole.
//!
//! Within a round, processes act in id order; this sequential resolution
//! is deterministic and only matters in the rare dual-path corner where
//! two processes share an asked cell (`C` watches both `A` and `B`).

use std::collections::HashSet;

use wsn_grid::{GridCoord, GridError, GridNetwork, HoleSet};
use wsn_hamilton::{BackwardStep, CycleTopology};
use wsn_simcore::{
    ChangeDrivenProtocol, EnergyModel, Metrics, NodeId, RoundOutcome, RoundProtocol, SimRng,
    TraceEvent, TraceLog,
};

use crate::movement::movement_target;
use crate::process::{ProcessId, ProcessStatus, ProcessSummary};
use crate::{SpareSelection, SrConfig};

/// Internal outcome of resolving the next backward hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackwardResolution {
    /// Relay and continue at this cell.
    Next(GridCoord),
    /// No occupied cell to relay through right now; retry next round.
    Wait,
    /// The walk covered the whole structure: no spare exists.
    Exhausted,
}

/// What one detection sweep (Algorithm 1 step 1) did, split into its two
/// distinct kinds of outcome.
///
/// # The `initiated` / `pending` split
///
/// In the paper's synchronous round model every monitoring head fires
/// every round, so a known hole always yields a started process and
/// `pending` stays zero. In **asynchronous mode**
/// (`SrConfig::activation_probability < 1`) a monitoring head may not be
/// scheduled in the round that its hole is swept; the initiation is then
/// *deferred*, not performed:
///
/// * `initiated` counts processes actually started this round — each one
///   also increments [`Metrics::processes_initiated`], so the metric
///   remains an honest count of real initiations;
/// * `pending` counts holes whose initiation was pushed to a later round
///   by async scheduling. No process exists for them yet, but the work
///   is still outstanding, so the round must **not** be treated as
///   quiescent (the deferred head will fire in a later round with
///   probability 1).
///
/// Earlier revisions folded the two together, over-reporting initiations
/// in async runs. The split keeps progress accounting honest while
/// [`DetectionOutcome::any_activity`] still keeps the round alive in
/// both cases.
///
/// ```
/// use wsn_coverage::DetectionOutcome;
///
/// // A synchronous sweep that started two processes:
/// let sync = DetectionOutcome { initiated: 2, pending: 0 };
/// // An async sweep whose only known hole was deferred this round:
/// let deferred = DetectionOutcome { initiated: 0, pending: 1 };
/// // Both keep the run going; only a fully empty sweep is inactive.
/// assert!(sync.any_activity());
/// assert!(deferred.any_activity());
/// assert!(!DetectionOutcome::default().any_activity());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionOutcome {
    /// Processes started this round (matches
    /// [`Metrics::processes_initiated`] increments).
    pub initiated: usize,
    /// Holes whose initiation was deferred by asynchronous-mode
    /// scheduling; still outstanding work.
    pub pending: usize,
}

impl DetectionOutcome {
    /// `true` when the sweep either started a process or deferred one —
    /// either way the round made or scheduled progress.
    pub fn any_activity(&self) -> bool {
        self.initiated > 0 || self.pending > 0
    }
}

#[derive(Debug, Clone)]
struct ActiveProcess {
    id: ProcessId,
    hole: GridCoord,
    /// The cell currently needing a node (the snake's head).
    current_vacant: GridCoord,
    /// The cell whose head must act next.
    asked: GridCoord,
}

/// The SR protocol over a network and cycle topology; drives itself one
/// round at a time via [`RoundProtocol`].
///
/// Most callers use [`crate::Recovery`], which wires this to the round
/// runner and produces a [`crate::SchemeReport`]; the protocol type is
/// public for custom drivers (e.g. lock-step comparisons against
/// baselines).
#[derive(Debug, Clone)]
pub struct SrProtocol {
    net: GridNetwork,
    topo: CycleTopology,
    config: SrConfig,
    rng: SimRng,
    trace: TraceLog,
    metrics: Metrics,
    energy: EnergyModel,
    active: Vec<ActiveProcess>,
    summaries: Vec<ProcessSummary>,
    /// Holes whose processes exhausted the whole structure without
    /// finding a spare. Spares never increase during a run, so retrying
    /// such a hole is futile (and would livelock the protocol in the
    /// zero-spare regime); the set is cleared when faults change the
    /// network, the only event that can make a retry meaningful.
    failed_holes: HashSet<GridCoord>,
    /// Current holes as dense row-major cell indices, maintained from the
    /// network's occupancy change journal — detection iterates this in
    /// O(holes) per round instead of scanning every cell. The word-level
    /// [`HoleSet`] iterates ascending, so sweeps visit holes exactly as
    /// the `BTreeSet` (and the full scan before it) did.
    pending_holes: HoleSet,
    /// Scratch buffer reused by detection sweeps (no per-round allocs).
    detect_buf: Vec<usize>,
}

impl SrProtocol {
    /// Creates the protocol, electing initial heads in every occupied
    /// cell.
    ///
    /// # Panics
    ///
    /// Panics if `topo` and `net` disagree on grid dimensions (they must
    /// be built from the same [`wsn_grid::GridSystem`]).
    pub fn new(mut net: GridNetwork, topo: CycleTopology, config: SrConfig) -> SrProtocol {
        assert_eq!(
            (topo.cols(), topo.rows()),
            (net.system().cols(), net.system().rows()),
            "topology and network dimensions must match"
        );
        let mut rng = SimRng::seed_from_u64(config.seed);
        net.elect_all_heads(config.election, &mut rng);
        let trace = if config.trace {
            TraceLog::new()
        } else {
            TraceLog::disabled()
        };
        // Seed the pending-hole set from the index once (a word-level
        // copy of the vacancy bitset); every later round folds in the
        // change journal instead of rescanning.
        let mut pending_holes = HoleSet::new(net.system().cell_count());
        pending_holes.assign_vacant(net.occupancy());
        net.clear_changed_cells();
        SrProtocol {
            net,
            topo,
            config,
            rng,
            trace,
            metrics: Metrics::new(),
            energy: EnergyModel::default(),
            active: Vec::new(),
            summaries: Vec::new(),
            failed_holes: HashSet::new(),
            pending_holes,
            detect_buf: Vec::new(),
        }
    }

    /// The network state (read access; advanced by rounds).
    pub fn network(&self) -> &GridNetwork {
        &self.net
    }

    /// Consumes the protocol and releases its network.
    pub fn into_network(self) -> GridNetwork {
        self.net
    }

    /// The cycle topology in use.
    pub fn topology(&self) -> &CycleTopology {
        &self.topo
    }

    /// Cost counters accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless `config.trace` was set).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Per-process summaries (all processes, any status).
    pub fn process_summaries(&self) -> &[ProcessSummary] {
        &self.summaries
    }

    /// Number of processes still active (cascading or waiting).
    pub fn active_processes(&self) -> usize {
        self.active.len()
    }

    /// Marks all still-active processes failed (called by the driver
    /// after quiescence/round-cap: anything still active is stuck behind
    /// an unfillable hole).
    pub fn fail_remaining(&mut self, round: u64) {
        for p in self.active.drain(..) {
            let s = &mut self.summaries[p.id.raw() as usize];
            s.status = ProcessStatus::Failed;
            s.ended_round = Some(round);
            self.metrics.processes_failed += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessFailed {
                    process: p.id.raw(),
                    reason: "no reachable spare (run ended)".into(),
                },
            );
        }
    }

    fn spare_count(&self, cell: GridCoord) -> usize {
        self.net.spare_count(cell).unwrap_or(0)
    }

    fn is_occupied(&self, cell: GridCoord) -> bool {
        !self.net.is_vacant(cell).unwrap_or(true)
    }

    fn select_spare(&mut self, cell: GridCoord, target: GridCoord) -> Option<NodeId> {
        if self.net.spare_count(cell).ok()? == 0 {
            return None;
        }
        let spares = self.net.spare_iter(cell).ok()?;
        let target_center = self
            .net
            .system()
            .cell_center(target)
            .expect("targets are in-bounds cells");
        match self.config.spare_selection {
            SpareSelection::FirstId => spares.min(),
            SpareSelection::ClosestToTarget => spares.min_by(|&a, &b| {
                let da = self
                    .net
                    .node(a)
                    .expect("spares are deployed")
                    .position()
                    .distance_squared(target_center);
                let db = self
                    .net
                    .node(b)
                    .expect("spares are deployed")
                    .position()
                    .distance_squared(target_center);
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            }),
            SpareSelection::MaxEnergy => spares.max_by(|&a, &b| {
                let ea = self.net.node(a).expect("deployed").battery().charge();
                let eb = self.net.node(b).expect("deployed").battery().charge();
                ea.partial_cmp(&eb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            }),
        }
    }

    /// Moves `node` into the central area of `target`, charges energy,
    /// and records metrics/trace. Returns the movement distance.
    fn execute_move(
        &mut self,
        process: ProcessId,
        node: NodeId,
        target: GridCoord,
        round: u64,
    ) -> Result<f64, GridError> {
        let dest = movement_target(self.net.system(), target, &mut self.rng);
        let out = self.net.move_node(node, dest)?;
        self.net.set_head(target, node)?;
        self.metrics.record_move(out.distance);
        let cost = self.energy.movement(out.distance);
        self.metrics.energy += cost;
        self.trace.record(
            round,
            TraceEvent::NodeMoved {
                process: Some(process.raw()),
                node,
                from: out.from.into(),
                to: out.to.into(),
                distance: out.distance,
            },
        );
        if self.config.battery_dynamics {
            let depleted = self.net.draw_battery(node, cost)?;
            if depleted {
                // The mover dies on arrival: its destination becomes a
                // fresh hole for detection to pick up. New energy can
                // arrive nowhere, so unfillable holes are re-blacklisted
                // through the normal failure path.
                self.net.disable_node(node)?;
                self.failed_holes.clear();
                self.trace.record(
                    round,
                    TraceEvent::NodeDisabled {
                        node,
                        cell: out.to.into(),
                    },
                );
            }
        }
        Ok(out.distance)
    }

    /// Resolves the next asked cell when `asked` must relay, applying the
    /// spare-aware fork/probe rules of Algorithm 2.
    fn resolve_backward(&self, asked: GridCoord, hole: GridCoord) -> BackwardResolution {
        let Some(step) = self.topo.backward_from(asked, hole) else {
            // The walk went all the way around the structure.
            return BackwardResolution::Exhausted;
        };
        match step {
            BackwardStep::One(p) => BackwardResolution::Next(p),
            BackwardStep::ForkAB { a, b } => {
                // "either A or B will be notified when any of them has at
                // least one spare node" — prefer A (case two's stated
                // preference); relay through an occupied special when
                // neither has spares; when both specials are themselves
                // holes, wait for their own processes to repair them.
                if self.spare_count(a) > 0 {
                    BackwardResolution::Next(a)
                } else if self.spare_count(b) > 0 {
                    BackwardResolution::Next(b)
                } else if self.is_occupied(a) {
                    BackwardResolution::Next(a)
                } else if self.is_occupied(b) {
                    BackwardResolution::Next(b)
                } else {
                    BackwardResolution::Wait
                }
            }
            BackwardStep::ProbeThen { probe, next } => {
                // "grid A with spare nodes is always preferred before the
                // replacement continues to stretch along path one."
                if self.spare_count(probe) > 0 {
                    BackwardResolution::Next(probe)
                } else {
                    BackwardResolution::Next(next)
                }
            }
        }
    }

    /// One action for one process. Returns `true` when the process made
    /// progress (moved or ended), `false` when it waited.
    fn step_process(&mut self, idx: usize, round: u64) -> bool {
        let p = self.active[idx].clone();
        // A vacant asked cell means the notification target does not
        // exist yet (paper step 3(b)); wait for that hole's own process.
        if !self.is_occupied(p.asked) {
            return false;
        }
        // Asynchronous mode: the head that should act may not be
        // scheduled this round. Deferred work is still pending progress
        // (unlike waiting, which resolves only through another process).
        if self.config.activation_probability < 1.0
            && !self.rng.bernoulli(self.config.activation_probability)
        {
            return true;
        }
        if let Some(spare) = self.select_spare(p.asked, p.current_vacant) {
            // Algorithm 1 step 2: a spare fills the vacancy; converge.
            let d = self
                .execute_move(p.id, spare, p.current_vacant, round)
                .expect("spare moves to an in-bounds adjacent cell");
            let s = &mut self.summaries[p.id.raw() as usize];
            s.hops += 1;
            s.moves += 1;
            s.distance += d;
            s.status = ProcessStatus::Converged;
            s.ended_round = Some(round);
            self.metrics.processes_converged += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessConverged {
                    process: p.id.raw(),
                    moves: s.moves,
                },
            );
            self.active.remove(idx);
            return true;
        }
        // Algorithm 1 step 3: no spare — notify backward, relay forward.
        match self.resolve_backward(p.asked, p.hole) {
            BackwardResolution::Wait => false,
            BackwardResolution::Next(next_asked) => {
                self.metrics.record_message();
                self.metrics.energy += self.energy.message_cost;
                self.trace.record(
                    round,
                    TraceEvent::NotificationSent {
                        process: p.id.raw(),
                        from: p.asked.into(),
                        to: next_asked.into(),
                    },
                );
                let head = self
                    .net
                    .head_of(p.asked)
                    .expect("asked cell is in bounds")
                    .expect("occupied cells are headed after repair");
                let d = self
                    .execute_move(p.id, head, p.current_vacant, round)
                    .expect("relay moves to an in-bounds adjacent cell");
                let s = &mut self.summaries[p.id.raw() as usize];
                s.hops += 1;
                s.moves += 1;
                s.distance += d;
                let ap = &mut self.active[idx];
                ap.current_vacant = p.asked;
                ap.asked = next_asked;
                true
            }
            BackwardResolution::Exhausted => {
                let s = &mut self.summaries[p.id.raw() as usize];
                s.status = ProcessStatus::Failed;
                s.ended_round = Some(round);
                self.metrics.processes_failed += 1;
                self.trace.record(
                    round,
                    TraceEvent::ProcessFailed {
                        process: p.id.raw(),
                        reason: "walk exhausted without finding a spare".into(),
                    },
                );
                // Spares never increase, so re-detecting this hole would
                // walk the whole structure again and fail again.
                self.failed_holes.insert(p.current_vacant);
                self.active.remove(idx);
                true
            }
        }
    }

    /// Detection + initiation (Algorithm 1 step 1): every vacant cell not
    /// already owned by an active process is detected by its unique
    /// monitoring head. Sweeps the journal-maintained pending-hole set
    /// (row-major, like the full scan it replaced) rather than the grid.
    fn detect_and_initiate(&mut self, round: u64) -> DetectionOutcome {
        self.net.fold_changed_cells_into(&mut self.pending_holes);
        let mut buf = std::mem::take(&mut self.detect_buf);
        buf.clear();
        buf.extend(self.pending_holes.iter());
        self.metrics.cells_scanned += buf.len() as u64;
        let mut outcome = DetectionOutcome::default();
        for &idx in &buf {
            let g = self.net.system().coord_of(idx);
            if self.failed_holes.contains(&g) {
                continue; // unfillable until the network changes
            }
            if self.active.iter().any(|p| p.current_vacant == g) {
                continue; // the cascade for this cell is already running
            }
            let monitor = self.topo.monitors(g);
            if !self.is_occupied(monitor) {
                // The monitor is itself a hole; detection resumes once it
                // is repaired (sequential recovery of hole runs).
                continue;
            }
            if self.config.activation_probability < 1.0
                && !self.rng.bernoulli(self.config.activation_probability)
            {
                // Asynchronous mode: this monitor was not scheduled this
                // round; the vacancy is deferred, not initiated.
                outcome.pending += 1;
                continue;
            }
            self.trace.record(
                round,
                TraceEvent::VacancyDetected {
                    cell: g.into(),
                    detector: monitor.into(),
                },
            );
            let id = ProcessId::new(self.summaries.len() as u64);
            self.summaries.push(ProcessSummary {
                id,
                hole: g,
                initiator: monitor,
                initiated_round: round,
                ended_round: None,
                status: ProcessStatus::Active,
                hops: 0,
                moves: 0,
                distance: 0.0,
            });
            self.active.push(ActiveProcess {
                id,
                hole: g,
                current_vacant: g,
                asked: monitor,
            });
            self.metrics.processes_initiated += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessInitiated {
                    process: id.raw(),
                    hole: g.into(),
                    initiator: monitor.into(),
                },
            );
            outcome.initiated += 1;
        }
        self.detect_buf = buf;
        outcome
    }

    /// Whether hole `idx` could be acted on if a round ran now: not
    /// blacklisted as unfillable, and monitored by an occupied cell.
    fn hole_is_actionable(&self, idx: usize) -> bool {
        let g = self.net.system().coord_of(idx);
        if self.failed_holes.contains(&g) {
            return false;
        }
        self.is_occupied(self.topo.monitors(g))
    }
}

impl ChangeDrivenProtocol for SrProtocol {
    fn has_pending_work(&self, round: u64) -> bool {
        if !self.active.is_empty() {
            return true;
        }
        if self
            .config
            .fault_plan
            .last_round()
            .is_some_and(|r| r >= round)
        {
            return true;
        }
        // Journal entries not yet folded into the pending set (e.g. holes
        // opened by idle-drain deaths after the last detection sweep).
        if self.net.changed_cells().iter().any(|&c| {
            self.net.occupancy().is_vacant(c as usize) && self.hole_is_actionable(c as usize)
        }) {
            return true;
        }
        self.pending_holes
            .iter()
            .any(|idx| self.net.occupancy().is_vacant(idx) && self.hole_is_actionable(idx))
    }
}

impl RoundProtocol for SrProtocol {
    fn execute_round(&mut self, round: u64) -> RoundOutcome {
        let mut progress = false;

        // 1. Scheduled faults fire at the start of the round.
        let fault_events: Vec<_> = self.config.fault_plan.events_at(round).cloned().collect();
        for ev in fault_events {
            let killed = self.net.apply_fault(&ev, &mut self.rng);
            if !killed.is_empty() {
                // The network changed; previously unfillable holes are
                // worth re-detecting (conservative but safe).
                self.failed_holes.clear();
            }
            for id in &killed {
                let cell = self
                    .net
                    .system()
                    .cell_of(self.net.node(*id).expect("deployed").position())
                    .expect("positions stay in the area");
                self.trace.record(
                    round,
                    TraceEvent::NodeDisabled {
                        node: *id,
                        cell: cell.into(),
                    },
                );
            }
            progress |= !killed.is_empty();
        }

        // 2. Local head repair (election within the cell; no movement),
        //    plus periodic rotation when configured (§2: "the role of
        //    each head can be rotated within the grid"). Neither counts
        //    as protocol progress: elections are free local actions, and
        //    treating rotation as progress would keep an otherwise idle
        //    network from ever reaching quiescence.
        if let Some(period) = self.config.head_rotation_period {
            if round > 0 && round.is_multiple_of(period) {
                self.net
                    .elect_all_heads(self.config.election, &mut self.rng);
            }
        }
        self.net.repair_heads(self.config.election, &mut self.rng);

        // 3. Process steps, in id order; iterate by position, careful
        //    with removals.
        let mut i = 0;
        while i < self.active.len() {
            let before = self.active.len();
            let acted = self.step_process(i, round);
            progress |= acted;
            if self.active.len() == before {
                i += 1; // process still active (moved or waiting)
            }
            // On removal the next process shifted into position i.
        }

        // 4. Detection and initiation for unowned holes. A deferred
        //    (async-mode) initiation is still scheduled work, so both
        //    halves of the outcome keep the round from going quiescent.
        progress |= self.detect_and_initiate(round).any_activity();

        // 5. Surveillance duty: heads burn idle energy every round (the
        //    GAF rationale for rotating the role). Only modeled when
        //    battery dynamics are on; a head that dies of idle drain is
        //    replaced locally next round, or leaves a hole if it was the
        //    cell's last node.
        if self.config.battery_dynamics {
            let idle = self.energy.idle_cost_per_round;
            let heads: Vec<NodeId> = self
                .net
                .system()
                .iter_coords()
                .filter_map(|c| self.net.head_of(c).expect("in bounds"))
                .collect();
            for head in heads {
                self.metrics.energy += idle;
                if self
                    .net
                    .draw_battery(head, idle)
                    .expect("heads are deployed")
                {
                    self.net.disable_node(head).expect("heads are deployed");
                    self.failed_holes.clear();
                    progress = true;
                }
            }
        }

        // The run must not go quiescent while scheduled faults are still
        // pending — an idle network can be re-holed at any planned round.
        progress |= self
            .config
            .fault_plan
            .last_round()
            .is_some_and(|r| r > round);

        self.metrics.rounds = round + 1;
        if progress {
            RoundOutcome::Progress
        } else {
            RoundOutcome::Quiescent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_grid::{deploy, GridSystem, HeadElection};
    use wsn_simcore::RoundRunner;

    fn run_protocol(mut p: SrProtocol) -> (SrProtocol, wsn_simcore::RunReport) {
        let runner = RoundRunner::new(10_000).unwrap();
        let report = runner.run(&mut p);
        let rounds = report.rounds;
        p.fail_remaining(rounds);
        (p, report)
    }

    fn protocol_with_holes(
        cols: u16,
        rows: u16,
        holes: &[GridCoord],
        per_cell: usize,
        seed: u64,
    ) -> SrProtocol {
        let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::with_holes(&sys, holes, per_cell, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let topo = CycleTopology::build(cols, rows).unwrap();
        SrProtocol::new(
            net,
            topo,
            SrConfig::default().with_seed(seed).with_trace(true),
        )
    }

    #[test]
    fn single_hole_with_spare_in_monitor_converges_in_one_move() {
        let hole = GridCoord::new(2, 2);
        let p = protocol_with_holes(4, 4, &[hole], 2, 1);
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.network().vacant_count(), 0);
        assert_eq!(p.metrics().processes_initiated, 1);
        assert_eq!(p.metrics().processes_converged, 1);
        assert_eq!(p.metrics().processes_failed, 0);
        // The monitor had a spare: exactly one movement (Theorem 2, i=1).
        assert_eq!(p.metrics().moves, 1);
        assert_eq!(p.process_summaries()[0].hops, 1);
        p.network().debug_invariants();
    }

    #[test]
    fn hole_with_no_nearby_spares_cascades() {
        // Only one cell holds a spare: every other occupied cell has
        // exactly its head. The cascade must walk until it drains that
        // single spare, making exactly `hops` moves.
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let hole = GridCoord::new(2, 2);
        let mut pos = deploy::with_holes(&sys, &[hole], 1, &mut rng);
        // Add one extra node (a spare) in cell (0, 0).
        let rect = sys.cell_rect(GridCoord::new(0, 0)).unwrap();
        pos.push(wsn_geometry::sample::point_in_rect(
            &rect,
            rng.uniform_f64(),
            rng.uniform_f64(),
        ));
        let net = GridNetwork::new(sys, &pos);
        assert_eq!(net.total_spares(), 1);
        let topo = CycleTopology::build(4, 4).unwrap();
        let p = SrProtocol::new(net, topo, SrConfig::default().with_seed(3));
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.network().vacant_count(), 0);
        assert_eq!(p.metrics().processes_converged, 1);
        let s = &p.process_summaries()[0];
        assert_eq!(s.moves, s.hops);
        assert!(s.hops >= 1);
        // All moves belong to the single process.
        assert_eq!(p.metrics().moves, s.moves);
        p.network().debug_invariants();
    }

    #[test]
    fn theorem_1_multiple_holes_all_filled() {
        let holes = [
            GridCoord::new(0, 0),
            GridCoord::new(3, 1),
            GridCoord::new(1, 3),
            GridCoord::new(2, 2),
        ];
        let p = protocol_with_holes(4, 4, &holes, 2, 7);
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.network().vacant_count(), 0, "all holes filled");
        assert_eq!(p.metrics().processes_failed, 0);
        assert_eq!(p.metrics().success_rate_percent(), 100.0);
        p.network().debug_invariants();
    }

    #[test]
    fn consecutive_vacant_run_fills_sequentially() {
        // A run of holes along the cycle: processes wait on each other
        // and fill one at a time.
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let topo = CycleTopology::build(4, 4).unwrap();
        let CycleTopology::Single(ref cyc) = topo else {
            panic!()
        };
        // Three consecutive cells on the cycle.
        let h0 = cyc.order()[5];
        let h1 = cyc.order()[6];
        let h2 = cyc.order()[7];
        let mut rng = SimRng::seed_from_u64(9);
        let pos = deploy::with_holes(&sys, &[h0, h1, h2], 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let p = SrProtocol::new(net, topo, SrConfig::default().with_seed(9));
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.network().vacant_count(), 0);
        assert_eq!(p.metrics().processes_failed, 0);
        p.network().debug_invariants();
    }

    #[test]
    fn no_spares_at_all_processes_fail() {
        let p = protocol_with_holes(4, 4, &[GridCoord::new(1, 1)], 1, 11);
        assert_eq!(p.network().total_spares(), 0);
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        // The hole moved around the ring but could never be filled;
        // exactly one process was initiated and it failed (the relay
        // chain exhausted L hops).
        assert!(p.metrics().processes_failed >= 1);
        assert_eq!(p.metrics().processes_converged, 0);
        assert_eq!(p.network().vacant_count(), 1);
        p.network().debug_invariants();
    }

    #[test]
    fn synchronization_exactly_one_process_per_hole() {
        // The headline SR property: a single hole triggers exactly one
        // process, never the multiple processes of AR.
        let hole = GridCoord::new(3, 3);
        let p = protocol_with_holes(6, 6, &[hole], 3, 13);
        let (p, _) = run_protocol(p);
        assert_eq!(p.metrics().processes_initiated, 1);
        assert_eq!(p.trace().count_kind("process_initiated"), 1);
    }

    #[test]
    fn dual_path_grid_recovers_all_cases() {
        // 5x5 dual-path: test holes at the special cells A, B, C, D and a
        // chain cell.
        let topo = CycleTopology::build(5, 5).unwrap();
        let CycleTopology::Dual(ref d) = topo else {
            panic!()
        };
        for (i, hole) in [d.a(), d.b(), d.c(), d.d(), d.chain()[10]]
            .into_iter()
            .enumerate()
        {
            let p = protocol_with_holes(5, 5, &[hole], 2, 17 + i as u64);
            let (p, report) = run_protocol(p);
            assert!(report.is_quiescent(), "hole {hole}");
            assert_eq!(p.network().vacant_count(), 0, "hole {hole} not filled");
            assert_eq!(p.metrics().processes_failed, 0, "hole {hole}");
            p.network().debug_invariants();
        }
    }

    #[test]
    fn dual_path_single_spare_in_a_is_found_for_hole_d() {
        // Corollary 1's hard case: hole at D, the only spare in A. The
        // case-two probe at C must find it.
        let sys = GridSystem::new(5, 5, 4.4721).unwrap();
        let topo = CycleTopology::build(5, 5).unwrap();
        let CycleTopology::Dual(ref dd) = topo else {
            panic!()
        };
        let (a, d) = (dd.a(), dd.d());
        let mut rng = SimRng::seed_from_u64(23);
        let mut pos = deploy::with_holes(&sys, &[d], 1, &mut rng);
        let rect = sys.cell_rect(a).unwrap();
        pos.push(wsn_geometry::sample::point_in_rect(
            &rect,
            rng.uniform_f64(),
            rng.uniform_f64(),
        ));
        let net = GridNetwork::new(sys, &pos);
        assert_eq!(net.total_spares(), 1);
        let p = SrProtocol::new(net, topo, SrConfig::default().with_seed(23));
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.network().vacant_count(), 0);
        assert_eq!(p.metrics().processes_failed, 0);
        p.network().debug_invariants();
    }

    #[test]
    fn mid_run_fault_triggers_new_recovery() {
        use wsn_simcore::fault::{FaultEvent, FaultPlan};
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(29);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let topo = CycleTopology::build(4, 4).unwrap();
        // Kill both nodes of cell (2, 2) at round 3.
        let victims: Vec<NodeId> = net.members(GridCoord::new(2, 2)).unwrap().to_vec();
        let cfg = SrConfig::default()
            .with_seed(29)
            .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillNodes(victims)));
        let p = SrProtocol::new(net, topo, cfg);
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.network().vacant_count(), 0);
        assert_eq!(p.metrics().processes_converged, 1);
        p.network().debug_invariants();
    }

    #[test]
    fn head_loss_with_spare_present_repairs_locally_without_movement() {
        // Killing a head (but not the whole cell) must not trigger any
        // replacement process — the spare is promoted in place.
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(31);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        let head = net.head_of(GridCoord::new(1, 1)).unwrap().unwrap();
        net.disable_node(head).unwrap();
        let topo = CycleTopology::build(4, 4).unwrap();
        let p = SrProtocol::new(net, topo, SrConfig::default().with_seed(31));
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.metrics().processes_initiated, 0);
        assert_eq!(p.metrics().moves, 0);
        assert_eq!(p.network().vacant_count(), 0);
    }

    #[test]
    fn moves_match_hops_on_converged_processes() {
        // Theorem 2 accounting: a converged process with i hops makes
        // exactly i movements.
        let holes = [GridCoord::new(0, 3), GridCoord::new(5, 0)];
        let p = protocol_with_holes(6, 6, &[holes[0], holes[1]], 2, 37);
        let (p, _) = run_protocol(p);
        for s in p.process_summaries() {
            assert_eq!(s.status, ProcessStatus::Converged);
            assert_eq!(s.moves, s.hops);
        }
    }

    #[test]
    fn asynchronous_mode_still_recovers() {
        // The paper: "All the schemes presented in this paper can be
        // extended easily to an asynchronous system." With heads firing
        // only 40% of rounds, recovery takes longer but converges to the
        // same coverage with the same per-process move counts.
        let holes = [GridCoord::new(1, 2), GridCoord::new(3, 0)];
        let sync = {
            let p = protocol_with_holes(5, 4, &holes, 2, 41);
            run_protocol(p).0
        };
        let async_run = {
            let sys = GridSystem::new(5, 4, 4.4721).unwrap();
            let mut rng = SimRng::seed_from_u64(41);
            let pos = deploy::with_holes(&sys, &holes, 2, &mut rng);
            let net = GridNetwork::new(sys, &pos);
            let topo = CycleTopology::build(5, 4).unwrap();
            let cfg = SrConfig::default()
                .with_seed(41)
                .with_activation_probability(0.4);
            let p = SrProtocol::new(net, topo, cfg);
            run_protocol(p).0
        };
        assert_eq!(async_run.network().vacant_count(), 0);
        assert_eq!(async_run.metrics().processes_failed, 0);
        assert_eq!(
            async_run.metrics().processes_converged,
            sync.metrics().processes_converged
        );
        assert!(
            async_run.metrics().rounds >= sync.metrics().rounds,
            "async {} rounds vs sync {}",
            async_run.metrics().rounds,
            sync.metrics().rounds
        );
    }

    #[test]
    fn head_rotation_spreads_duty_without_movement() {
        // MaxEnergy rotation on an intact network: heads change, nothing
        // moves, and the run still terminates.
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(53);
        let pos = deploy::per_cell_exact(&sys, 3, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let topo = CycleTopology::build(4, 4).unwrap();
        let cfg = SrConfig::default()
            .with_seed(53)
            .with_election(HeadElection::MaxEnergy)
            .with_head_rotation(2);
        let p = SrProtocol::new(net, topo, cfg);
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.metrics().moves, 0);
        assert_eq!(p.metrics().processes_initiated, 0);
        p.network().debug_invariants();
    }

    #[test]
    fn rotation_with_max_energy_balances_idle_drain() {
        // Two nodes per cell, battery dynamics on, long fault horizon to
        // keep the run alive: with MaxEnergy rotation the idle duty
        // alternates between the two members; without it the same node
        // burns every round.
        use wsn_simcore::fault::{FaultEvent, FaultPlan};
        let run = |rotate: bool| {
            let sys = GridSystem::new(2, 2, 4.4721).unwrap();
            let mut rng = SimRng::seed_from_u64(61);
            let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
            let net = GridNetwork::new(sys, &pos);
            let topo = CycleTopology::build(2, 2).unwrap();
            // An empty kill at round 200 keeps the run alive 200 rounds.
            let plan = FaultPlan::new().at(200, FaultEvent::KillNodes(vec![]));
            let mut cfg = SrConfig::default()
                .with_seed(61)
                .with_battery_dynamics(true)
                .with_election(HeadElection::MaxEnergy)
                .with_fault_plan(plan);
            if rotate {
                cfg = cfg.with_head_rotation(1);
            }
            let p = SrProtocol::new(net, topo, cfg);
            let (p, _) = run_protocol(p);
            // Spread of battery charge within cell (0,0).
            let members = p.network().members(GridCoord::new(0, 0)).unwrap();
            let charges: Vec<f64> = members
                .iter()
                .map(|&id| p.network().node(id).unwrap().battery().charge())
                .collect();
            let max = charges.iter().cloned().fold(f64::MIN, f64::max);
            let min = charges.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let spread_rotating = run(true);
        let spread_static = run(false);
        assert!(
            spread_rotating < spread_static,
            "rotation must balance drain: {spread_rotating} vs {spread_static}"
        );
    }

    #[test]
    fn head_rotation_during_recovery_is_harmless() {
        let holes = [GridCoord::new(1, 1), GridCoord::new(2, 3)];
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(59);
        let pos = deploy::with_holes(&sys, &holes, 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let topo = CycleTopology::build(4, 4).unwrap();
        let cfg = SrConfig::default().with_seed(59).with_head_rotation(1);
        let p = SrProtocol::new(net, topo, cfg);
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        assert_eq!(p.network().vacant_count(), 0);
        assert_eq!(p.metrics().processes_failed, 0);
    }

    #[test]
    fn activation_probability_is_clamped() {
        let cfg = SrConfig::default().with_activation_probability(7.0);
        assert_eq!(cfg.activation_probability, 1.0);
        let cfg = SrConfig::default().with_activation_probability(f64::NAN);
        assert_eq!(cfg.activation_probability, 1.0);
        let cfg = SrConfig::default().with_activation_probability(0.0);
        assert!(cfg.activation_probability > 0.0);
    }

    #[test]
    fn battery_dynamics_can_kill_the_mover_and_recovery_continues() {
        use wsn_simcore::Battery;
        // Hand-build a network where the monitor's spare has a battery
        // too small to survive its own move: the spare dies on arrival,
        // re-opening the hole; the next process must drain a different
        // cell.
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(43);
        let hole = GridCoord::new(2, 2);
        let pos = deploy::with_holes(&sys, &[hole], 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        // Weaken every node of the monitoring cell: any move kills them.
        let topo = CycleTopology::build(4, 4).unwrap();
        let monitor = match &topo {
            CycleTopology::Single(c) => c.predecessor(hole),
            _ => unreachable!(),
        };
        let weak: Vec<NodeId> = net.members(monitor).unwrap().to_vec();
        for id in &weak {
            // 0.01 J: far below one hop's ~4.5 J cost.
            let pos = net.node(*id).unwrap().position();
            let _ = pos;
            net.draw_battery(*id, f64::MAX).unwrap();
            let _ = Battery::new(0.01);
        }
        let cfg = SrConfig::default()
            .with_seed(43)
            .with_battery_dynamics(true);
        let p = SrProtocol::new(net, topo, cfg);
        let (p, report) = run_protocol(p);
        assert!(report.is_quiescent());
        // Every mover from the weakened cell died; recovery must have
        // routed around them (or reported failure if spares ran out) —
        // either way invariants hold and the run terminated.
        p.network().debug_invariants();
        let depleted_deaths = p.trace().count_kind("node_disabled");
        let _ = depleted_deaths;
    }

    #[test]
    fn battery_dynamics_drains_movers() {
        let holes = [GridCoord::new(2, 1)];
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(47);
        let pos = deploy::with_holes(&sys, &holes, 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let topo = CycleTopology::build(4, 4).unwrap();
        let cfg = SrConfig::default()
            .with_seed(47)
            .with_battery_dynamics(true);
        let p = SrProtocol::new(net, topo, cfg);
        let (p, _) = run_protocol(p);
        assert_eq!(p.network().vacant_count(), 0);
        // Exactly one node paid a movement's worth of energy (heads also
        // pay idle duty, but that is orders of magnitude smaller).
        let movers = p
            .network()
            .nodes()
            .iter()
            .filter(|n| n.battery().capacity() - n.battery().charge() > 1.0)
            .count();
        assert_eq!(movers, 1);
        // And heads paid their (tiny) idle duty.
        let idlers = p
            .network()
            .nodes()
            .iter()
            .filter(|n| n.battery().fraction() < 1.0)
            .count();
        assert!(idlers > 1);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_topology_panics() {
        let sys = GridSystem::new(4, 4, 1.0).unwrap();
        let net = GridNetwork::new(sys, &[]);
        let topo = CycleTopology::build(6, 6).unwrap();
        let _ = SrProtocol::new(net, topo, SrConfig::default());
    }
}
