//! **SR**: synchronized snake-like hole recovery for wireless sensor
//! networks — the primary contribution of *Mobility Control for Complete
//! Coverage in Wireless Sensor Networks* (Jiang, Wu, Kline, Krantz;
//! ICDCS 2008 Workshops), reproduced in full.
//!
//! # What SR does
//!
//! A WSN over a virtual grid ([`wsn_grid`]) develops *holes* — cells with
//! no enabled sensor — as nodes fail or are attacked. SR threads all
//! cells on a directed Hamilton cycle ([`wsn_hamilton`]); each cell's
//! head monitors the successor cell, so a vacant cell is detected by
//! **exactly one** head, which initiates **exactly one** snake-like
//! cascading replacement (Algorithm 1):
//!
//! 1. if the initiating head's cell has a spare node, the spare moves
//!    into the hole and becomes its head — done;
//! 2. otherwise the head notifies its own predecessor and moves itself
//!    into the hole, leaving its cell vacant for the cascade to continue.
//!
//! On odd×odd grids (no Hamilton cycle exists) the dual-path structure
//! and Algorithm 2's case analysis apply. Either way, any vacant cell is
//! filled whenever at least one spare exists anywhere in the network
//! (Theorem 1 / Corollary 1), and the expected number of movements per
//! replacement is given by Theorem 2 (module [`analysis`]).
//!
//! # Quickstart
//!
//! ```
//! use wsn_coverage::{Recovery, SrConfig};
//! use wsn_grid::{deploy, GridNetwork, GridSystem};
//! use wsn_simcore::SimRng;
//!
//! // The paper's experimental setup, scaled down: R = 10 m cells.
//! let system = GridSystem::for_comm_range(8, 8, 10.0)?;
//! let mut rng = SimRng::seed_from_u64(7);
//! let positions = deploy::uniform(&system, 150, &mut rng);
//! let net = GridNetwork::new(system, &positions);
//!
//! let mut recovery = Recovery::new(net, SrConfig::default().with_seed(7))?;
//! let report = recovery.run();
//! assert!(report.fully_covered || report.final_stats.spares == 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod analysis;
mod config;
pub mod movement;
mod process;
mod protocol;
mod recovery;
pub mod scheme;
pub mod shortcut;

pub use actor::{EventScRecovery, EventSrProtocol, EventSrRecovery};
pub use config::{SpareSelection, SrConfig};
pub use process::{ProcessId, ProcessStatus, ProcessSummary};
pub use protocol::{DetectionOutcome, SrProtocol};
pub use recovery::{Recovery, SrError};
pub use scheme::{
    DriveMode, NetworkSpec, RegistryError, ReplacementScheme, SchemeDetails, SchemeId,
    SchemeIdError, SchemeRegistry, SchemeReport, Sr, SrBuilder, SrSc, Unsupported,
};
pub use shortcut::{ShortcutProtocol, ShortcutRecovery};
