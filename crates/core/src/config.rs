//! Configuration for SR recovery runs.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_grid::HeadElection;
use wsn_simcore::fault::FaultPlan;

/// Strategy for choosing which spare of a cell moves into the hole.
///
/// The paper only says "find a spare node in the grid of u"; the choice
/// does not affect the number of movements, only (slightly) the moving
/// distance — an ablation bench quantifies it (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SpareSelection {
    /// The spare closest to the target cell's center: minimizes this
    /// hop's distance. The default.
    #[default]
    ClosestToTarget,
    /// The lowest node id (fully deterministic, position-independent).
    FirstId,
    /// The spare with the most battery left (spreads movement wear).
    MaxEnergy,
}

impl fmt::Display for SpareSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpareSelection::ClosestToTarget => "closest-to-target",
            SpareSelection::FirstId => "first-id",
            SpareSelection::MaxEnergy => "max-energy",
        };
        f.write_str(s)
    }
}

/// Configuration for an SR recovery run (builder style).
///
/// ```
/// use wsn_coverage::{SpareSelection, SrConfig};
/// use wsn_grid::HeadElection;
///
/// let cfg = SrConfig::default()
///     .with_seed(42)
///     .with_election(HeadElection::MaxEnergy)
///     .with_spare_selection(SpareSelection::FirstId)
///     .with_trace(true);
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SrConfig {
    /// Seed for the run's deterministic RNG.
    pub seed: u64,
    /// Head-election policy (initial election and local repairs).
    pub election: HeadElection,
    /// Spare-selection policy within a cell.
    pub spare_selection: SpareSelection,
    /// Round cap for the run (default 100 000 — far above any converging
    /// scenario in the paper's parameter ranges).
    pub max_rounds: u64,
    /// Consecutive idle rounds required to declare quiescence.
    pub quiescent_rounds: u64,
    /// Record a full trace (disable for large Monte-Carlo sweeps).
    pub trace: bool,
    /// Faults injected during the run (beyond the holes present at
    /// start). Rounds index from the start of the run.
    pub fault_plan: FaultPlan,
    /// Probability that a head scheduled to act this round actually
    /// fires (1.0 = the paper's synchronous round model). Values below 1
    /// model the asynchronous system the paper says the schemes "can be
    /// extended easily to": actions interleave in random order over
    /// time, at the cost of more rounds. Clamped to `(0, 1]`.
    pub activation_probability: f64,
    /// Charge each movement and message against the acting node's
    /// battery; a node whose battery empties is disabled, which can
    /// itself open new holes mid-recovery (the battery-depletion attack
    /// surface of the paper's reference \[8\]).
    pub battery_dynamics: bool,
    /// Re-elect every occupied cell's head each time this many rounds
    /// pass (the paper's §2: "the role of each head can be rotated
    /// within the grid" — with [`HeadElection::MaxEnergy`] this spreads
    /// surveillance duty over the cell's members). `None` disables
    /// rotation.
    pub head_rotation_period: Option<u64>,
}

impl Default for SrConfig {
    fn default() -> Self {
        SrConfig {
            seed: 0,
            election: HeadElection::FirstId,
            spare_selection: SpareSelection::ClosestToTarget,
            max_rounds: 100_000,
            quiescent_rounds: 2,
            trace: false,
            fault_plan: FaultPlan::new(),
            activation_probability: 1.0,
            battery_dynamics: false,
            head_rotation_period: None,
        }
    }
}

impl SrConfig {
    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the head-election policy.
    #[must_use]
    pub fn with_election(mut self, election: HeadElection) -> Self {
        self.election = election;
        self
    }

    /// Sets the spare-selection policy.
    #[must_use]
    pub fn with_spare_selection(mut self, selection: SpareSelection) -> Self {
        self.spare_selection = selection;
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables or disables tracing.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the in-run fault plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the per-round activation probability (asynchronous mode when
    /// below 1; values outside `(0, 1]` are clamped).
    #[must_use]
    pub fn with_activation_probability(mut self, p: f64) -> Self {
        self.activation_probability = if p.is_finite() {
            p.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            1.0
        };
        self
    }

    /// Enables battery dynamics (movement/messages drain the acting
    /// node; depleted nodes are disabled).
    #[must_use]
    pub fn with_battery_dynamics(mut self, enabled: bool) -> Self {
        self.battery_dynamics = enabled;
        self
    }

    /// Enables periodic head rotation every `period` rounds (`period` of
    /// zero disables rotation, like `None`).
    #[must_use]
    pub fn with_head_rotation(mut self, period: u64) -> Self {
        self.head_rotation_period = (period > 0).then_some(period);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_simcore::fault::FaultEvent;

    #[test]
    fn builder_chains() {
        let cfg = SrConfig::default()
            .with_seed(9)
            .with_election(HeadElection::Random)
            .with_spare_selection(SpareSelection::MaxEnergy)
            .with_max_rounds(50)
            .with_trace(true)
            .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillRandomEnabled { count: 2 }));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.election, HeadElection::Random);
        assert_eq!(cfg.spare_selection, SpareSelection::MaxEnergy);
        assert_eq!(cfg.max_rounds, 50);
        assert!(cfg.trace);
        assert_eq!(cfg.fault_plan.events().len(), 1);
    }

    #[test]
    fn defaults_match_paper_methodology() {
        let cfg = SrConfig::default();
        assert_eq!(cfg.election, HeadElection::FirstId);
        assert_eq!(cfg.spare_selection, SpareSelection::ClosestToTarget);
        assert!(cfg.max_rounds >= 10_000);
        assert!(!cfg.trace);
        assert!(cfg.fault_plan.is_empty());
    }

    #[test]
    fn selection_display() {
        for s in [
            SpareSelection::ClosestToTarget,
            SpareSelection::FirstId,
            SpareSelection::MaxEnergy,
        ] {
            assert!(!s.to_string().is_empty());
        }
    }
}
