//! The paper's analytical cost model: Theorem 2 and Corollaries 1–2.
//!
//! **Theorem 2.** For a converged replacement process with `N` spare
//! nodes uniformly distributed over a deduced Hamilton path of `L` hops,
//! the expected number of node movements is `M = Σ_{i=1..L} i·P(i)`,
//! where `P(i)` (Equation 1 of the paper) is the probability that the
//! nearest spare, walking backward from the hole, is `i` hops away:
//!
//! ```text
//! P(i) = 1 − ((L−1)/L)^N                                  i = 1
//! P(i) = Π_{k=1..i−1} ((L−k)/(L−k+1))^N                   i = L
//! P(i) = (1 − ((L−i)/(L−i+1))^N) · Π_{k=1..i−1} (…)^N     otherwise
//! ```
//!
//! The product telescopes — `Π_{k=1..i−1} ((L−k)/(L−k+1))^N =
//! ((L−i+1)/L)^N` — giving the closed forms implemented here:
//!
//! ```text
//! P(i) = ((L−i+1)/L)^N − ((L−i)/L)^N
//! M    = Σ_{j=1..L} (j/L)^N
//! ```
//!
//! Both forms are implemented and property-tested equal; the closed form
//! is used by the figure generators because it is O(L) with no
//! cancellation issues.
//!
//! The paper's spot check: a 4×5 grid (`L = 19`) with `N = 12` spares
//! gives `M ≈ 2.0139` ("the replacement takes 2.0139 movements on
//! average") — pinned by a unit test below.
//!
//! **Corollary 2.** On an odd×odd grid with the dual-path cycle,
//! `M ≅ M(m·n − 2)`.
//!
//! **Distance estimate** (paper §4): each hop covers on average
//! `1.08·r` meters, so a replacement moves `1.08·r·M` meters in total
//! (Figures 5 and 8's analytical series).

use wsn_geometry::CellGeometry;

/// Probability that a converged replacement needs exactly `i` movements,
/// in the paper's product form (Equation 1).
///
/// # Panics
///
/// Panics when `l < 2`, `n == 0`, or `i` is outside `1..=l` — the model
/// is undefined there (with no spares nothing converges).
pub fn p_moves_paper_form(l: usize, n: usize, i: usize) -> f64 {
    validate(l, n);
    assert!((1..=l).contains(&i), "i must be in 1..=L, got {i}");
    let lf = l as f64;
    let nf = n as i32;
    let prefix: f64 = (1..i)
        .map(|k| ((lf - k as f64) / (lf - k as f64 + 1.0)).powi(nf))
        .product();
    if i == 1 {
        1.0 - ((lf - 1.0) / lf).powi(nf)
    } else if i == l {
        prefix
    } else {
        (1.0 - ((lf - i as f64) / (lf - i as f64 + 1.0)).powi(nf)) * prefix
    }
}

/// Probability that a converged replacement needs exactly `i` movements
/// (telescoped closed form, equal to [`p_moves_paper_form`]).
///
/// # Panics
///
/// As for [`p_moves_paper_form`].
pub fn p_moves(l: usize, n: usize, i: usize) -> f64 {
    validate(l, n);
    assert!((1..=l).contains(&i), "i must be in 1..=L, got {i}");
    let lf = l as f64;
    let nf = n as i32;
    ((lf - i as f64 + 1.0) / lf).powi(nf) - ((lf - i as f64) / lf).powi(nf)
}

/// Theorem 2's expected number of node movements per replacement,
/// `M(L, N) = Σ_{i=1..L} i·P(i) = Σ_{j=1..L} (j/L)^N`.
///
/// # Panics
///
/// Panics when `l < 2` or `n == 0`.
pub fn expected_moves(l: usize, n: usize) -> f64 {
    validate(l, n);
    let lf = l as f64;
    let nf = n as i32;
    // Sum ascending so the tiny terms accumulate first (better rounding).
    (1..=l).map(|j| (j as f64 / lf).powi(nf)).sum()
}

/// Corollary 2: expected movements on an odd×odd `cols × rows` grid with
/// the dual-path Hamilton cycle, `M ≅ M(m·n − 2)`.
///
/// # Panics
///
/// Panics when either side is even, the grid is smaller than 3×3, or
/// `n == 0`.
pub fn expected_moves_dual(cols: u16, rows: u16, n: usize) -> f64 {
    assert!(
        cols % 2 == 1 && rows % 2 == 1,
        "corollary 2 applies to odd-by-odd grids, got {cols}x{rows}"
    );
    assert!(cols >= 3 && rows >= 3, "grid too small: {cols}x{rows}");
    expected_moves(cols as usize * rows as usize - 2, n)
}

/// The paper's estimate of the total moving distance of a replacement:
/// `1.08 · r · M(L, N)` meters (§4; Figures 5 and 8).
///
/// # Panics
///
/// Panics when `l < 2`, `n == 0`, or `r` is not positive and finite.
pub fn expected_distance(l: usize, n: usize, r: f64) -> f64 {
    assert!(
        r.is_finite() && r > 0.0,
        "cell side must be positive, got {r}"
    );
    CellGeometry::AVG_MOVE_FACTOR * r * expected_moves(l, n)
}

/// Variance of the movement count of a converged replacement,
/// `Var = Σ i²·P(i) − M²` — how spread out the cascades are around
/// Theorem 2's mean (the paper plots only the mean; the variance
/// quantifies the tail the `figpmf` extension figure shows).
///
/// # Panics
///
/// Panics when `l < 2` or `n == 0`.
pub fn moves_variance(l: usize, n: usize) -> f64 {
    validate(l, n);
    let m = expected_moves(l, n);
    let second_moment: f64 = (1..=l).map(|i| (i * i) as f64 * p_moves(l, n, i)).sum();
    (second_moment - m * m).max(0.0)
}

/// Standard deviation of the movement count (square root of
/// [`moves_variance`]).
///
/// # Panics
///
/// Panics when `l < 2` or `n == 0`.
pub fn moves_std_dev(l: usize, n: usize) -> f64 {
    moves_variance(l, n).sqrt()
}

/// The probability that a replacement converges within `budget` moves,
/// `Σ_{i=1..budget} P(i)` (clamped at `budget ≥ L` to 1) — the quantity
/// behind the paper's "in most cases, the replacement process will
/// converge within 2 movements".
///
/// # Panics
///
/// Panics when `l < 2`, `n == 0`, or `budget == 0`.
pub fn p_converges_within(l: usize, n: usize, budget: usize) -> f64 {
    validate(l, n);
    assert!(budget >= 1, "budget must be at least one movement");
    let b = budget.min(l);
    // Telescoping: sum_{i=1..b} P(i) = 1 - ((L-b)/L)^N.
    1.0 - ((l - b) as f64 / l as f64).powi(n as i32)
}

/// The smallest spare count `N` for which `M(L, N) <= target_moves`.
/// Used to reproduce the paper's density observation: "when the density
/// of enabled nodes is kept above 1.68 per grid, the number of node
/// movements can still be controlled to 2 in the 16×16 grid system".
///
/// # Panics
///
/// Panics when `l < 2` or `target_moves < 1` (a converged replacement
/// makes at least one movement).
pub fn spares_needed_for_moves(l: usize, target_moves: f64) -> usize {
    assert!(l >= 2, "L must be at least 2, got {l}");
    assert!(
        target_moves >= 1.0,
        "a converged replacement makes at least 1 movement"
    );
    // M(L, N) is strictly decreasing in N toward 1; binary search.
    let mut lo = 1usize;
    let mut hi = 1usize;
    while expected_moves(l, hi) > target_moves {
        hi *= 2;
        if hi > 1 << 30 {
            break;
        }
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if expected_moves(l, mid) <= target_moves {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

fn validate(l: usize, n: usize) {
    assert!(l >= 2, "L must be at least 2, got {l}");
    assert!(n >= 1, "theorem 2 requires at least one spare (N >= 1)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spot_value_4x5_n12() {
        // "when 12 spare nodes exist in the 4x5 grid system, the
        // replacement takes 2.0139 movements on average" (L = 19).
        let m = expected_moves(19, 12);
        assert!((m - 2.0139).abs() < 1.5e-3, "M(19,12) = {m}");
    }

    #[test]
    fn paper_density_claim_16x16() {
        // "when the density of enabled nodes is kept above 1.68 per grid,
        // the number of node movements can still be controlled to 2 in
        // the 16x16 grid system": density 1.68 over 256 cells means
        // N = (1.68 - 1) * 256 = 174 spares.
        let m = expected_moves(255, 174);
        assert!(m <= 2.05, "M(255,174) = {m}");
        let needed = spares_needed_for_moves(255, 2.0);
        let density = 1.0 + needed as f64 / 256.0;
        assert!(
            (density - 1.68).abs() < 0.05,
            "paper's 1.68 density, got {density} (N = {needed})"
        );
    }

    #[test]
    fn product_and_closed_forms_agree() {
        for &(l, n) in &[
            (19usize, 1usize),
            (19, 12),
            (19, 140),
            (255, 10),
            (255, 300),
        ] {
            for i in 1..=l {
                let a = p_moves_paper_form(l, n, i);
                let b = p_moves(l, n, i);
                assert!(
                    (a - b).abs() < 1e-10,
                    "P({i}) mismatch at L={l}, N={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn p_is_a_distribution() {
        for &(l, n) in &[(19usize, 5usize), (255, 55), (23, 1)] {
            let total: f64 = (1..=l).map(|i| p_moves(l, n, i)).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "sum P = {total} at L={l}, N={n}"
            );
            assert!((1..=l).all(|i| p_moves(l, n, i) >= -1e-15));
        }
    }

    #[test]
    fn expected_moves_equals_sum_i_p_i() {
        for &(l, n) in &[(19usize, 12usize), (255, 100)] {
            let direct: f64 = (1..=l).map(|i| i as f64 * p_moves(l, n, i)).sum();
            let closed = expected_moves(l, n);
            assert!((direct - closed).abs() < 1e-8, "{direct} vs {closed}");
        }
    }

    #[test]
    fn m_is_monotone_decreasing_in_n() {
        let mut prev = f64::INFINITY;
        for n in [1usize, 2, 5, 10, 50, 100, 500, 1000] {
            let m = expected_moves(255, n);
            assert!(m < prev, "M not decreasing at N = {n}");
            assert!(m >= 1.0);
            prev = m;
        }
    }

    #[test]
    fn m_limits() {
        // N = 1: the single spare is uniform over L cells; expected walk
        // is (L+1)/2.
        let l = 101usize;
        let m = expected_moves(l, 1);
        assert!((m - (l as f64 + 1.0) / 2.0).abs() < 1e-9, "M(L,1) = {m}");
        // Huge N: converges to 1 move.
        assert!((expected_moves(255, 100_000) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dual_corollary_uses_mn_minus_2() {
        let m_dual = expected_moves_dual(5, 5, 10);
        let m_ref = expected_moves(23, 10);
        assert_eq!(m_dual, m_ref);
    }

    #[test]
    fn distance_is_avg_factor_times_moves() {
        // Figure 5 setting: r = 10.
        let d = expected_distance(19, 12, 10.0);
        let m = expected_moves(19, 12);
        assert!((d - 1.08 * 10.0 * m).abs() < 1e-9);
    }

    #[test]
    fn variance_is_consistent_with_pmf() {
        for &(l, n) in &[(19usize, 12usize), (255, 100)] {
            let m = expected_moves(l, n);
            let var = moves_variance(l, n);
            let direct: f64 = (1..=l)
                .map(|i| (i as f64 - m).powi(2) * p_moves(l, n, i))
                .sum();
            assert!((var - direct).abs() < 1e-6, "{var} vs {direct}");
            assert!(moves_std_dev(l, n) >= 0.0);
        }
        // Huge N: nearly deterministic single move, variance ~ 0.
        assert!(moves_variance(255, 100_000) < 1e-3);
    }

    #[test]
    fn convergence_budget_probability() {
        // The paper's "in most cases ... within 2 movements" at N = 12 on
        // the 4x5 grid.
        let p2 = p_converges_within(19, 12, 2);
        assert!(p2 > 0.7, "P(<=2 moves) = {p2}");
        // Equals the PMF prefix sum.
        let direct: f64 = (1..=2).map(|i| p_moves(19, 12, i)).sum();
        assert!((p2 - direct).abs() < 1e-12);
        // Budget >= L is certain convergence.
        assert!((p_converges_within(19, 12, 19) - 1.0).abs() < 1e-12);
        assert!((p_converges_within(19, 12, 100) - 1.0).abs() < 1e-12);
        // Monotone in budget and in N.
        assert!(p_converges_within(19, 12, 1) < p2);
        assert!(p_converges_within(19, 40, 2) > p2);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_panics() {
        p_converges_within(19, 12, 0);
    }

    #[test]
    fn spares_needed_is_threshold() {
        let n = spares_needed_for_moves(255, 2.0);
        assert!(expected_moves(255, n) <= 2.0);
        assert!(expected_moves(255, n - 1) > 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one spare")]
    fn zero_spares_panics() {
        expected_moves(19, 0);
    }

    #[test]
    #[should_panic(expected = "L must be at least 2")]
    fn tiny_l_panics() {
        expected_moves(1, 5);
    }

    #[test]
    #[should_panic(expected = "odd-by-odd")]
    fn dual_rejects_even_side() {
        expected_moves_dual(4, 5, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn distance_rejects_bad_r() {
        expected_distance(19, 12, 0.0);
    }

    #[test]
    #[should_panic(expected = "i must be in")]
    fn p_rejects_out_of_range_i() {
        p_moves(19, 12, 0);
    }
}
