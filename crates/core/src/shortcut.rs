//! **SR-SC** — the short-cut extension the paper leaves as future work.
//!
//! The paper's §5: "A short-cut along the Hamilton cycle can reduce the
//! length of the path for replacement process to approach a spare node.
//! The construction of such a short-cut will be our future work … the
//! cost of SR will be reduced greatly in the cases when N < 55."
//!
//! This module implements one concrete such construction, staying within
//! the paper's 1-hop communication model:
//!
//! * Every head maintains a **spare-distance gradient** along the
//!   directed Hamilton cycle: `dist(u) = 0` if `u`'s cell holds a spare,
//!   else `1 + dist(pred(u))`, refreshed by one gossip exchange with the
//!   predecessor per round (the same link the replacement notifications
//!   already use). The field converges in at most `L` rounds and is
//!   maintained incrementally afterwards.
//! * When a hole is detected, the notification is forwarded backward
//!   hop-by-hop exactly `dist` hops — no head needs to *move* to keep the
//!   search going — and the spare found there travels **straight across
//!   the grid** to the hole: one movement per replacement instead of
//!   Theorem 2's `M(L, N)`, and a chord-length distance instead of a
//!   path-length one.
//!
//! Trade-off (quantified by `bench_ablation` and the `figsc` extension
//! figure): SR-SC pays `dist` extra notification messages and the gossip
//! overhead, in exchange for collapsing the movement count; at low `N` —
//! exactly where the paper predicts — the savings are largest. The
//! single long straight move also concentrates battery drain on one node
//! instead of spreading it over the cascade, which is why SR proper
//! remains the better choice for energy-balanced deployments.
//!
//! The construction is defined on structures with a unique predecessor
//! per cell: single Hamilton cycles and the masked virtual ring of
//! irregular regions ([`wsn_hamilton::MaskedCycle`]) — so SR-SC runs
//! unchanged on masked grids. Odd×odd (dual-path) grids are rejected
//! with [`SrError::ShortcutNeedsCycle`]: extending the gradient over the
//! A/B fork is possible but the paper's future-work remark targets the
//! plain cycle.

use wsn_grid::{GridCoord, GridNetwork, NetworkStats};
use wsn_hamilton::{CycleTopology, HamiltonCycle, MaskedCycle};
use wsn_simcore::{
    EnergyModel, Metrics, RoundOutcome, RoundProtocol, RoundRunner, RunReport, SimRng, TraceEvent,
    TraceLog,
};

use crate::movement::movement_target;
use crate::process::{ProcessId, ProcessStatus, ProcessSummary};
use crate::recovery::SrError;
use crate::scheme::{SchemeDetails, SchemeReport};
use crate::SrConfig;

/// The backward ring SR-SC forwards notifications along: either the
/// paper's single Hamilton cycle or the masked virtual ring. Both give
/// every on-ring cell a unique predecessor, which is all the gradient
/// and the courier walk need.
#[derive(Debug, Clone)]
pub(crate) enum ScRing {
    Cycle(HamiltonCycle),
    Masked(MaskedCycle),
}

impl ScRing {
    pub(crate) fn predecessor(&self, cell: GridCoord) -> GridCoord {
        match self {
            ScRing::Cycle(c) => c.predecessor(cell),
            ScRing::Masked(m) => m.predecessor(cell),
        }
    }

    /// Cells on the ring (all cells for a cycle, enabled cells for a
    /// masked ring).
    pub(crate) fn len(&self) -> usize {
        match self {
            ScRing::Cycle(c) => c.len(),
            ScRing::Masked(m) => m.len(),
        }
    }

    /// The walk bound `L` (Theorem 2's parameter on the structure).
    pub(crate) fn max_hops(&self) -> usize {
        match self {
            ScRing::Cycle(c) => c.deduced_path_hops(),
            ScRing::Masked(m) => m.max_walk_hops(),
        }
    }
}

#[derive(Debug, Clone)]
struct ScProcess {
    id: ProcessId,
    hole: GridCoord,
    /// Where the notification currently sits.
    courier: GridCoord,
    /// Hops forwarded so far.
    forwarded: usize,
}

/// The SR-SC protocol (see the module docs).
#[derive(Debug, Clone)]
pub struct ShortcutProtocol {
    net: GridNetwork,
    cycle: ScRing,
    config: SrConfig,
    rng: SimRng,
    trace: TraceLog,
    metrics: Metrics,
    energy: EnergyModel,
    /// Gossip field: backward hops to the nearest spare, `u32::MAX` when
    /// unknown/unreachable. Indexed by dense cell index.
    spare_dist: Vec<u32>,
    active: Vec<ScProcess>,
    summaries: Vec<ProcessSummary>,
    failed_holes: std::collections::HashSet<GridCoord>,
    /// Current holes (dense indices, row-major), maintained from the
    /// occupancy change journal — same word-level O(changed) detection
    /// as SR ([`wsn_grid::HoleSet`]).
    pending_holes: wsn_grid::HoleSet,
    /// Scratch buffer reused by detection sweeps.
    detect_buf: Vec<usize>,
}

impl ShortcutProtocol {
    /// Creates the protocol over a unique-predecessor ring.
    pub(crate) fn new(mut net: GridNetwork, cycle: ScRing, config: SrConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(config.seed);
        net.elect_all_heads(config.election, &mut rng);
        let trace = if config.trace {
            TraceLog::new()
        } else {
            TraceLog::disabled()
        };
        let cells = net.system().cell_count();
        let mut pending_holes = wsn_grid::HoleSet::new(cells);
        pending_holes.assign_vacant(net.occupancy());
        net.clear_changed_cells();
        ShortcutProtocol {
            net,
            cycle,
            config,
            rng,
            trace,
            metrics: Metrics::new(),
            energy: EnergyModel::default(),
            spare_dist: vec![u32::MAX; cells],
            active: Vec::new(),
            summaries: Vec::new(),
            failed_holes: std::collections::HashSet::new(),
            pending_holes,
            detect_buf: Vec::new(),
        }
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        &self.net
    }

    /// Cost counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Per-process summaries.
    pub fn process_summaries(&self) -> &[ProcessSummary] {
        &self.summaries
    }

    /// Marks still-active processes failed (driver calls after the run).
    pub fn fail_remaining(&mut self, round: u64) {
        for p in self.active.drain(..) {
            let s = &mut self.summaries[p.id.raw() as usize];
            s.status = ProcessStatus::Failed;
            s.ended_round = Some(round);
            self.metrics.processes_failed += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessFailed {
                    process: p.id.raw(),
                    reason: "no reachable spare (run ended)".into(),
                },
            );
        }
    }

    fn spare_count(&self, cell: GridCoord) -> usize {
        self.net.spare_count(cell).unwrap_or(0)
    }

    fn idx(&self, cell: GridCoord) -> usize {
        self.net
            .system()
            .index_of(cell)
            .expect("cycle cells are in bounds")
    }

    /// One synchronous gossip sweep: every head reads its predecessor's
    /// distance from the previous round. (Computed from a frozen copy,
    /// exactly as a real per-round beacon exchange would.)
    fn gossip(&mut self) {
        let prev = self.spare_dist.clone();
        let sys = *self.net.system();
        // The gradient refresh is SR-SC's inherent full sweep (one beacon
        // read per on-ring cell per round); bill it so the scan-cost
        // comparison against SR's O(changed) detection stays honest.
        self.metrics.cells_scanned += self.cycle.len() as u64;
        for coord in sys.iter_coords() {
            // Disabled (off-ring) cells have no head and no gradient.
            if !self.net.is_cell_enabled(coord).unwrap_or(false) {
                continue;
            }
            let i = self.idx(coord);
            if self.net.is_vacant(coord).unwrap_or(true) {
                self.spare_dist[i] = u32::MAX;
                continue;
            }
            self.spare_dist[i] = if self.spare_count(coord) > 0 {
                0
            } else {
                let p = prev[self.idx(self.cycle.predecessor(coord))];
                p.saturating_add(1)
            };
        }
        // Gossip beacons ride the existing per-round head exchange; the
        // paper does not bill monitoring beacons, so neither do we.
    }

    fn step_process(&mut self, i: usize, round: u64) -> bool {
        let p = self.active[i].clone();
        if self.net.is_vacant(p.courier).unwrap_or(true) {
            // Courier cell lost its head (hole run); wait for its repair.
            return false;
        }
        if self.spare_count(p.courier) > 0 {
            // Dispatch: the spare flies straight to the hole.
            let spare = self
                .net
                .spare_iter(p.courier)
                .expect("in bounds")
                .min()
                .expect("non-empty by spare_count");
            let dest = movement_target(self.net.system(), p.hole, &mut self.rng);
            let out = self
                .net
                .move_node(spare, dest)
                .expect("targets inside the area");
            self.net
                .set_head(p.hole, spare)
                .expect("spare just arrived");
            self.metrics.record_move(out.distance);
            self.metrics.energy += self.energy.movement(out.distance);
            self.trace.record(
                round,
                TraceEvent::NodeMoved {
                    process: Some(p.id.raw()),
                    node: spare,
                    from: out.from.into(),
                    to: out.to.into(),
                    distance: out.distance,
                },
            );
            let s = &mut self.summaries[p.id.raw() as usize];
            s.hops = p.forwarded as u64 + 1;
            s.moves += 1;
            s.distance += out.distance;
            s.status = ProcessStatus::Converged;
            s.ended_round = Some(round);
            self.metrics.processes_converged += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessConverged {
                    process: p.id.raw(),
                    moves: s.moves,
                },
            );
            self.active.remove(i);
            return true;
        }
        if p.forwarded >= self.cycle.max_hops() {
            let s = &mut self.summaries[p.id.raw() as usize];
            s.status = ProcessStatus::Failed;
            s.ended_round = Some(round);
            self.metrics.processes_failed += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessFailed {
                    process: p.id.raw(),
                    reason: "notification circled the cycle without finding a spare".into(),
                },
            );
            self.failed_holes.insert(p.hole);
            self.active.remove(i);
            return true;
        }
        // Forward the notification one hop backward. The gradient makes
        // this walk beeline to the nearest spare; when the field is still
        // cold (MAX) the walk degrades gracefully to SR's blind backward
        // search — minus the node movements.
        let next = self.cycle.predecessor(p.courier);
        if next == p.hole {
            // Skip over the hole itself (its cell cannot relay or hold
            // the spare we are looking for).
            let beyond = self.cycle.predecessor(next);
            self.active[i].courier = beyond;
        } else {
            self.active[i].courier = next;
        }
        self.active[i].forwarded += 1;
        self.metrics.record_message();
        self.metrics.energy += self.energy.message_cost;
        self.trace.record(
            round,
            TraceEvent::NotificationSent {
                process: p.id.raw(),
                from: p.courier.into(),
                to: self.active[i].courier.into(),
            },
        );
        true
    }

    fn detect_and_initiate(&mut self, round: u64) -> usize {
        self.net.fold_changed_cells_into(&mut self.pending_holes);
        let mut buf = std::mem::take(&mut self.detect_buf);
        buf.clear();
        buf.extend(self.pending_holes.iter());
        let mut initiated = 0;
        for &idx in &buf {
            let g = self.net.system().coord_of(idx);
            if self.failed_holes.contains(&g) || self.active.iter().any(|p| p.hole == g) {
                continue;
            }
            let monitor = self.cycle.predecessor(g);
            if self.net.is_vacant(monitor).unwrap_or(true) {
                continue;
            }
            let id = ProcessId::new(self.summaries.len() as u64);
            self.summaries.push(ProcessSummary {
                id,
                hole: g,
                initiator: monitor,
                initiated_round: round,
                ended_round: None,
                status: ProcessStatus::Active,
                hops: 0,
                moves: 0,
                distance: 0.0,
            });
            self.active.push(ScProcess {
                id,
                hole: g,
                courier: monitor,
                forwarded: 0,
            });
            self.metrics.processes_initiated += 1;
            self.trace.record(
                round,
                TraceEvent::ProcessInitiated {
                    process: id.raw(),
                    hole: g.into(),
                    initiator: monitor.into(),
                },
            );
            initiated += 1;
        }
        self.detect_buf = buf;
        initiated
    }
}

impl RoundProtocol for ShortcutProtocol {
    fn execute_round(&mut self, round: u64) -> RoundOutcome {
        let mut progress = false;
        let fault_events: Vec<_> = self.config.fault_plan.events_at(round).cloned().collect();
        for ev in fault_events {
            let killed = self.net.apply_fault(&ev, &mut self.rng);
            if !killed.is_empty() {
                self.failed_holes.clear();
                progress = true;
            }
        }
        progress |= self.net.repair_heads(self.config.election, &mut self.rng) > 0;
        self.gossip();
        let mut i = 0;
        while i < self.active.len() {
            let before = self.active.len();
            progress |= self.step_process(i, round);
            if self.active.len() == before {
                i += 1;
            }
        }
        progress |= self.detect_and_initiate(round) > 0;
        progress |= self
            .config
            .fault_plan
            .last_round()
            .is_some_and(|r| r > round);
        self.metrics.rounds = round + 1;
        if progress {
            RoundOutcome::Progress
        } else {
            RoundOutcome::Quiescent
        }
    }
}

/// Drives SR-SC recovery to quiescence (the shortcut counterpart of
/// [`crate::Recovery`]).
#[derive(Debug, Clone)]
pub struct ShortcutRecovery {
    protocol: ShortcutProtocol,
    runner: RoundRunner,
}

impl ShortcutRecovery {
    /// Builds the shortcut recovery. Full rectangular networks use the
    /// paper's Hamilton cycle; networks over an irregular
    /// [`wsn_grid::RegionMask`] use the masked virtual ring, so SR-SC
    /// runs unchanged on masked grids.
    ///
    /// # Errors
    ///
    /// [`SrError::ShortcutNeedsCycle`] on full odd×odd grids (only the
    /// dual-path structure exists there), [`SrError::Topology`] for
    /// regions with no structure at all, and [`SrError::Engine`] for
    /// invalid round caps.
    pub fn new(net: GridNetwork, config: SrConfig) -> Result<ShortcutRecovery, SrError> {
        let topo = CycleTopology::build_masked(net.mask())?;
        ShortcutRecovery::with_topology(net, topo, config)
    }

    /// Like [`ShortcutRecovery::new`] with a pre-built topology (see
    /// [`crate::Recovery::with_topology`]); `topo` must have been built
    /// for `net`'s region.
    ///
    /// # Errors
    ///
    /// [`SrError::ShortcutNeedsCycle`] when `topo` is the dual-path
    /// structure, and [`SrError::Engine`] for invalid round caps.
    pub fn with_topology(
        net: GridNetwork,
        topo: CycleTopology,
        config: SrConfig,
    ) -> Result<ShortcutRecovery, SrError> {
        let ring = match topo {
            CycleTopology::Single(cycle) => ScRing::Cycle(cycle),
            CycleTopology::Masked(ring) => ScRing::Masked(ring),
            CycleTopology::Dual(_) => return Err(SrError::ShortcutNeedsCycle),
        };
        let runner = RoundRunner::with_quiescence(config.max_rounds, config.quiescent_rounds)?;
        Ok(ShortcutRecovery {
            protocol: ShortcutProtocol::new(net, ring, config),
            runner,
        })
    }

    /// Runs to quiescence and reports.
    pub fn run(&mut self) -> SchemeReport {
        let initial_stats: NetworkStats = self.protocol.network().stats();
        let run: RunReport = self.runner.run(&mut self.protocol);
        self.protocol.fail_remaining(run.rounds);
        let final_stats = self.protocol.network().stats();
        SchemeReport {
            run,
            metrics: *self.protocol.metrics(),
            initial_stats,
            final_stats,
            fully_covered: final_stats.vacant == 0,
            processes: self.protocol.process_summaries().to_vec(),
            health: wsn_simcore::ProtocolHealth::default(),
            details: SchemeDetails::none(),
        }
    }

    /// The network state.
    pub fn network(&self) -> &GridNetwork {
        self.protocol.network()
    }

    /// Consumes the driver and releases the network (see
    /// [`crate::Recovery::into_network`]).
    pub fn into_network(self) -> GridNetwork {
        self.protocol.net
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        self.protocol.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recovery;
    use wsn_grid::{deploy, GridSystem};

    fn network_with_holes(holes: &[GridCoord], per_cell: usize, seed: u64) -> GridNetwork {
        let sys = GridSystem::new(8, 8, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::with_holes(&sys, holes, per_cell, &mut rng);
        GridNetwork::new(sys, &pos)
    }

    #[test]
    fn one_move_per_replacement() {
        let holes = [GridCoord::new(2, 2), GridCoord::new(6, 5)];
        let net = network_with_holes(&holes, 2, 1);
        let mut rec = ShortcutRecovery::new(net, SrConfig::default().with_seed(1)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        assert_eq!(report.metrics.processes_converged, 2);
        // The headline property: exactly one movement per hole.
        assert_eq!(report.metrics.moves, 2);
        rec.network().debug_invariants();
    }

    #[test]
    fn beats_sr_on_moves_at_low_spare_density() {
        // One spare far away: SR cascades ~L hops; SR-SC moves once.
        let sys = GridSystem::new(8, 8, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let hole = GridCoord::new(4, 4);
        let mut pos = deploy::with_holes(&sys, &[hole], 1, &mut rng);
        pos.push(sys.cell_rect(GridCoord::new(0, 0)).unwrap().center());
        let net = GridNetwork::new(sys, &pos);

        let sr = Recovery::new(net.clone(), SrConfig::default().with_seed(2))
            .unwrap()
            .run();
        let sc = ShortcutRecovery::new(net, SrConfig::default().with_seed(2))
            .unwrap()
            .run();
        assert!(sr.fully_covered && sc.fully_covered);
        assert!(sr.metrics.moves > 1);
        assert_eq!(sc.metrics.moves, 1);
        assert!(
            sc.metrics.distance < sr.metrics.distance,
            "straight chord {} must beat the cascade path {}",
            sc.metrics.distance,
            sr.metrics.distance
        );
    }

    #[test]
    fn no_spares_fails_cleanly() {
        let net = network_with_holes(&[GridCoord::new(3, 3)], 1, 3);
        assert_eq!(net.total_spares(), 0);
        let mut rec = ShortcutRecovery::new(net, SrConfig::default().with_seed(3)).unwrap();
        let report = rec.run();
        assert!(report.run.is_quiescent());
        assert!(!report.fully_covered);
        assert!(report.metrics.processes_failed >= 1);
        assert_eq!(report.metrics.moves, 0);
    }

    #[test]
    fn masked_region_dispatches_one_move_per_hole() {
        use wsn_grid::{deploy, RegionMask};
        let sys = GridSystem::new(10, 10, 4.4721).unwrap();
        let mask = RegionMask::annulus(10, 10);
        let mut rng = SimRng::seed_from_u64(13);
        let enabled: Vec<GridCoord> = mask.iter_enabled().collect();
        let holes = [enabled[5], enabled[enabled.len() / 2]];
        let pos = deploy::with_holes_masked(&sys, &mask, &holes, 2, &mut rng);
        let net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
        let mut rec = ShortcutRecovery::new(net, SrConfig::default().with_seed(13)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered, "{report}");
        // The SR-SC headline survives masking: one movement per hole.
        assert_eq!(report.metrics.moves, 2);
        assert_eq!(report.metrics.processes_failed, 0);
        rec.network().debug_invariants();
        for node in rec.network().nodes() {
            if node.status().is_enabled() {
                assert!(mask.is_enabled(sys.cell_of(node.position()).unwrap()));
            }
        }
    }

    #[test]
    fn dual_path_grids_are_rejected() {
        let sys = GridSystem::new(5, 5, 4.4721).unwrap();
        let net = GridNetwork::new(sys, &[]);
        assert!(matches!(
            ShortcutRecovery::new(net, SrConfig::default()),
            Err(SrError::ShortcutNeedsCycle)
        ));
    }

    #[test]
    fn hole_runs_recover_sequentially() {
        let holes = [
            GridCoord::new(1, 1),
            GridCoord::new(1, 2),
            GridCoord::new(2, 1),
            GridCoord::new(2, 2),
        ];
        let net = network_with_holes(&holes, 2, 5);
        let mut rec = ShortcutRecovery::new(net, SrConfig::default().with_seed(5)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered, "{report}");
        assert_eq!(report.metrics.moves, 4);
        assert_eq!(report.metrics.processes_failed, 0);
        rec.network().debug_invariants();
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let net = network_with_holes(&[GridCoord::new(5, 2)], 2, 7);
            ShortcutRecovery::new(net, SrConfig::default().with_seed(seed))
                .unwrap()
                .run()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn gradient_guides_messages_not_random_walks() {
        // With a warm gradient the notification path length equals the
        // true backward distance to the nearest spare.
        let sys = GridSystem::new(6, 6, 4.4721).unwrap();
        let cycle = match CycleTopology::build(6, 6).unwrap() {
            CycleTopology::Single(c) => c,
            _ => unreachable!(),
        };
        let mut rng = SimRng::seed_from_u64(11);
        let hole = cycle.order()[12];
        // Spare 5 backward hops from the hole's monitor.
        let spare_cell = cycle.order()[12 - 6];
        let mut pos = deploy::with_holes(&sys, &[hole], 1, &mut rng);
        pos.push(sys.cell_rect(spare_cell).unwrap().center());
        let net = GridNetwork::new(sys, &pos);
        let mut rec = ShortcutRecovery::new(net, SrConfig::default().with_seed(11)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        assert_eq!(report.processes.len(), 1);
        assert_eq!(report.processes[0].hops, 6, "monitor + 5 forwards");
        assert_eq!(report.metrics.messages, 5);
    }
}
