//! High-level recovery driver: wires the protocol to the round runner and
//! produces a structured report.

use std::fmt;

use wsn_grid::GridNetwork;
use wsn_hamilton::{CycleTopology, HamiltonError};
use wsn_simcore::{EngineError, RoundRunner, TraceLog};

use crate::scheme::{SchemeDetails, SchemeReport};
use crate::{SrConfig, SrProtocol};

/// Errors surfaced when assembling a recovery run.
#[derive(Debug, Clone, PartialEq)]
pub enum SrError {
    /// No Hamilton structure exists for the network's grid dimensions.
    Topology(HamiltonError),
    /// Invalid runner configuration (zero round cap or quiescence
    /// window).
    Engine(EngineError),
    /// The SR-SC shortcut variant requires a single Hamilton cycle
    /// (even-sided grid); see [`crate::shortcut`].
    ShortcutNeedsCycle,
}

impl fmt::Display for SrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrError::Topology(e) => write!(f, "topology: {e}"),
            SrError::Engine(e) => write!(f, "engine: {e}"),
            SrError::ShortcutNeedsCycle => write!(
                f,
                "the shortcut variant requires a single hamilton cycle (one even grid side)"
            ),
        }
    }
}

impl std::error::Error for SrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SrError::Topology(e) => Some(e),
            SrError::Engine(e) => Some(e),
            SrError::ShortcutNeedsCycle => None,
        }
    }
}

impl From<HamiltonError> for SrError {
    fn from(e: HamiltonError) -> Self {
        SrError::Topology(e)
    }
}

impl From<EngineError> for SrError {
    fn from(e: EngineError) -> Self {
        SrError::Engine(e)
    }
}

/// Drives SR recovery on a network to quiescence.
///
/// ```
/// use wsn_coverage::{Recovery, SrConfig};
/// use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem};
/// use wsn_simcore::SimRng;
///
/// let system = GridSystem::for_comm_range(6, 6, 10.0)?;
/// let mut rng = SimRng::seed_from_u64(3);
/// let positions = deploy::with_holes(&system, &[GridCoord::new(2, 2)], 2, &mut rng);
/// let net = GridNetwork::new(system, &positions);
///
/// let mut recovery = Recovery::new(net, SrConfig::default())?;
/// let report = recovery.run();
/// assert!(report.fully_covered);
/// assert_eq!(report.metrics.processes_initiated, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Recovery {
    protocol: SrProtocol,
    runner: RoundRunner,
}

impl Recovery {
    /// Builds the cycle topology for the network's region and prepares
    /// the protocol (initial head election happens here). Networks over
    /// a full rectangular mask get the paper's exact constructions; a
    /// network built with [`GridNetwork::with_mask`] over an irregular
    /// region gets the masked virtual ring
    /// ([`wsn_hamilton::MaskedCycle`]) — SR runs unchanged on top.
    ///
    /// # Errors
    ///
    /// [`SrError::Topology`] when the region has no replacement
    /// structure (any side < 2, odd×odd below 3×3, or fewer than two
    /// enabled cells), and [`SrError::Engine`] for invalid round caps in
    /// `config`.
    pub fn new(net: GridNetwork, config: SrConfig) -> Result<Recovery, SrError> {
        let topo = CycleTopology::build_masked(net.mask())?;
        Recovery::with_topology(net, topo, config)
    }

    /// Like [`Recovery::new`] with a pre-built topology — for callers
    /// (e.g. the [`crate::scheme::ReplacementScheme`] impls) that have
    /// already constructed the replacement structure and should not pay
    /// for it twice. `topo` must have been built for `net`'s region
    /// (i.e. from its [`wsn_grid::RegionMask`]).
    ///
    /// # Errors
    ///
    /// [`SrError::Engine`] for invalid round caps in `config`.
    pub fn with_topology(
        net: GridNetwork,
        topo: CycleTopology,
        config: SrConfig,
    ) -> Result<Recovery, SrError> {
        let runner = RoundRunner::with_quiescence(config.max_rounds, config.quiescent_rounds)?;
        Ok(Recovery {
            protocol: SrProtocol::new(net, topo, config),
            runner,
        })
    }

    /// Runs to quiescence (or the round cap) and reports.
    pub fn run(&mut self) -> SchemeReport {
        let initial_stats = self.protocol.network().stats();
        let run = self.runner.run(&mut self.protocol);
        self.protocol.fail_remaining(run.rounds);
        let final_stats = self.protocol.network().stats();
        SchemeReport {
            run,
            metrics: *self.protocol.metrics(),
            initial_stats,
            final_stats,
            fully_covered: final_stats.vacant == 0,
            processes: self.protocol.process_summaries().to_vec(),
            health: wsn_simcore::ProtocolHealth::default(),
            details: SchemeDetails::none(),
        }
    }

    /// Runs using the change-driven quiescence check
    /// ([`wsn_simcore::ChangeDrivenProtocol`]): the run ends the moment
    /// the protocol's pending-hole index shows nothing outstanding,
    /// skipping the idle-confirmation rounds [`Recovery::run`] executes.
    /// Without battery dynamics (the default), coverage outcomes and
    /// per-process results are identical to `run`'s and only the round
    /// accounting differs (no trailing no-op rounds). With
    /// `battery_dynamics` enabled the skipped rounds are not no-ops —
    /// heads burn idle energy every round, and a death in a trailing
    /// round can open a fresh hole — so energy totals (and, at the
    /// margin, coverage) may diverge from `run`'s. Use `run` when
    /// comparing round counts or energy against the paper, and
    /// `run_adaptive` for large-grid scenario harnesses.
    pub fn run_adaptive(&mut self) -> SchemeReport {
        let initial_stats = self.protocol.network().stats();
        let run = self.runner.run_change_driven(&mut self.protocol);
        self.protocol.fail_remaining(run.rounds);
        let final_stats = self.protocol.network().stats();
        SchemeReport {
            run,
            metrics: *self.protocol.metrics(),
            initial_stats,
            final_stats,
            fully_covered: final_stats.vacant == 0,
            processes: self.protocol.process_summaries().to_vec(),
            health: wsn_simcore::ProtocolHealth::default(),
            details: SchemeDetails::none(),
        }
    }

    /// The network state (before [`Recovery::run`]: as deployed with
    /// heads elected; after: the recovered state).
    pub fn network(&self) -> &GridNetwork {
        self.protocol.network()
    }

    /// Consumes the driver and releases the network — how the
    /// [`crate::scheme::ReplacementScheme`] impl hands the recovered
    /// state back through its `&mut GridNetwork` argument.
    pub fn into_network(self) -> GridNetwork {
        self.protocol.into_network()
    }

    /// The protocol's event trace.
    pub fn trace(&self) -> &TraceLog {
        self.protocol.trace()
    }

    /// The underlying protocol (for custom inspection).
    pub fn protocol(&self) -> &SrProtocol {
        &self.protocol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_grid::{deploy, GridCoord, GridSystem};
    use wsn_simcore::SimRng;

    #[test]
    fn report_round_trip_on_simple_network() {
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let pos = deploy::with_holes(&sys, &[GridCoord::new(1, 2)], 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let mut rec = Recovery::new(net, SrConfig::default().with_trace(true)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        assert_eq!(report.initial_stats.vacant, 1);
        assert_eq!(report.final_stats.vacant, 0);
        assert_eq!(report.processes.len(), 1);
        assert!(report.run.is_quiescent());
        assert!(!report.to_string().is_empty());
        assert!(!rec.trace().is_empty());
        assert!(rec.protocol().process_summaries().len() == 1);
    }

    #[test]
    fn adaptive_run_matches_classic_run_minus_idle_rounds() {
        let mk = || {
            let sys = GridSystem::new(6, 6, 4.4721).unwrap();
            let mut rng = SimRng::seed_from_u64(8);
            let pos = deploy::with_holes(
                &sys,
                &[GridCoord::new(1, 2), GridCoord::new(4, 4)],
                2,
                &mut rng,
            );
            GridNetwork::new(sys, &pos)
        };
        let classic = Recovery::new(mk(), SrConfig::default().with_seed(8))
            .unwrap()
            .run();
        let adaptive = Recovery::new(mk(), SrConfig::default().with_seed(8))
            .unwrap()
            .run_adaptive();
        assert!(classic.fully_covered && adaptive.fully_covered);
        assert!(classic.run.is_quiescent() && adaptive.run.is_quiescent());
        // Identical work, fewer bookkeeping rounds.
        assert_eq!(adaptive.metrics.moves, classic.metrics.moves);
        assert_eq!(adaptive.metrics.distance, classic.metrics.distance);
        assert_eq!(adaptive.processes.len(), classic.processes.len());
        assert!(adaptive.run.rounds < classic.run.rounds);
    }

    #[test]
    fn masked_regions_recover_all_enabled_holes() {
        use wsn_grid::RegionShape;
        // SR on every irregular preset shape: crafted holes, spares
        // everywhere, full recovery of the enabled region, and zero
        // placements in disabled cells.
        for (i, shape) in RegionShape::IRREGULAR.into_iter().enumerate() {
            let sys = GridSystem::new(12, 12, 4.4721).unwrap();
            let mask = shape.build_mask(12, 12);
            let mut rng = SimRng::seed_from_u64(100 + i as u64);
            let enabled: Vec<GridCoord> = mask.iter_enabled().collect();
            let holes: Vec<GridCoord> = enabled.iter().copied().step_by(17).collect();
            let pos = deploy::with_holes_masked(&sys, &mask, &holes, 2, &mut rng);
            let net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
            assert_eq!(net.stats().vacant, holes.len(), "{shape}");
            let mut rec =
                Recovery::new(net, SrConfig::default().with_seed(100 + i as u64)).unwrap();
            assert!(rec.protocol().topology().is_masked(), "{shape}");
            let report = rec.run();
            assert!(report.fully_covered, "{shape}: {report}");
            assert_eq!(report.metrics.processes_failed, 0, "{shape}");
            // Exactly one process per hole: the masked ring preserves
            // SR's synchronization on irregular regions.
            assert_eq!(
                report.metrics.processes_initiated,
                holes.len() as u64,
                "{shape}"
            );
            rec.network().debug_invariants();
            for node in rec.network().nodes() {
                if node.status().is_enabled() {
                    let cell = sys.cell_of(node.position()).unwrap();
                    assert!(mask.is_enabled(cell), "{shape}: node in disabled {cell}");
                }
            }
        }
    }

    #[test]
    fn masked_region_with_no_spares_fails_cleanly() {
        use wsn_grid::RegionMask;
        let sys = GridSystem::new(8, 8, 4.4721).unwrap();
        let mask = RegionMask::l_shape(8, 8);
        let mut rng = SimRng::seed_from_u64(7);
        let enabled: Vec<GridCoord> = mask.iter_enabled().collect();
        let pos = deploy::with_holes_masked(&sys, &mask, &[enabled[10]], 1, &mut rng);
        let net = GridNetwork::with_mask(sys, mask, &pos).unwrap();
        assert_eq!(net.total_spares(), 0);
        let mut rec = Recovery::new(net, SrConfig::default()).unwrap();
        let report = rec.run();
        assert!(report.run.is_quiescent());
        assert!(!report.fully_covered);
        assert!(report.metrics.processes_failed >= 1);
    }

    #[test]
    fn intact_network_is_a_no_op() {
        let sys = GridSystem::new(4, 4, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(6);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let mut rec = Recovery::new(net, SrConfig::default()).unwrap();
        let report = rec.run();
        assert!(report.fully_covered);
        assert_eq!(report.metrics.moves, 0);
        assert_eq!(report.metrics.processes_initiated, 0);
        assert_eq!(report.metrics.success_rate_percent(), 100.0);
    }

    #[test]
    fn error_cases_are_reported() {
        let sys = GridSystem::new(1, 4, 1.0).unwrap();
        let net = GridNetwork::new(sys, &[]);
        match Recovery::new(net, SrConfig::default()) {
            Err(SrError::Topology(_)) => {}
            other => panic!("expected topology error, got {other:?}"),
        }
        let sys = GridSystem::new(4, 4, 1.0).unwrap();
        let net = GridNetwork::new(sys, &[]);
        let cfg = SrConfig::default().with_max_rounds(0);
        match Recovery::new(net, cfg) {
            Err(SrError::Engine(_)) => {}
            other => panic!("expected engine error, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_and_source() {
        use std::error::Error as _;
        let e = SrError::from(HamiltonError::TooSmall { cols: 1, rows: 1 });
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e = SrError::from(EngineError::ZeroMaxRounds);
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
    }
}
