//! The uniform protocol-driving API: every replacement scheme — SR,
//! SR-SC, AR, virtual force, SMART — behind one object-safe trait plus a
//! registry of stable string ids.
//!
//! Before this layer each scheme had a bespoke entry point
//! ([`crate::Recovery::run`], `ArRecovery::run`, free `vf::run` /
//! `smart::run` functions…) and a bespoke report type, and every harness
//! that compared schemes paid a `match` arm per scheme per call site.
//! [`ReplacementScheme`] folds all of that into three questions any
//! scheme can answer:
//!
//! * **who are you** — [`ReplacementScheme::id`] (a stable, parseable
//!   token like `"sr-sc"`, used in CSV/JSON artifacts and on the CLI)
//!   and [`ReplacementScheme::label`] (the figure-legend spelling);
//! * **can you run here** — [`ReplacementScheme::supports`] checks a
//!   region ([`NetworkSpec`]) *before* any deployment happens, so
//!   experiment matrices validate up front instead of panicking on a
//!   worker thread;
//! * **run** — [`ReplacementScheme::run`] drives the scheme on a
//!   `&mut GridNetwork` to completion and returns the unified
//!   [`SchemeReport`]. Passing the network by `&mut` (not by value) is
//!   what makes paired before/after inspection possible without cloning.
//!
//! [`DriveMode`] folds the classic idle-confirmation loop and the
//! change-driven fast path (`run` vs `run_adaptive` in the old API) into
//! one parameter; schemes advertise the fast path via
//! [`ReplacementScheme::supports_change_driven`].
//!
//! A [`SchemeRegistry`] maps ids to boxed scheme objects. The five
//! built-ins are registered by `wsn_baselines::builtins()`; external
//! plugins register at runtime:
//!
//! ```
//! use wsn_coverage::scheme::{
//!     DriveMode, NetworkSpec, ReplacementScheme, SchemeDetails, SchemeReport,
//!     SchemeRegistry, Unsupported,
//! };
//! use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem};
//! use wsn_simcore::{Metrics, Quiescence, RunReport, SimRng};
//!
//! /// A third-party scheme: an omniscient dispatcher that teleports the
//! /// lowest-id spare straight into each hole (physically impossible —
//! /// but a useful lower bound to compare real schemes against).
//! #[derive(Debug, Default)]
//! struct Oracle;
//!
//! impl ReplacementScheme for Oracle {
//!     fn id(&self) -> &str {
//!         "oracle"
//!     }
//!     fn label(&self) -> &str {
//!         "Oracle"
//!     }
//!     fn supports(&self, _spec: &NetworkSpec) -> Result<(), Unsupported> {
//!         Ok(()) // runs on any region
//!     }
//!     fn run(
//!         &self,
//!         net: &mut GridNetwork,
//!         _seed: u64,
//!         mode: DriveMode,
//!     ) -> Result<SchemeReport, Unsupported> {
//!         if mode != DriveMode::Classic {
//!             return Err(Unsupported::new(self.id(), "only the classic driver exists"));
//!         }
//!         let initial_stats = net.stats();
//!         let mut metrics = Metrics::new();
//!         let sys = *net.system();
//!         for hole in net.vacant_iter().collect::<Vec<_>>() {
//!             let Some(donor) = sys.iter_coords().find(|&c| {
//!                 net.spare_count(c).is_ok_and(|n| n > 0)
//!             }) else {
//!                 break;
//!             };
//!             let spare = net.spare_iter(donor).unwrap().min().unwrap();
//!             let dest = sys.cell_center(hole).unwrap();
//!             let moved = net.move_node(spare, dest).unwrap();
//!             metrics.record_move(moved.distance);
//!         }
//!         metrics.rounds = 1;
//!         let final_stats = net.stats();
//!         Ok(SchemeReport {
//!             run: RunReport { rounds: 1, termination: Quiescence::Reached },
//!             metrics,
//!             initial_stats,
//!             fully_covered: final_stats.vacant == 0,
//!             final_stats,
//!             processes: Vec::new(),
//!             health: wsn_simcore::ProtocolHealth::default(),
//!             details: SchemeDetails::none(),
//!         })
//!     }
//! }
//!
//! let mut registry = SchemeRegistry::new();
//! registry.register(Oracle)?;
//!
//! // Drive it exactly like a built-in: by id, on a &mut network.
//! let sys = GridSystem::new(4, 4, 4.4721)?;
//! let mut rng = SimRng::seed_from_u64(7);
//! let pos = deploy::with_holes(&sys, &[GridCoord::new(1, 1)], 2, &mut rng);
//! let mut net = GridNetwork::new(sys, &pos);
//!
//! let scheme = registry.get("oracle").expect("just registered");
//! scheme.supports(&NetworkSpec::of(&net))?;
//! let report = scheme.run(&mut net, 7, DriveMode::Classic)?;
//! assert!(report.fully_covered);
//! assert_eq!(net.stats(), report.final_stats); // in-place: net is the final state
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::any::Any;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wsn_grid::{GridNetwork, GridSystem, NetworkStats, RegionMask};
use wsn_hamilton::CycleTopology;
use wsn_simcore::{Metrics, NetModelSpec, ProtocolHealth, RunReport, TraceLog};

use crate::actor::{EventScRecovery, EventSrRecovery};
use crate::process::ProcessSummary;
use crate::recovery::{Recovery, SrError};
use crate::shortcut::ShortcutRecovery;
use crate::SrConfig;

/// How a scheme's round loop decides it is done.
///
/// The old API exposed this as two methods per driver (`run` vs
/// `run_adaptive` / `run_change_driven`); the trait folds it into one
/// parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DriveMode {
    /// The paper's accounting: quiescence is observed by executing
    /// idle-confirmation rounds. Use this when comparing round counts or
    /// energy against the paper.
    #[default]
    Classic,
    /// The fast path: the run ends the moment the scheme's own
    /// pending-work index shows nothing outstanding
    /// ([`wsn_simcore::ChangeDrivenProtocol`]), skipping trailing no-op
    /// rounds. Only available where
    /// [`ReplacementScheme::supports_change_driven`] reports `true`.
    ChangeDriven,
    /// The discrete-event engine: heads and spares are actors
    /// exchanging typed messages through the given network model
    /// ([`wsn_simcore::net`]), so latency and loss become protocol
    /// inputs instead of axioms. Under [`NetModelSpec::Ideal`] the
    /// engine reproduces the classic runner's `Metrics` exactly (the
    /// conformance contract); degraded models surface duplicate
    /// initiations, lost cascades and stalled repairs in
    /// [`SchemeReport::health`]. Only available where
    /// [`ReplacementScheme::supports_event_driven`] reports `true`.
    EventDriven {
        /// The network model messages are routed through.
        net: NetModelSpec,
    },
}

impl fmt::Display for DriveMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveMode::Classic => f.write_str("classic"),
            DriveMode::ChangeDriven => f.write_str("change-driven"),
            DriveMode::EventDriven { net } => write!(f, "event-{net}"),
        }
    }
}

/// A scheme cannot run on the requested region, configuration, or drive
/// mode.
///
/// Marked `#[non_exhaustive]`: future scheme capabilities may grow this
/// error's surface without breaking downstream constructors or matches.
/// Build one with [`Unsupported::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Unsupported {
    /// Id of the scheme that declined.
    pub scheme: String,
    /// Human-readable explanation.
    pub reason: String,
}

impl Unsupported {
    /// Builds the error.
    pub fn new(scheme: impl Into<String>, reason: impl Into<String>) -> Unsupported {
        Unsupported {
            scheme: scheme.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheme '{}': {}", self.scheme, self.reason)
    }
}

impl std::error::Error for Unsupported {}

/// What a scheme is asked to run on, *before* any nodes are deployed: a
/// surveillance region (grid dimensions plus the enabled-cell mask).
///
/// [`ReplacementScheme::supports`] answers against this, so experiment
/// matrices ([`wsn_bench`-style campaigns]) can validate every
/// (scheme, region, grid) combination up front.
///
/// [`wsn_bench`-style campaigns]: ReplacementScheme::supports
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    mask: RegionMask,
}

impl NetworkSpec {
    /// A full rectangular `cols × rows` region (the paper's setting).
    pub fn full(cols: u16, rows: u16) -> NetworkSpec {
        NetworkSpec {
            mask: RegionMask::full(cols, rows),
        }
    }

    /// An irregular region described by `mask`.
    pub fn masked(mask: RegionMask) -> NetworkSpec {
        NetworkSpec { mask }
    }

    /// The region of an existing network.
    pub fn of(net: &GridNetwork) -> NetworkSpec {
        NetworkSpec {
            mask: net.mask().clone(),
        }
    }

    /// Grid columns.
    pub fn cols(&self) -> u16 {
        self.mask.cols()
    }

    /// Grid rows.
    pub fn rows(&self) -> u16 {
        self.mask.rows()
    }

    /// The enabled-cell mask (all cells for a full region).
    pub fn mask(&self) -> &RegionMask {
        &self.mask
    }
}

/// A scheme-specific value a report can carry without widening the
/// shared [`SchemeReport`] shape — the typed extension point.
///
/// Values are stored behind `Arc<dyn Any>` and recovered by type:
///
/// ```
/// use wsn_coverage::scheme::SchemeDetails;
///
/// #[derive(Debug, PartialEq)]
/// struct GossipStats {
///     beacons: u64,
/// }
///
/// let details = SchemeDetails::new(GossipStats { beacons: 12 });
/// assert_eq!(details.get::<GossipStats>().unwrap().beacons, 12);
/// assert!(details.get::<String>().is_none()); // wrong type: no value
/// assert!(SchemeDetails::none().get::<GossipStats>().is_none());
/// ```
#[derive(Clone, Default)]
pub struct SchemeDetails(Option<Arc<dyn DetailValue>>);

/// The bound a detail payload must satisfy. Blanket-implemented for
/// every eligible type; implement nothing yourself.
pub trait DetailValue: Any + fmt::Debug + Send + Sync {
    /// The payload as `Any`, for downcasting.
    fn as_any(&self) -> &dyn Any;
}

impl<T: Any + fmt::Debug + Send + Sync> DetailValue for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl SchemeDetails {
    /// No extra details (the common case).
    pub fn none() -> SchemeDetails {
        SchemeDetails(None)
    }

    /// Wraps a scheme-specific payload.
    pub fn new<T: DetailValue>(value: T) -> SchemeDetails {
        SchemeDetails(Some(Arc::new(value)))
    }

    /// The payload, if one of type `T` is present.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.0.as_deref().and_then(|v| v.as_any().downcast_ref())
    }

    /// `true` when no payload is attached.
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }
}

impl fmt::Debug for SchemeDetails {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("SchemeDetails(none)"),
            Some(v) => write!(f, "SchemeDetails({v:?})"),
        }
    }
}

/// The unified result of driving any replacement scheme to completion —
/// one shape for SR, SR-SC, AR, VF, and SMART (and any plugin), so
/// harnesses compare schemes without per-scheme report plumbing.
///
/// Scheme-specific extras (VF's equilibrium flag, gossip statistics, …)
/// ride in [`SchemeReport::details`]; everything a faceoff or figure
/// needs is in the shared fields.
///
/// Equality ignores `details` (payloads are type-erased); all other
/// fields compare structurally. Unlike the per-scheme reports it
/// replaces, this type deliberately does **not** derive serde traits:
/// `details` is an `Any`-backed payload with no serde story, and the
/// workspace's offline serde stand-in never serialized the old reports
/// anyway.
#[derive(Debug, Clone)]
pub struct SchemeReport {
    /// How the round loop terminated.
    pub run: RunReport,
    /// Aggregate cost counters (the paper's Figures 6–8 metrics).
    pub metrics: Metrics,
    /// Occupancy before recovery.
    pub initial_stats: NetworkStats,
    /// Occupancy after recovery.
    pub final_stats: NetworkStats,
    /// `true` when every enabled cell ended with a head — the paper's
    /// complete-coverage goal (Theorem 1's postcondition when a spare
    /// existed).
    pub fully_covered: bool,
    /// Per-process details, for schemes with a replacement-process
    /// notion (SR, SR-SC); empty otherwise.
    pub processes: Vec<ProcessSummary>,
    /// Distributed-protocol health counters. All-zero for classic and
    /// change-driven runs (the synchronous model has no network to
    /// lose messages in); populated by [`DriveMode::EventDriven`].
    /// Excluded from equality, like `details`: conformance compares
    /// the classic engine (no envelope accounting) against the event
    /// engine (full accounting) on everything the paper measures.
    pub health: ProtocolHealth,
    /// Scheme-specific extras (excluded from equality).
    pub details: SchemeDetails,
}

impl PartialEq for SchemeReport {
    fn eq(&self, other: &SchemeReport) -> bool {
        self.run == other.run
            && self.metrics == other.metrics
            && self.initial_stats == other.initial_stats
            && self.final_stats == other.final_stats
            && self.fully_covered == other.fully_covered
            && self.processes == other.processes
    }
}

impl fmt::Display for SchemeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery {}: {} -> {} holes, {}",
            if self.fully_covered {
                "complete"
            } else {
                "incomplete"
            },
            self.initial_stats.vacant,
            self.final_stats.vacant,
            self.metrics
        )
    }
}

/// A hole-replacement scheme drivable through the uniform API.
///
/// Implementations are cheap, immutable *descriptions* of a configured
/// scheme (typically a config struct behind a builder); all run state
/// lives inside [`ReplacementScheme::run`]. That is what makes one
/// instance safely shareable across the worker threads of an experiment
/// matrix — the trait requires `Send + Sync` for exactly that reason.
///
/// See the [module docs](self) for a complete third-party
/// implementation.
pub trait ReplacementScheme: fmt::Debug + Send + Sync {
    /// Stable machine-readable id: lowercase ASCII letters, digits and
    /// `-`, as validated by [`SchemeId`]. This is the token used in
    /// campaign JSON/CSV artifacts and on the CLI, and the key the
    /// [`SchemeRegistry`] dispatches on — never change it for a
    /// published scheme.
    fn id(&self) -> &str;

    /// Figure-legend label (e.g. `"SR-SC"`).
    fn label(&self) -> &str;

    /// Whether the scheme can run on the given region. Harnesses call
    /// this during validation, before deploying anything.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] with the reason the region is unusable (no
    /// Hamilton structure, no single cycle, …).
    fn supports(&self, spec: &NetworkSpec) -> Result<(), Unsupported>;

    /// Whether [`DriveMode::ChangeDriven`] is implemented.
    fn supports_change_driven(&self) -> bool {
        false
    }

    /// Whether [`DriveMode::EventDriven`] is implemented.
    fn supports_event_driven(&self) -> bool {
        false
    }

    /// Drives the scheme on `net` to completion, in place: afterwards
    /// `net` is the recovered network, so callers can inspect paired
    /// before/after state without cloning.
    ///
    /// `seed` addresses the run's deterministic RNG stream (it overrides
    /// any seed carried by the scheme's own config), so one configured
    /// scheme instance can replay many trials.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when the network's region fails
    /// [`ReplacementScheme::supports`], or `mode` is
    /// [`DriveMode::ChangeDriven`] on a scheme without that driver.
    fn run(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported>;

    /// Like [`ReplacementScheme::run`], but additionally captures the
    /// scheme's full event trace — the record half of the
    /// record/replay tooling ([`wsn_simcore::replay`]). A traced run
    /// must execute the *identical* round sequence and RNG draws as the
    /// untraced one (tracing is observation, never perturbation), so a
    /// trial recorded by its campaign coordinate re-executes
    /// byte-identically.
    ///
    /// The default implementation runs untraced and returns a
    /// [`TraceLog::disabled`] log; schemes with event instrumentation
    /// override it. All five built-ins do.
    ///
    /// # Errors
    ///
    /// Exactly as [`ReplacementScheme::run`].
    fn run_traced(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        self.run(net, seed, mode).map(|r| (r, TraceLog::disabled()))
    }
}

/// Detaches the network behind `net`, leaving a minimal placeholder —
/// the bridge between the trait's `&mut GridNetwork` contract and
/// drivers ([`Recovery`], `ArRecovery`, …) that take ownership. Pair
/// with writing the driver's final network back:
///
/// ```
/// # use wsn_coverage::scheme::detach_network;
/// # use wsn_coverage::{Recovery, SrConfig};
/// # use wsn_grid::{deploy, GridNetwork, GridSystem};
/// # use wsn_simcore::SimRng;
/// # let sys = GridSystem::new(4, 4, 4.4721).unwrap();
/// # let mut rng = SimRng::seed_from_u64(1);
/// # let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
/// # let mut owned = GridNetwork::new(sys, &pos);
/// # let net: &mut GridNetwork = &mut owned;
/// let mut recovery = Recovery::new(detach_network(net), SrConfig::default()).unwrap();
/// let report = recovery.run();
/// *net = recovery.into_network();
/// ```
pub fn detach_network(net: &mut GridNetwork) -> GridNetwork {
    let placeholder = GridNetwork::new(
        GridSystem::new(1, 1, 1.0).expect("1x1 placeholder grid is valid"),
        &[],
    );
    std::mem::replace(net, placeholder)
}

/// A validated scheme id: non-empty lowercase ASCII letters, digits and
/// `-` (no leading/trailing dash), at most 64 bytes — safe to embed in
/// CSV columns, JSON strings and CLI flags without quoting.
///
/// Round-trips through [`FromStr`]/[`fmt::Display`]:
///
/// ```
/// use wsn_coverage::scheme::SchemeId;
///
/// let id: SchemeId = "sr-sc".parse()?;
/// assert_eq!(id.to_string(), "sr-sc");
/// assert!("SR".parse::<SchemeId>().is_err()); // ids are lowercase
/// assert!("".parse::<SchemeId>().is_err());
/// # Ok::<(), wsn_coverage::scheme::SchemeIdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SchemeId(String);

impl SchemeId {
    /// Validates and wraps an id.
    ///
    /// # Errors
    ///
    /// [`SchemeIdError`] when `id` is empty, longer than 64 bytes,
    /// contains anything but `[a-z0-9-]`, or starts/ends with `-`.
    pub fn new(id: &str) -> Result<SchemeId, SchemeIdError> {
        if id.is_empty() || id.len() > 64 {
            return Err(SchemeIdError {
                id: id.to_owned(),
                reason: "must be 1..=64 bytes",
            });
        }
        if !id
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            return Err(SchemeIdError {
                id: id.to_owned(),
                reason: "only lowercase ASCII letters, digits and '-' are allowed",
            });
        }
        if id.starts_with('-') || id.ends_with('-') {
            return Err(SchemeIdError {
                id: id.to_owned(),
                reason: "must not start or end with '-'",
            });
        }
        Ok(SchemeId(id.to_owned()))
    }

    /// Parses a slice of literals, panicking on invalid ids — for
    /// hard-coded scheme lists in configs and tests.
    ///
    /// # Panics
    ///
    /// Panics when any entry is not a valid id.
    pub fn list(ids: &[&str]) -> Vec<SchemeId> {
        ids.iter()
            .map(|id| SchemeId::new(id).expect("literal scheme id is valid"))
            .collect()
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for SchemeId {
    type Err = SchemeIdError;

    fn from_str(s: &str) -> Result<SchemeId, SchemeIdError> {
        SchemeId::new(s)
    }
}

impl AsRef<str> for SchemeId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A string is not a valid [`SchemeId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeIdError {
    /// The rejected string.
    pub id: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for SchemeIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scheme id {:?}: {}", self.id, self.reason)
    }
}

impl std::error::Error for SchemeIdError {}

/// Registration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// A scheme with this id is already registered.
    Duplicate {
        /// The contested id.
        id: String,
    },
    /// The scheme's self-reported id is not a valid [`SchemeId`].
    InvalidId(SchemeIdError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Duplicate { id } => {
                write!(f, "scheme id '{id}' is already registered")
            }
            RegistryError::InvalidId(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Duplicate { .. } => None,
            RegistryError::InvalidId(e) => Some(e),
        }
    }
}

/// An ordered id → scheme map: the dispatch point every harness
/// (campaigns, sweeps, figures, CLIs) routes through instead of matching
/// over a closed enum.
///
/// Iteration order is registration order — stable, so artifact layouts
/// and figure legends don't depend on hash state. Duplicate ids are
/// rejected. Cloning is cheap (schemes are shared via [`Arc`]).
#[derive(Debug, Clone, Default)]
pub struct SchemeRegistry {
    entries: Vec<Arc<dyn ReplacementScheme>>,
}

impl SchemeRegistry {
    /// An empty registry. The five built-ins live in
    /// `wsn_baselines::builtins()` (the baselines crate can see every
    /// scheme; this crate only defines SR and SR-SC).
    pub fn new() -> SchemeRegistry {
        SchemeRegistry::default()
    }

    /// Registers a scheme under its self-reported id, returning the
    /// validated id.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id is taken,
    /// [`RegistryError::InvalidId`] when the scheme reports a malformed
    /// id.
    pub fn register<S: ReplacementScheme + 'static>(
        &mut self,
        scheme: S,
    ) -> Result<SchemeId, RegistryError> {
        self.register_arc(Arc::new(scheme))
    }

    /// Registers an already-boxed plugin (`Box<dyn ReplacementScheme>`).
    ///
    /// # Errors
    ///
    /// As [`SchemeRegistry::register`].
    pub fn register_boxed(
        &mut self,
        scheme: Box<dyn ReplacementScheme>,
    ) -> Result<SchemeId, RegistryError> {
        self.register_arc(Arc::from(scheme))
    }

    fn register_arc(
        &mut self,
        scheme: Arc<dyn ReplacementScheme>,
    ) -> Result<SchemeId, RegistryError> {
        let id = SchemeId::new(scheme.id()).map_err(RegistryError::InvalidId)?;
        if self.contains(id.as_str()) {
            return Err(RegistryError::Duplicate { id: id.0 });
        }
        self.entries.push(scheme);
        Ok(id)
    }

    /// Looks a scheme up by id.
    pub fn get(&self, id: &str) -> Option<&dyn ReplacementScheme> {
        self.entries.iter().find(|s| s.id() == id).map(Arc::as_ref)
    }

    /// Whether an id is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|s| s.id() == id)
    }

    /// Registered ids, in registration order.
    pub fn ids(&self) -> Vec<SchemeId> {
        self.entries
            .iter()
            .map(|s| SchemeId::new(s.id()).expect("ids were validated at registration"))
            .collect()
    }

    /// The schemes, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn ReplacementScheme> {
        self.entries.iter().map(Arc::as_ref)
    }

    /// Number of registered schemes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl From<SrError> for Unsupported {
    fn from(e: SrError) -> Unsupported {
        Unsupported::new("sr", e.to_string())
    }
}

/// **SR** — the paper's synchronized snake-like replacement — as a
/// registrable scheme. Wraps [`Recovery`]; configure via
/// [`Sr::builder`].
///
/// ```
/// use wsn_coverage::scheme::{DriveMode, ReplacementScheme, Sr};
/// use wsn_coverage::SpareSelection;
/// use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem};
/// use wsn_simcore::SimRng;
///
/// let sr = Sr::builder()
///     .spare_selection(SpareSelection::FirstId)
///     .build();
/// let sys = GridSystem::new(4, 4, 4.4721)?;
/// let mut rng = SimRng::seed_from_u64(3);
/// let pos = deploy::with_holes(&sys, &[GridCoord::new(1, 2)], 2, &mut rng);
/// let mut net = GridNetwork::new(sys, &pos);
/// let report = sr.run(&mut net, 3, DriveMode::Classic)?;
/// assert!(report.fully_covered);
/// assert_eq!(net.stats().vacant, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sr {
    config: SrConfig,
}

impl Sr {
    /// SR with the paper's default configuration.
    pub fn new() -> Sr {
        Sr::default()
    }

    /// Starts a builder over the default configuration.
    pub fn builder() -> SrBuilder {
        SrBuilder {
            config: SrConfig::default(),
        }
    }

    /// SR over an explicit config. The config's `seed` is overridden by
    /// the seed passed to [`ReplacementScheme::run`].
    pub fn from_config(config: SrConfig) -> Sr {
        Sr { config }
    }

    /// The configuration this scheme runs with.
    pub fn config(&self) -> &SrConfig {
        &self.config
    }
}

/// Builder for [`Sr`] (and, via [`SrSc::builder`], for the shortcut
/// variant — the two share [`SrConfig`]).
#[derive(Debug, Clone)]
pub struct SrBuilder {
    config: SrConfig,
}

impl SrBuilder {
    /// Sets the head-election policy.
    #[must_use]
    pub fn election(mut self, election: wsn_grid::HeadElection) -> Self {
        self.config = self.config.with_election(election);
        self
    }

    /// Sets the spare-selection policy.
    #[must_use]
    pub fn spare_selection(mut self, selection: crate::SpareSelection) -> Self {
        self.config = self.config.with_spare_selection(selection);
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.config = self.config.with_max_rounds(max_rounds);
        self
    }

    /// Enables or disables tracing.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.config = self.config.with_trace(trace);
        self
    }

    /// Sets the in-run fault plan.
    #[must_use]
    pub fn fault_plan(mut self, plan: wsn_simcore::fault::FaultPlan) -> Self {
        self.config = self.config.with_fault_plan(plan);
        self
    }

    /// Enables battery dynamics.
    #[must_use]
    pub fn battery_dynamics(mut self, enabled: bool) -> Self {
        self.config = self.config.with_battery_dynamics(enabled);
        self
    }

    /// Finishes as SR.
    pub fn build(self) -> Sr {
        Sr {
            config: self.config,
        }
    }

    /// Finishes as SR-SC (the shortcut variant over the same config).
    pub fn build_shortcut(self) -> SrSc {
        SrSc {
            config: self.config,
        }
    }
}

impl ReplacementScheme for Sr {
    fn id(&self) -> &str {
        "sr"
    }

    fn label(&self) -> &str {
        "SR"
    }

    fn supports(&self, spec: &NetworkSpec) -> Result<(), Unsupported> {
        // Config validity is part of the supports() contract, so
        // experiment matrices catch a bad round cap up front instead of
        // panicking on a worker thread.
        validate_runner_config(self.id(), &self.config)?;
        CycleTopology::build_masked(spec.mask())
            .map(|_| ())
            .map_err(|e| Unsupported::new(self.id(), e.to_string()))
    }

    fn supports_change_driven(&self) -> bool {
        true
    }

    fn supports_event_driven(&self) -> bool {
        true
    }

    fn run(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported> {
        self.drive(net, seed, mode, false).map(|(report, _)| report)
    }

    fn run_traced(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        self.drive(net, seed, mode, true)
    }
}

impl Sr {
    /// The shared driver behind `run` and `run_traced`: identical round
    /// sequence either way, with tracing switched on only when asked.
    fn drive(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
        traced: bool,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        // Validate on the borrowed network first: once it is detached, a
        // failed constructor could not hand it back. The topology built
        // here is the one the driver runs on — no second construction.
        let topo = CycleTopology::build_masked(net.mask())
            .map_err(|e| Unsupported::new(self.id(), e.to_string()))?;
        validate_runner_config(self.id(), &self.config)?;
        let owned = detach_network(net);
        let mut config = self.config.clone().with_seed(seed);
        if traced {
            config = config.with_trace(true);
        }
        if let DriveMode::EventDriven { net: spec } = mode {
            let mut recovery = EventSrRecovery::with_topology(owned, topo, config, spec)
                .expect("round caps pre-validated");
            let report = recovery.run();
            let trace = recovery.trace().clone();
            *net = recovery.into_network();
            return Ok((report, trace));
        }
        let mut recovery =
            Recovery::with_topology(owned, topo, config).expect("round caps pre-validated");
        let report = match mode {
            DriveMode::Classic => recovery.run(),
            DriveMode::ChangeDriven => recovery.run_adaptive(),
            DriveMode::EventDriven { .. } => unreachable!("routed above"),
        };
        let trace = recovery.trace().clone();
        *net = recovery.into_network();
        Ok((report, trace))
    }
}

/// Rejects round caps the [`wsn_simcore::RoundRunner`] would refuse,
/// before the network is detached.
fn validate_runner_config(id: &str, config: &SrConfig) -> Result<(), Unsupported> {
    wsn_simcore::RoundRunner::with_quiescence(config.max_rounds, config.quiescent_rounds)
        .map(|_| ())
        .map_err(|e| Unsupported::new(id, e.to_string()))
}

/// **SR-SC** — the short-cut extension ([`crate::shortcut`]) — as a
/// registrable scheme. Requires a unique-predecessor ring: even-sided
/// full grids or any masked virtual ring.
#[derive(Debug, Clone, Default)]
pub struct SrSc {
    config: SrConfig,
}

impl SrSc {
    /// SR-SC with the default configuration.
    pub fn new() -> SrSc {
        SrSc::default()
    }

    /// Starts a builder (shared with [`Sr`]; finish with
    /// [`SrBuilder::build_shortcut`]).
    pub fn builder() -> SrBuilder {
        Sr::builder()
    }

    /// SR-SC over an explicit config (`seed` is overridden per run).
    pub fn from_config(config: SrConfig) -> SrSc {
        SrSc { config }
    }

    /// The configuration this scheme runs with.
    pub fn config(&self) -> &SrConfig {
        &self.config
    }
}

impl ReplacementScheme for SrSc {
    fn id(&self) -> &str {
        "sr-sc"
    }

    fn label(&self) -> &str {
        "SR-SC"
    }

    fn supports(&self, spec: &NetworkSpec) -> Result<(), Unsupported> {
        validate_runner_config(self.id(), &self.config)?;
        match CycleTopology::build_masked(spec.mask()) {
            Ok(CycleTopology::Dual(_)) => Err(Unsupported::new(
                self.id(),
                "SR-SC requires a single Hamilton cycle (one even side)",
            )),
            Ok(_) => Ok(()),
            Err(e) => Err(Unsupported::new(self.id(), e.to_string())),
        }
    }

    fn supports_event_driven(&self) -> bool {
        true
    }

    fn run(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported> {
        self.drive(net, seed, mode, false).map(|(report, _)| report)
    }

    fn run_traced(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        self.drive(net, seed, mode, true)
    }
}

impl SrSc {
    /// The shared driver behind `run` and `run_traced`, mirroring
    /// [`Sr::drive`].
    fn drive(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
        traced: bool,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        if mode == DriveMode::ChangeDriven {
            return Err(Unsupported::new(
                self.id(),
                "SR-SC has no change-driven driver (the gossip gradient needs every round)",
            ));
        }
        let topo = CycleTopology::build_masked(net.mask())
            .map_err(|e| Unsupported::new(self.id(), e.to_string()))?;
        if matches!(topo, CycleTopology::Dual(_)) {
            return Err(Unsupported::new(
                self.id(),
                "SR-SC requires a single Hamilton cycle (one even side)",
            ));
        }
        validate_runner_config(self.id(), &self.config)?;
        let owned = detach_network(net);
        let mut config = self.config.clone().with_seed(seed);
        if traced {
            config = config.with_trace(true);
        }
        if let DriveMode::EventDriven { net: spec } = mode {
            let mut recovery = EventScRecovery::with_topology(owned, topo, config, spec)
                .expect("pre-validated ring and round caps");
            let report = recovery.run();
            let trace = recovery.trace().clone();
            *net = recovery.into_network();
            return Ok((report, trace));
        }
        let mut recovery = ShortcutRecovery::with_topology(owned, topo, config)
            .expect("pre-validated ring and round caps");
        let report = recovery.run();
        let trace = recovery.trace().clone();
        *net = recovery.into_network();
        Ok((report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_grid::{deploy, GridCoord};
    use wsn_simcore::SimRng;

    fn holed_network(cols: u16, rows: u16, seed: u64) -> GridNetwork {
        let sys = GridSystem::new(cols, rows, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::with_holes(&sys, &[GridCoord::new(1, 2)], 2, &mut rng);
        GridNetwork::new(sys, &pos)
    }

    #[test]
    fn scheme_id_validation() {
        for ok in ["sr", "sr-sc", "a", "x2", "my-scheme-3"] {
            assert_eq!(SchemeId::new(ok).unwrap().as_str(), ok);
        }
        for bad in [
            "",
            "SR",
            "has space",
            "trailing-",
            "-leading",
            "under_score",
        ] {
            assert!(SchemeId::new(bad).is_err(), "{bad:?} must be rejected");
        }
        let long = "x".repeat(65);
        assert!(SchemeId::new(&long).is_err());
        // FromStr/Display round-trip.
        let id: SchemeId = "sr-sc".parse().unwrap();
        assert_eq!(id.to_string().parse::<SchemeId>().unwrap(), id);
        assert!(!SchemeId::new("BAD").unwrap_err().to_string().is_empty());
    }

    #[test]
    fn registry_rejects_duplicates_and_preserves_order() {
        let mut reg = SchemeRegistry::new();
        assert!(reg.is_empty());
        reg.register(SrSc::new()).unwrap();
        reg.register(Sr::new()).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(
            reg.ids(),
            SchemeId::list(&["sr-sc", "sr"]),
            "iteration order is registration order"
        );
        let err = reg.register(Sr::new()).unwrap_err();
        assert_eq!(
            err,
            RegistryError::Duplicate { id: "sr".into() },
            "duplicate ids are rejected"
        );
        assert!(!err.to_string().is_empty());
        assert!(reg.get("sr").is_some());
        assert!(reg.get("ar").is_none());
        // Boxed (plugin-style) registration works too.
        let mut reg2 = SchemeRegistry::new();
        let boxed: Box<dyn ReplacementScheme> = Box::new(Sr::new());
        assert_eq!(reg2.register_boxed(boxed).unwrap().as_str(), "sr");
    }

    #[test]
    fn registry_rejects_invalid_self_reported_ids() {
        #[derive(Debug)]
        struct BadId;
        impl ReplacementScheme for BadId {
            fn id(&self) -> &str {
                "Not Valid"
            }
            fn label(&self) -> &str {
                "?"
            }
            fn supports(&self, _spec: &NetworkSpec) -> Result<(), Unsupported> {
                Ok(())
            }
            fn run(
                &self,
                _net: &mut GridNetwork,
                _seed: u64,
                _mode: DriveMode,
            ) -> Result<SchemeReport, Unsupported> {
                Err(Unsupported::new("bad", "never runs"))
            }
        }
        let mut reg = SchemeRegistry::new();
        assert!(matches!(
            reg.register(BadId),
            Err(RegistryError::InvalidId(_))
        ));
    }

    #[test]
    fn sr_scheme_runs_in_place_and_matches_recovery() {
        let seed = 3;
        let sr = Sr::new();
        let mut net = holed_network(6, 6, seed);
        let before = net.stats();
        let via_trait = sr.run(&mut net, seed, DriveMode::Classic).unwrap();
        // The &mut contract: `net` now *is* the recovered network.
        assert_eq!(net.stats(), via_trait.final_stats);
        assert_eq!(before, via_trait.initial_stats);
        // Byte-identical to the direct driver path.
        let direct = Recovery::new(
            holed_network(6, 6, seed),
            SrConfig::default().with_seed(seed),
        )
        .unwrap()
        .run();
        assert_eq!(via_trait, direct);
        // Change-driven mode maps to run_adaptive.
        assert!(sr.supports_change_driven());
        let mut net2 = holed_network(6, 6, seed);
        let adaptive = sr.run(&mut net2, seed, DriveMode::ChangeDriven).unwrap();
        assert_eq!(
            adaptive.metrics.ignoring_rounds(),
            direct.metrics.ignoring_rounds()
        );
    }

    #[test]
    fn sr_sc_supports_is_honored() {
        let sc = SrSc::new();
        // Odd x odd full grids only have the dual-path structure.
        let err = sc.supports(&NetworkSpec::full(5, 5)).unwrap_err();
        assert!(err.to_string().contains("single Hamilton cycle"));
        assert!(sc.supports(&NetworkSpec::full(6, 6)).is_ok());
        // Masked regions ride the virtual ring.
        let spec = NetworkSpec::masked(RegionMask::l_shape(8, 8));
        assert!(sc.supports(&spec).is_ok());
        assert_eq!(spec.cols(), 8);
        assert_eq!(spec.rows(), 8);
        // run refuses what supports refuses.
        let sys = GridSystem::new(5, 5, 4.4721).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        assert!(sc.run(&mut net, 1, DriveMode::Classic).is_err());
        // ...and the caller's network is still usable afterwards.
        assert_eq!(net.stats().vacant, 0);
        // No change-driven driver.
        assert!(!sc.supports_change_driven());
        let mut net6 = holed_network(6, 6, 2);
        assert!(sc.run(&mut net6, 2, DriveMode::ChangeDriven).is_err());
    }

    #[test]
    fn details_downcast_and_report_equality_ignores_them() {
        #[derive(Debug)]
        struct Extra(u32);
        let sr = Sr::new();
        let mut a_net = holed_network(4, 4, 9);
        let mut b_net = holed_network(4, 4, 9);
        let a = sr.run(&mut a_net, 9, DriveMode::Classic).unwrap();
        let mut b = sr.run(&mut b_net, 9, DriveMode::Classic).unwrap();
        assert!(a.details.is_none());
        b.details = SchemeDetails::new(Extra(7));
        assert_eq!(b.details.get::<Extra>().unwrap().0, 7);
        assert_eq!(a, b, "details are excluded from report equality");
        assert!(format!("{:?}", b.details).contains("Extra"));
        assert!(!b.to_string().is_empty());
    }

    #[test]
    fn builders_fold_config() {
        let sr = Sr::builder()
            .election(wsn_grid::HeadElection::MaxEnergy)
            .spare_selection(crate::SpareSelection::FirstId)
            .max_rounds(500)
            .trace(true)
            .battery_dynamics(true)
            .build();
        assert_eq!(sr.config().max_rounds, 500);
        assert_eq!(sr.config().spare_selection, crate::SpareSelection::FirstId);
        assert!(sr.config().trace);
        assert!(sr.config().battery_dynamics);
        let sc = SrSc::builder().max_rounds(123).build_shortcut();
        assert_eq!(sc.config().max_rounds, 123);
        assert_eq!(SrSc::from_config(sc.config().clone()).id(), "sr-sc");
        assert_eq!(Sr::from_config(SrConfig::default()).label(), "SR");
    }

    #[test]
    fn drive_mode_and_unsupported_display() {
        assert_eq!(DriveMode::default(), DriveMode::Classic);
        assert_eq!(DriveMode::Classic.to_string(), "classic");
        assert_eq!(DriveMode::ChangeDriven.to_string(), "change-driven");
        let u = Unsupported::new("vf", "no reason");
        assert!(u.to_string().contains("vf"));
        let from_sr: Unsupported = SrError::ShortcutNeedsCycle.into();
        assert_eq!(from_sr.scheme, "sr");
    }
}
