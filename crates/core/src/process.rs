//! Replacement-process bookkeeping.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_grid::GridCoord;

/// Dense identifier of a replacement process within one run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(u64);

impl ProcessId {
    /// Creates an id from its dense index.
    pub const fn new(index: u64) -> ProcessId {
        ProcessId(index)
    }

    /// The raw index.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Lifecycle state of a replacement process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessStatus {
    /// Still cascading (or waiting for a blocking hole to fill).
    Active,
    /// A spare reached the cascade — the hole chain is fully repaired.
    Converged,
    /// The walk exhausted the structure without finding a spare, or had
    /// no occupied cell to relay through.
    Failed,
}

impl ProcessStatus {
    /// `true` for [`ProcessStatus::Converged`].
    pub fn is_converged(self) -> bool {
        matches!(self, ProcessStatus::Converged)
    }
}

impl fmt::Display for ProcessStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessStatus::Active => write!(f, "active"),
            ProcessStatus::Converged => write!(f, "converged"),
            ProcessStatus::Failed => write!(f, "failed"),
        }
    }
}

/// Per-process summary included in the recovery report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessSummary {
    /// Process id (dense per run).
    pub id: ProcessId,
    /// The hole that triggered the process.
    pub hole: GridCoord,
    /// Cell of the head that initiated it.
    pub initiator: GridCoord,
    /// Round the process was initiated in.
    pub initiated_round: u64,
    /// Round the process ended (converged/failed); `None` while active.
    pub ended_round: Option<u64>,
    /// Final status.
    pub status: ProcessStatus,
    /// Backward hops walked (1 hop = the initiator supplied the spare —
    /// Theorem 2's `i`).
    pub hops: u64,
    /// Node movements performed for this process.
    pub moves: u64,
    /// Total distance moved, meters.
    pub distance: f64,
}

impl fmt::Display for ProcessSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hole {} ({}): {} hops, {} moves, {:.2} m",
            self.id, self.hole, self.status, self.hops, self.moves, self.distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_ordering() {
        assert_eq!(ProcessId::new(5).raw(), 5);
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert_eq!(ProcessId::new(3).to_string(), "#3");
    }

    #[test]
    fn status_display_and_predicates() {
        assert!(ProcessStatus::Converged.is_converged());
        assert!(!ProcessStatus::Failed.is_converged());
        assert!(!ProcessStatus::Active.is_converged());
        for s in [
            ProcessStatus::Active,
            ProcessStatus::Converged,
            ProcessStatus::Failed,
        ] {
            assert!(!s.to_string().is_empty());
        }
    }

    #[test]
    fn summary_display_mentions_hole() {
        let s = ProcessSummary {
            id: ProcessId::new(0),
            hole: GridCoord::new(2, 3),
            initiator: GridCoord::new(2, 2),
            initiated_round: 0,
            ended_round: Some(3),
            status: ProcessStatus::Converged,
            hops: 2,
            moves: 2,
            distance: 9.5,
        };
        let text = s.to_string();
        assert!(text.contains("(2, 3)"));
        assert!(text.contains("converged"));
    }
}
