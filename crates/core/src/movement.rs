//! Mobility control for a single replacement hop (the paper's §4
//! "Implementation Issue").
//!
//! "To control the moving distance, each spare node moves straightforward
//! to the central area of the target grid" — the destination is drawn
//! uniformly from the concentric `(3/4)r × (3/4)r` square of the target
//! cell, which bounds every hop between `r/4` and `(√58/4)·r` and
//! averages ≈ `1.08·r` (see [`wsn_geometry::CellGeometry`] for the
//! derivation).

use wsn_geometry::{sample, Point2};
use wsn_grid::{GridCoord, GridSystem};
use wsn_simcore::SimRng;

/// Draws a movement destination in the central area of `target`
/// (§5 of the paper: "each movement of node u from one grid to its
/// neighbor will randomly select the destination location in the central
/// area of the target grid").
///
/// # Panics
///
/// Panics when `target` is outside `system` (protocol and network are
/// built from the same dimensions, so this indicates a wiring bug).
pub fn movement_target(system: &GridSystem, target: GridCoord, rng: &mut SimRng) -> Point2 {
    let rect = system
        .cell_rect(target)
        .expect("movement target must be a grid cell");
    sample::point_in_central_area(&rect, rng.uniform_f64(), rng.uniform_f64())
}

/// Empirical mean per-hop distance between uniform central-area points of
/// 4-adjacent cells, estimated with `samples` Monte-Carlo draws.
///
/// The paper adopts `1.08·r`; this estimator lets tests and EXPERIMENTS.md
/// quantify the (small) gap between that constant and the exact model.
pub fn empirical_avg_hop_distance(r: f64, samples: usize, rng: &mut SimRng) -> f64 {
    assert!(r.is_finite() && r > 0.0, "cell side must be positive");
    assert!(samples > 0, "need at least one sample");
    let geom = wsn_geometry::CellGeometry::new(Point2::ORIGIN, r).expect("valid side");
    let from_cell = geom.cell_rect(0, 0);
    let to_cell = geom.cell_rect(1, 0);
    let mut total = 0.0;
    for _ in 0..samples {
        let a = sample::point_in_central_area(&from_cell, rng.uniform_f64(), rng.uniform_f64());
        let b = sample::point_in_central_area(&to_cell, rng.uniform_f64(), rng.uniform_f64());
        total += a.distance(b);
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geometry::CellGeometry;

    #[test]
    fn targets_land_in_central_area() {
        let sys = GridSystem::new(4, 4, 4.0).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let cell = GridCoord::new(2, 1);
        let central = sys.cell_rect(cell).unwrap().shrunk(0.75).unwrap();
        for _ in 0..500 {
            let p = movement_target(&sys, cell, &mut rng);
            assert!(central.contains_closed(p), "{p} outside {central}");
        }
    }

    #[test]
    fn hop_distance_within_paper_bounds() {
        let r = 4.4721;
        let sys = GridSystem::new(3, 3, r).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let geom = sys.geometry();
        for _ in 0..500 {
            let a = movement_target(&sys, GridCoord::new(0, 0), &mut rng);
            let b = movement_target(&sys, GridCoord::new(1, 0), &mut rng);
            let d = a.distance(b);
            assert!(d >= geom.min_move_distance() - 1e-9);
            assert!(d <= geom.max_move_distance() + 1e-9);
        }
    }

    #[test]
    fn empirical_average_near_papers_constant() {
        let mut rng = SimRng::seed_from_u64(3);
        let r = 10.0;
        let avg = empirical_avg_hop_distance(r, 200_000, &mut rng);
        let factor = avg / r;
        // The paper uses 1.08; the exact model (uniform central-area
        // endpoints in 4-adjacent cells) gives about 1.050. We follow the
        // paper's constant in the analytical overlays and document the 3%
        // gap in EXPERIMENTS.md.
        assert!(
            (factor - 1.050).abs() < 0.01,
            "empirical factor {factor} too far from exact 1.050"
        );
        assert!(
            (factor - CellGeometry::AVG_MOVE_FACTOR).abs() < 0.04,
            "empirical factor {factor} too far from the paper's 1.08"
        );
        assert!(factor > CellGeometry::MIN_MOVE_FACTOR);
        assert!(factor < CellGeometry::MAX_MOVE_FACTOR);
    }

    #[test]
    #[should_panic(expected = "grid cell")]
    fn out_of_bounds_target_panics() {
        let sys = GridSystem::new(2, 2, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        movement_target(&sys, GridCoord::new(5, 5), &mut rng);
    }
}
