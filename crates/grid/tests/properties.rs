//! Property-based tests for the virtual-grid substrate.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wsn_geometry::Point2;
use wsn_grid::{
    deploy, GridCoord, GridNetwork, GridSystem, HeadElection, HoleSet, RegionMask, RegionShape,
};
use wsn_simcore::{FaultEvent, NodeId, SimRng};

fn dims() -> impl Strategy<Value = (u16, u16)> {
    (1u16..12, 1u16..12)
}

/// A random mask built from rectangle differences and unions, with at
/// least one enabled cell restored at a random coordinate.
fn random_mask(cols: u16, rows: u16, seed: u64) -> RegionMask {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xfeed_f00d);
    let mut mask = RegionMask::full(cols, rows);
    for _ in 0..1 + rng.range_usize(3) {
        let x0 = rng.range_usize(cols as usize) as u16;
        let y0 = rng.range_usize(rows as usize) as u16;
        let x1 = x0 + rng.range_usize((cols - x0) as usize) as u16;
        let y1 = y0 + rng.range_usize((rows - y0) as usize) as u16;
        mask = mask.difference_rect(x0, y0, x1, y1);
    }
    if mask.enabled_count() == 0 {
        let x = rng.range_usize(cols as usize) as u16;
        let y = rng.range_usize(rows as usize) as u16;
        mask = mask.union_rect(x, y, x, y);
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deployment_preserves_invariants((cols, rows) in dims(), count in 0usize..400, seed in 0u64..1000) {
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform(&sys, count, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        net.debug_invariants();
        prop_assert_eq!(net.node_count(), count);
        prop_assert_eq!(net.enabled_count(), count);
        let stats = net.stats();
        prop_assert_eq!(stats.occupied + stats.vacant, sys.cell_count());
        prop_assert_eq!(stats.spares, stats.enabled - stats.occupied);
    }

    #[test]
    fn masked_deployment_never_places_in_disabled_cells(
        (cols, rows) in (2u16..12, 2u16..12), count in 0usize..300, seed in 0u64..1000,
    ) {
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        let mask = random_mask(cols, rows, seed);
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform_masked(&sys, &mask, count, &mut rng);
        for &p in &pos {
            prop_assert!(mask.is_enabled(sys.cell_of(p).unwrap()));
        }
        let net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
        net.debug_invariants();
        // Stats are over enabled cells only.
        let stats = net.stats();
        prop_assert_eq!(stats.occupied + stats.vacant, mask.enabled_count());
        prop_assert_eq!(stats.spares, stats.enabled - stats.occupied);
        // Every vacancy the index reports is an enabled cell.
        for c in net.vacant_iter() {
            prop_assert!(mask.is_enabled(c));
        }
        prop_assert_eq!(net.vacant_iter().collect::<Vec<_>>(), net.vacant_cells_scan());
    }

    #[test]
    fn masked_mutations_keep_nodes_out_of_disabled_cells(
        seed in 0u64..500, steps in 1usize..30, shape_idx in 0usize..4,
    ) {
        let shape = RegionShape::IRREGULAR[shape_idx];
        let (cols, rows) = (8u16, 8u16);
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        let mask = shape.build_mask(cols, rows);
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::per_cell_exact_masked(&sys, &mask, 2, &mut rng);
        let mut net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        let enabled_cells: Vec<GridCoord> = mask.iter_enabled().collect();
        for _ in 0..steps {
            // Random in-mask move; disabled targets must be rejected.
            let id = NodeId::new(rng.range_usize(net.node_count()) as u32);
            let target_cell = enabled_cells[rng.range_usize(enabled_cells.len())];
            let rect = sys.cell_rect(target_cell).unwrap();
            let dest = wsn_geometry::sample::point_in_rect(
                &rect, rng.uniform_f64(), rng.uniform_f64());
            if net.node(id).unwrap().status().is_enabled() {
                let out = net.move_node(id, dest).unwrap();
                prop_assert!(mask.is_enabled(out.to));
            }
            net.apply_fault(&FaultEvent::KillRandomEnabled { count: 1 }, &mut rng);
        }
        net.debug_invariants();
        for node in net.nodes() {
            if node.status().is_enabled() {
                prop_assert!(mask.is_enabled(sys.cell_of(node.position()).unwrap()));
            }
        }
    }

    #[test]
    fn election_heads_every_occupied_cell(
        (cols, rows) in dims(), count in 0usize..300, seed in 0u64..1000,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            HeadElection::FirstId,
            HeadElection::MaxEnergy,
            HeadElection::ClosestToCenter,
            HeadElection::Random,
        ][policy_idx];
        let sys = GridSystem::new(cols, rows, 1.5).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform(&sys, count, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        net.elect_all_heads(policy, &mut rng);
        net.debug_invariants();
        for c in sys.iter_coords() {
            let head = net.head_of(c).unwrap();
            prop_assert_eq!(head.is_some(), !net.is_vacant(c).unwrap());
        }
    }

    #[test]
    fn random_kills_preserve_invariants(
        (cols, rows) in dims(), count in 0usize..300,
        kills in 0usize..350, seed in 0u64..1000,
    ) {
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform(&sys, count, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        let killed = net.apply_fault(&FaultEvent::KillRandomEnabled { count: kills }, &mut rng);
        net.debug_invariants();
        prop_assert_eq!(killed.len(), kills.min(count));
        prop_assert_eq!(net.enabled_count(), count - killed.len());
        // Repair leaves every occupied cell headed again.
        net.repair_heads(HeadElection::FirstId, &mut rng);
        for c in sys.iter_coords() {
            prop_assert_eq!(net.head_of(c).unwrap().is_some(), !net.is_vacant(c).unwrap());
        }
    }

    #[test]
    fn moves_between_cells_preserve_population(
        seed in 0u64..500, steps in 1usize..30,
    ) {
        let sys = GridSystem::new(6, 6, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        let total = net.enabled_count();
        for _ in 0..steps {
            let id = NodeId::new(rng.range_u32(total as u32));
            let target = Point2::new(rng.uniform_in(0.0, 11.9), rng.uniform_in(0.0, 11.9));
            let before = net.cell_of_node(id).unwrap();
            let out = net.move_node(id, target).unwrap();
            prop_assert_eq!(out.from, before);
            net.debug_invariants();
        }
        prop_assert_eq!(net.enabled_count(), total);
    }

    #[test]
    fn incremental_occupancy_matches_full_scan_after_any_op_sequence(
        (cols, rows) in dims(), count in 0usize..250,
        seed in 0u64..1000, steps in 1usize..60,
    ) {
        // The tentpole invariant of the occupancy engine: after ANY
        // random sequence of deploys, faults, moves, and elections, the
        // incremental VacancySet / spare counters agree exactly with a
        // from-scratch full scan of the member table.
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform(&sys, count, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        prop_assert!(net.changed_cells().is_empty(), "fresh journal must be clean");
        let area = sys.area();
        for _ in 0..steps {
            match rng.range_u32(5) {
                0 => {
                    // Disable a random node (may already be disabled).
                    if count > 0 {
                        let id = NodeId::new(rng.range_u32(count as u32));
                        let _ = net.disable_node(id);
                    }
                }
                1 => {
                    // Move a random enabled node anywhere in the area.
                    if count > 0 {
                        let id = NodeId::new(rng.range_u32(count as u32));
                        let target = Point2::new(
                            rng.uniform_in(area.min().x, area.max().x * 0.9999),
                            rng.uniform_in(area.min().y, area.max().y * 0.9999),
                        );
                        let _ = net.move_node(id, target);
                    }
                }
                2 => {
                    let _ = net.apply_fault(
                        &FaultEvent::KillRandomEnabled { count: rng.range_usize(4) },
                        &mut rng,
                    );
                }
                3 => net.elect_all_heads(HeadElection::FirstId, &mut rng),
                _ => {
                    net.repair_heads(HeadElection::FirstId, &mut rng);
                }
            }
            // Index vs oracle, every step.
            prop_assert_eq!(net.vacant_iter().collect::<Vec<_>>(), net.vacant_cells_scan());
            prop_assert_eq!(
                net.vacant_iter().count(), net.vacant_count()
            );
            let mut enabled_scan = 0usize;
            let mut occupied_scan = 0usize;
            let mut spares_scan = 0usize;
            for c in sys.iter_coords() {
                let members = net.members(c).unwrap().len();
                enabled_scan += members;
                occupied_scan += usize::from(members > 0);
                spares_scan += members.saturating_sub(1);
                prop_assert_eq!(net.spare_count(c).unwrap(), members.saturating_sub(1));
                prop_assert_eq!(net.spare_iter(c).unwrap().count(), net.spare_count(c).unwrap());
            }
            prop_assert_eq!(net.enabled_count(), enabled_scan);
            prop_assert_eq!(net.occupied_cells(), occupied_scan);
            prop_assert_eq!(net.total_spares(), spares_scan);
            let stats = net.stats();
            prop_assert_eq!(stats.enabled, enabled_scan);
            prop_assert_eq!(stats.vacant, sys.cell_count() - occupied_scan);
            // Journal entries stay in range and deduplicated (full
            // index verification, including journal bits, lives in
            // debug_invariants).
            net.debug_invariants();
        }
        // A consumer that drains the journal ends up with pending state
        // matching reality.
        net.clear_changed_cells();
        prop_assert!(net.changed_cells().is_empty());
    }

    #[test]
    fn word_kernel_matches_journal_fold_and_scan_oracle(
        (cols, rows) in (2u16..12, 2u16..12), count in 0usize..250,
        seed in 0u64..1000, steps in 1usize..40, shape_idx in 0usize..5,
    ) {
        // The PR 7 kernel contract: after ANY sequence of deploys,
        // faults, and moves — on full and masked regions alike — the
        // word-level pending set (journal folds into a HoleSet), the
        // PR 2 journal fold (BTreeSet), the bulk word-detection kernels,
        // and the vacant_cells_scan() member-table oracle all agree.
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        // shape_idx 0 = the full rectangular region; 1..5 = the
        // irregular presets.
        let mask = if shape_idx == 0 {
            RegionMask::full(cols, rows)
        } else {
            RegionShape::IRREGULAR[shape_idx - 1].build_mask(cols, rows)
        };
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform_masked(&sys, &mask, count, &mut rng);
        let mut net = GridNetwork::with_mask(sys, mask, &pos).unwrap();
        // Seed both pending representations from the initial vacancies
        // (the same baseline every protocol takes).
        let mut kernel = HoleSet::new(sys.cell_count());
        kernel.assign_vacant(net.occupancy());
        let mut btree: BTreeSet<usize> = net.occupancy().iter_vacant().collect();
        let enabled_cells: Vec<GridCoord> = net.mask().iter_enabled().collect();
        for _ in 0..steps {
            match rng.range_u32(3) {
                0 => {
                    if count > 0 {
                        let id = NodeId::new(rng.range_u32(count as u32));
                        let _ = net.disable_node(id);
                    }
                }
                1 => {
                    if count > 0 {
                        let id = NodeId::new(rng.range_u32(count as u32));
                        let cell = enabled_cells[rng.range_usize(enabled_cells.len())];
                        let rect = sys.cell_rect(cell).unwrap();
                        let target = wsn_geometry::sample::point_in_rect(
                            &rect, rng.uniform_f64(), rng.uniform_f64());
                        let _ = net.move_node(id, target);
                    }
                }
                _ => {
                    let _ = net.apply_fault(
                        &FaultEvent::KillRandomEnabled { count: rng.range_usize(5) },
                        &mut rng,
                    );
                }
            }
            // Fold the same journal into both representations, then
            // clear it once.
            kernel.fold_changes(net.occupancy());
            for &c in net.changed_cells() {
                if net.occupancy().is_vacant(c as usize) {
                    btree.insert(c as usize);
                } else {
                    btree.remove(&(c as usize));
                }
            }
            net.clear_changed_cells();
            // kernel fold == BTreeSet fold, same ascending sweep order.
            prop_assert_eq!(
                kernel.iter().collect::<Vec<_>>(),
                btree.iter().copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(kernel.len(), btree.len());
            // Both == the member-table scan oracle.
            let scan: Vec<usize> = net
                .vacant_cells_scan()
                .into_iter()
                .map(|c| sys.index_of(c).unwrap())
                .collect();
            prop_assert_eq!(kernel.iter().collect::<Vec<_>>(), scan.clone());
            // Bulk word-detection kernels agree too (the vacancy words
            // already read disabled cells as occupied, so the masked
            // variant must coincide).
            let mut bulk = HoleSet::new(sys.cell_count());
            bulk.assign_vacant(net.occupancy());
            prop_assert_eq!(&bulk, &kernel);
            bulk.assign_vacant_masked(net.occupancy(), net.mask());
            prop_assert_eq!(bulk.iter().collect::<Vec<_>>(), scan);
            // Word-level spare scan == per-cell member-count probe.
            let spareful: Vec<GridCoord> = net.spareful_iter().collect();
            let spareful_scan: Vec<GridCoord> = sys
                .iter_coords()
                .filter(|&c| net.members(c).unwrap().len() >= 2)
                .collect();
            prop_assert_eq!(spareful, spareful_scan);
        }
    }

    #[test]
    fn reset_into_equals_freshly_built(
        (cols, rows) in (2u16..10, 2u16..10), count_a in 0usize..150,
        count_b in 0usize..150, seed in 0u64..1000, steps in 0usize..25,
        shape_idx in 0usize..5,
    ) {
        // The per-trial arena contract: however dirty the network is,
        // reset_into(positions) is indistinguishable from building a
        // fresh network over the same system/mask/positions.
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        let mask = if shape_idx == 0 {
            RegionMask::full(cols, rows)
        } else {
            RegionShape::IRREGULAR[shape_idx - 1].build_mask(cols, rows)
        };
        let mut rng = SimRng::seed_from_u64(seed);
        let pos_a = deploy::uniform_masked(&sys, &mask, count_a, &mut rng);
        let pos_b = deploy::uniform_masked(&sys, &mask, count_b, &mut rng);
        let mut net = GridNetwork::with_mask(sys, mask.clone(), &pos_a).unwrap();
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        let enabled_cells: Vec<GridCoord> = mask.iter_enabled().collect();
        for _ in 0..steps {
            match rng.range_u32(2) {
                0 => {
                    let _ = net.apply_fault(
                        &FaultEvent::KillRandomEnabled { count: rng.range_usize(4) },
                        &mut rng,
                    );
                }
                _ => {
                    if count_a > 0 {
                        let id = NodeId::new(rng.range_u32(count_a as u32));
                        let cell = enabled_cells[rng.range_usize(enabled_cells.len())];
                        let rect = sys.cell_rect(cell).unwrap();
                        let target = wsn_geometry::sample::point_in_rect(
                            &rect, rng.uniform_f64(), rng.uniform_f64());
                        let _ = net.move_node(id, target);
                    }
                }
            }
        }
        net.reset_into(&pos_b).unwrap();
        let fresh = GridNetwork::with_mask(sys, mask, &pos_b).unwrap();
        prop_assert_eq!(&net, &fresh);
        prop_assert!(net.changed_cells().is_empty());
        net.debug_invariants();
    }

    #[test]
    fn target_spares_hits_target((cols, rows) in (2u16..10, 2u16..10), target in 0usize..60, seed in 0u64..500) {
        let sys = GridSystem::new(cols, rows, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let pos = deploy::uniform_with_target_spares(&sys, target, 100_000, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        prop_assert_eq!(net.total_spares(), target);
    }

    #[test]
    fn cell_of_partition_is_total_and_unique(
        (cols, rows) in dims(),
        px in 0.0..1.0f64, py in 0.0..1.0f64,
    ) {
        let sys = GridSystem::new(cols, rows, 3.0).unwrap();
        let area = sys.area();
        let p = Point2::new(
            area.min().x + px * area.width() * 0.9999,
            area.min().y + py * area.height() * 0.9999,
        );
        let cell = sys.cell_of(p);
        prop_assert!(cell.is_some());
        let c = cell.unwrap();
        prop_assert!(sys.cell_rect(c).unwrap().contains(p));
        // No other cell contains it.
        for other in sys.iter_coords() {
            if other != c {
                prop_assert!(!sys.cell_rect(other).unwrap().contains(p));
            }
        }
    }
}

#[test]
fn with_holes_matches_requested_holes_exactly() {
    let sys = GridSystem::new(5, 5, 2.0).unwrap();
    let mut rng = SimRng::seed_from_u64(42);
    let holes = vec![
        GridCoord::new(0, 0),
        GridCoord::new(4, 4),
        GridCoord::new(2, 3),
    ];
    let pos = deploy::with_holes(&sys, &holes, 3, &mut rng);
    let net = GridNetwork::new(sys, &pos);
    let mut vacant: Vec<GridCoord> = net.vacant_iter().collect();
    vacant.sort();
    let mut expect = holes;
    expect.sort();
    assert_eq!(vacant, expect);
}
