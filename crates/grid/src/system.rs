//! Grid dimensions plus cell geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_geometry::{CellGeometry, Point2, Rect};

use crate::{Direction, GridCoord, GridError, Result};

/// The factor relating communication range to cell side in the GAF model:
/// `R = √5 · r`, i.e. the farthest pair of points in two 4-adjacent cells
/// are `√(r² + (2r)²) = √5·r` apart, so `R = √5·r` lets any node reach
/// every node of a neighboring cell.
pub const COMM_RANGE_FACTOR: f64 = 2.236_067_977_499_79; // √5

/// The larger factor (`2√2`) that diagonal-neighbor surveillance would
/// require; the paper explicitly declines it ("we do not pursue the
/// surveillance of diagonal neighboring grids … which requires a larger
/// communication range R = 2√2·r (> √5·r)").
pub const DIAGONAL_RANGE_FACTOR: f64 = 2.828_427_124_746_19; // 2√2

/// An immutable description of the virtual grid: `cols × rows` cells of
/// side `r`, anchored at the origin.
///
/// ```
/// use wsn_grid::GridSystem;
///
/// let sys = GridSystem::for_comm_range(16, 16, 10.0)?;
/// assert!((sys.cell_side() - 4.4721).abs() < 1e-3); // the paper's r
/// assert_eq!(sys.cell_count(), 256);
/// # Ok::<(), wsn_grid::GridError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSystem {
    cols: u16,
    rows: u16,
    geom: CellGeometry,
    comm_range: f64,
}

impl GridSystem {
    /// Creates a grid of `cols × rows` cells of side `r`, deriving the
    /// communication range `R = √5·r`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidDimensions`] when either dimension is
    /// zero, and [`GridError::InvalidRange`] when `r` is not positive and
    /// finite.
    pub fn new(cols: u16, rows: u16, r: f64) -> Result<GridSystem> {
        if cols == 0 || rows == 0 {
            return Err(GridError::InvalidDimensions {
                cols: cols as u32,
                rows: rows as u32,
            });
        }
        if !(r.is_finite() && r > 0.0) {
            return Err(GridError::InvalidRange { value: r });
        }
        let geom = CellGeometry::new(Point2::ORIGIN, r)
            .map_err(|_| GridError::InvalidRange { value: r })?;
        Ok(GridSystem {
            cols,
            rows,
            geom,
            comm_range: COMM_RANGE_FACTOR * r,
        })
    }

    /// Creates a grid sized from a node communication range `R`, using
    /// the paper's relation `r = R/√5` (§5 of the paper: `R = 10 m` gives
    /// `4.4721 m × 4.4721 m` cells).
    ///
    /// # Errors
    ///
    /// As for [`GridSystem::new`].
    pub fn for_comm_range(cols: u16, rows: u16, comm_range: f64) -> Result<GridSystem> {
        if !(comm_range.is_finite() && comm_range > 0.0) {
            return Err(GridError::InvalidRange { value: comm_range });
        }
        GridSystem::new(cols, rows, comm_range / COMM_RANGE_FACTOR)
    }

    /// Number of columns (`n` in the paper).
    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows (`m` in the paper).
    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Cell side `r`, meters.
    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.geom.side()
    }

    /// Node communication range `R = √5·r`, meters.
    #[inline]
    pub fn comm_range(&self) -> f64 {
        self.comm_range
    }

    /// The underlying cell geometry helper.
    #[inline]
    pub fn geometry(&self) -> &CellGeometry {
        &self.geom
    }

    /// Whether `coord` addresses a cell of this grid.
    #[inline]
    pub fn contains(&self, coord: GridCoord) -> bool {
        coord.x < self.cols && coord.y < self.rows
    }

    /// Dense row-major index of `coord` (for `Vec`-backed tables).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn index_of(&self, coord: GridCoord) -> Result<usize> {
        if !self.contains(coord) {
            return Err(GridError::OutOfBounds {
                coord,
                cols: self.cols,
                rows: self.rows,
            });
        }
        Ok(coord.y as usize * self.cols as usize + coord.x as usize)
    }

    /// Inverse of [`GridSystem::index_of`].
    ///
    /// # Panics
    ///
    /// Panics when `index >= cell_count()` (indices are produced
    /// internally, so an out-of-range index is a caller bug).
    pub fn coord_of(&self, index: usize) -> GridCoord {
        assert!(index < self.cell_count(), "cell index out of range");
        GridCoord::new(
            (index % self.cols as usize) as u16,
            (index / self.cols as usize) as u16,
        )
    }

    /// The whole surveillance area rectangle.
    pub fn area(&self) -> Rect {
        Rect::from_size(
            Point2::ORIGIN,
            self.cols as f64 * self.cell_side(),
            self.rows as f64 * self.cell_side(),
        )
        .expect("valid by construction")
    }

    /// Rectangle of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn cell_rect(&self, coord: GridCoord) -> Result<Rect> {
        self.index_of(coord)?;
        Ok(self.geom.cell_rect(coord.x as u32, coord.y as u32))
    }

    /// Center point of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn cell_center(&self, coord: GridCoord) -> Result<Point2> {
        Ok(self.cell_rect(coord)?.center())
    }

    /// The cell containing `p`, or `None` when `p` is outside the area.
    pub fn cell_of(&self, p: Point2) -> Option<GridCoord> {
        let (ix, iy) = self.geom.cell_index_of(p);
        if ix < 0 || iy < 0 || ix >= self.cols as i64 || iy >= self.rows as i64 {
            None
        } else {
            Some(GridCoord::new(ix as u16, iy as u16))
        }
    }

    /// The in-bounds neighbor of `coord` in `dir`.
    pub fn neighbor(&self, coord: GridCoord, dir: Direction) -> Option<GridCoord> {
        coord.step(dir).filter(|c| self.contains(*c))
    }

    /// All in-bounds 4-neighbors of `coord` (2 to 4 of them).
    pub fn neighbors(&self, coord: GridCoord) -> Vec<GridCoord> {
        Direction::ALL
            .iter()
            .filter_map(|&d| self.neighbor(coord, d))
            .collect()
    }

    /// Iterates all coordinates in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = GridCoord> + '_ {
        (0..self.cell_count()).map(|i| self.coord_of(i))
    }
}

impl fmt::Display for GridSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} grid, r={:.4} m, R={:.4} m",
            self.cols,
            self.rows,
            self.cell_side(),
            self.comm_range
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(GridSystem::new(0, 4, 1.0).is_err());
        assert!(GridSystem::new(4, 0, 1.0).is_err());
        assert!(GridSystem::new(4, 4, 0.0).is_err());
        assert!(GridSystem::new(4, 4, f64::NAN).is_err());
        assert!(GridSystem::for_comm_range(4, 4, -1.0).is_err());
    }

    #[test]
    fn papers_parameters() {
        // §5: "For the deployed sensors with communication range R = 10m,
        // we determine the grid size 4.4721m x 4.4721m".
        let sys = GridSystem::for_comm_range(16, 16, 10.0).unwrap();
        assert!((sys.cell_side() - 4.4721).abs() < 1e-4);
        assert!((sys.comm_range() - 10.0).abs() < 1e-12);
        assert_eq!(sys.cell_count(), 256);
    }

    #[test]
    fn range_factors() {
        assert!((COMM_RANGE_FACTOR - 5.0_f64.sqrt()).abs() < 1e-12);
        assert!((DIAGONAL_RANGE_FACTOR - 2.0 * 2.0_f64.sqrt()).abs() < 1e-12);
        // The paper's point: diagonal surveillance would need the larger
        // range (compared via integer-scaled constants to satisfy clippy's
        // const-assertion lint).
        assert!((DIAGONAL_RANGE_FACTOR * 1e12) as i64 > (COMM_RANGE_FACTOR * 1e12) as i64);
    }

    #[test]
    fn index_roundtrip_row_major() {
        let sys = GridSystem::new(5, 4, 1.0).unwrap();
        for i in 0..sys.cell_count() {
            let c = sys.coord_of(i);
            assert_eq!(sys.index_of(c).unwrap(), i);
        }
        assert_eq!(sys.index_of(GridCoord::new(1, 1)).unwrap(), 6);
        assert!(sys.index_of(GridCoord::new(5, 0)).is_err());
        assert!(sys.index_of(GridCoord::new(0, 4)).is_err());
    }

    #[test]
    #[should_panic(expected = "cell index out of range")]
    fn coord_of_out_of_range_panics() {
        let sys = GridSystem::new(2, 2, 1.0).unwrap();
        sys.coord_of(4);
    }

    #[test]
    fn cell_of_and_cell_rect_agree() {
        let sys = GridSystem::new(4, 5, 2.0).unwrap();
        for c in sys.iter_coords() {
            let center = sys.cell_center(c).unwrap();
            assert_eq!(sys.cell_of(center), Some(c));
        }
        assert_eq!(sys.cell_of(Point2::new(-0.1, 0.0)), None);
        assert_eq!(sys.cell_of(Point2::new(8.0, 0.0)), None); // right edge open
        assert_eq!(
            sys.cell_of(Point2::new(7.999, 9.999)),
            Some(GridCoord::new(3, 4))
        );
    }

    #[test]
    fn area_covers_all_cells() {
        let sys = GridSystem::new(3, 2, 2.0).unwrap();
        let area = sys.area();
        assert_eq!(area.width(), 6.0);
        assert_eq!(area.height(), 4.0);
        for c in sys.iter_coords() {
            let r = sys.cell_rect(c).unwrap();
            assert!(area.contains_closed(r.min()));
            assert!(area.contains_closed(r.max()));
        }
    }

    #[test]
    fn neighbors_corner_edge_interior() {
        let sys = GridSystem::new(4, 4, 1.0).unwrap();
        assert_eq!(sys.neighbors(GridCoord::new(0, 0)).len(), 2);
        assert_eq!(sys.neighbors(GridCoord::new(1, 0)).len(), 3);
        assert_eq!(sys.neighbors(GridCoord::new(1, 1)).len(), 4);
        assert_eq!(sys.neighbor(GridCoord::new(3, 3), Direction::East), None);
    }

    #[test]
    fn comm_range_reaches_neighbor_cells() {
        // Farthest pair of points in 4-adjacent cells is exactly sqrt(5) r.
        let sys = GridSystem::new(2, 1, 4.0).unwrap();
        let a = sys.cell_rect(GridCoord::new(0, 0)).unwrap();
        let b = sys.cell_rect(GridCoord::new(1, 0)).unwrap();
        let far = a.min().distance(b.max());
        assert!(far <= sys.comm_range() + 1e-9);
        assert!((far - sys.comm_range()).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_dims() {
        let sys = GridSystem::new(4, 5, 1.0).unwrap();
        assert!(sys.to_string().contains("4x5"));
    }
}
