//! Mutable network state over the virtual grid: nodes, occupancy, heads.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_geometry::Point2;
use wsn_simcore::{FaultEvent, NodeId, SensorNode, SimRng};

use crate::members::MemberTable;
use crate::{
    GridCoord, GridError, GridSystem, HeadElection, HoleSet, RegionMask, Result, VacancySet,
};

const WORD_BITS: usize = u64::BITS as usize;

/// The outcome of a completed node movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoveOutcome {
    /// Cell the node left.
    pub from: GridCoord,
    /// Cell the node arrived in.
    pub to: GridCoord,
    /// Distance covered, meters.
    pub distance: f64,
}

/// Snapshot of headline occupancy numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Enabled nodes.
    pub enabled: usize,
    /// Cells with at least one enabled node.
    pub occupied: usize,
    /// Cells with no enabled node (the holes).
    pub vacant: usize,
    /// Spare nodes (`enabled − occupied`): the paper's `N`.
    pub spares: usize,
}

/// The deployed network over a [`GridSystem`]: node table, per-cell
/// membership of enabled nodes, elected heads, and the incremental
/// occupancy index.
///
/// Invariants (checked by `debug_invariants` in tests):
///
/// * a node appears in exactly one cell's member list iff it is enabled,
///   and that cell contains its position;
/// * a cell's head, when set, is one of its members;
/// * a cell with no members ("vacant" — the paper's *hole*) has no head;
/// * the [`VacancySet`] bitset and the enabled counter agree with the
///   member table (every mutation path maintains them in O(1)).
///
/// Occupancy queries (`stats`, `vacant_count`, `total_spares`,
/// `spare_count`) are O(1); vacancy enumeration (`vacant_iter`) is
/// allocation-free; and the change journal ([`GridNetwork::changed_cells`])
/// lets round-based protocols track new/filled holes in O(changed) per
/// round instead of rescanning the grid.
///
/// ```
/// use wsn_grid::{GridNetwork, GridSystem, HeadElection};
/// use wsn_geometry::Point2;
/// use wsn_simcore::SimRng;
///
/// let sys = GridSystem::new(2, 2, 1.0)?;
/// let mut net = GridNetwork::new(sys, &[Point2::new(0.5, 0.5), Point2::new(0.6, 0.4)]);
/// let mut rng = SimRng::seed_from_u64(0);
/// net.elect_all_heads(HeadElection::FirstId, &mut rng);
/// assert_eq!(net.stats().spares, 1);
/// assert_eq!(net.vacant_count(), 3); // O(1), no scan
/// assert_eq!(net.vacant_iter().count(), 3); // row-major, no allocation
/// # Ok::<(), wsn_grid::GridError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridNetwork {
    system: GridSystem,
    nodes: Vec<SensorNode>,
    /// Enabled members per cell, dense row-major by cell index, packed
    /// into a flat struct-of-arrays pool (see [`crate::members`]).
    members: MemberTable,
    /// Elected head per cell.
    heads: Vec<Option<NodeId>>,
    /// One bit per deployed node, set ⇔ enabled: the rank/select
    /// surface [`GridNetwork::apply_fault`] samples random victims
    /// from without materializing an id list.
    enabled_bits: Vec<u64>,
    /// Vacancy bitset + change journal, maintained by every mutation.
    /// Disabled (masked-out) cells are permanently marked occupied here,
    /// so they never surface as holes through any vacancy query.
    occupancy: VacancySet,
    /// Enabled-node counter, maintained by every mutation.
    enabled: usize,
    /// The surveillance region: disabled cells hold no nodes and are not
    /// counted in occupancy statistics. [`RegionMask::is_full`] for the
    /// paper's rectangular setting.
    mask: RegionMask,
}

impl GridNetwork {
    /// Deploys nodes at `positions` (clamped into the surveillance area,
    /// so callers may pass raw generator output) with no heads elected
    /// yet, over the full rectangular region.
    pub fn new(system: GridSystem, positions: &[Point2]) -> GridNetwork {
        GridNetwork::with_mask(
            system,
            RegionMask::full(system.cols(), system.rows()),
            positions,
        )
        .expect("a full mask accepts every in-area position")
    }

    /// Deploys nodes at `positions` over the irregular region `mask`:
    /// disabled cells hold no nodes, never count as holes, and reject
    /// movement targets. Positions are clamped into the surveillance
    /// area like [`GridNetwork::new`]; use the `deploy::*_masked`
    /// generators to produce mask-respecting positions.
    ///
    /// # Errors
    ///
    /// [`GridError::MaskMismatch`] when `mask` and `system` disagree on
    /// dimensions, and [`GridError::CellDisabled`] when any (clamped)
    /// position lands in a disabled cell.
    pub fn with_mask(
        system: GridSystem,
        mask: RegionMask,
        positions: &[Point2],
    ) -> Result<GridNetwork> {
        mask.check_dims(system.cols(), system.rows())?;
        let cells = system.cell_count();
        let mut net = GridNetwork {
            system,
            nodes: Vec::new(),
            members: MemberTable::new(cells),
            heads: vec![None; cells],
            enabled_bits: Vec::new(),
            occupancy: VacancySet::new(cells),
            enabled: 0,
            mask,
        };
        net.reset_into(positions)?;
        Ok(net)
    }

    /// Clamps `raw` into the surveillance area and names its cell. The
    /// area rect is half-open per cell mapping; points on the top/right
    /// boundary are nudged inwards so they land in the last cell.
    fn clamp_position(system: &GridSystem, raw: Point2) -> (Point2, GridCoord) {
        let area = system.area();
        let mut p = area.clamp_point(raw);
        if p.x >= area.max().x {
            p.x = f64::from(f32::from_bits((p.x as f32).to_bits() - 1));
        }
        if p.y >= area.max().y {
            p.y = f64::from(f32::from_bits((p.y as f32).to_bits() - 1));
        }
        let cell = system
            .cell_of(p)
            .expect("clamped position must be inside the area");
        (p, cell)
    }

    /// Re-deploys the network at `positions` **in place**, reusing every
    /// allocation (node table, member pool, head slots, occupancy
    /// words): the per-trial arena. The result is indistinguishable from
    /// `GridNetwork::with_mask(system, mask, positions)` with the same
    /// system and mask — fresh nodes, no heads, clean change journal —
    /// but a campaign trial pays zero per-cell allocations to get there
    /// (the property tests pin the equality).
    ///
    /// # Errors
    ///
    /// [`GridError::CellDisabled`] when any (clamped) position lands in
    /// a disabled cell; the network is left unchanged in that case.
    pub fn reset_into(&mut self, positions: &[Point2]) -> Result<()> {
        // Validate first so a rejected deployment leaves the current
        // trial's state intact.
        for &raw in positions {
            let (_, cell) = GridNetwork::clamp_position(&self.system, raw);
            if !self.mask.is_enabled(cell) {
                return Err(GridError::CellDisabled { coord: cell });
            }
        }
        let cells = self.system.cell_count();
        self.nodes.clear();
        for (i, &raw) in positions.iter().enumerate() {
            let (p, _) = GridNetwork::clamp_position(&self.system, raw);
            self.nodes.push(SensorNode::new(NodeId::new(i as u32), p));
        }
        let system = &self.system;
        let nodes = &self.nodes;
        self.members.rebuild_with(cells, nodes.len(), |i| {
            let cell = system
                .cell_of(nodes[i].position())
                .expect("clamped position must be inside the area");
            system
                .index_of(cell)
                .expect("cell_of returns in-bounds coords")
        });
        self.heads.clear();
        self.heads.resize(cells, None);
        self.enabled_bits.clear();
        self.enabled_bits
            .resize(nodes.len().div_ceil(WORD_BITS), !0u64);
        if !nodes.len().is_multiple_of(WORD_BITS) {
            if let Some(last) = self.enabled_bits.last_mut() {
                *last = (1u64 << (nodes.len() % WORD_BITS)) - 1;
            }
        }
        self.enabled = nodes.len();
        self.occupancy.reset(cells);
        for idx in 0..cells {
            // Disabled cells read as occupied forever: no vacancy query
            // or change-journal consumer ever sees them as holes.
            if self.members.len_of(idx) > 0 || !self.mask.index_enabled(idx) {
                self.occupancy.set_occupied(idx);
            }
        }
        // A freshly deployed network starts with a clean journal: the
        // initial state is the consumer's baseline, not a change.
        self.occupancy.clear_changes();
        Ok(())
    }

    /// The surveillance region mask ([`RegionMask::is_full`] unless the
    /// network was built with [`GridNetwork::with_mask`]).
    #[inline]
    pub fn mask(&self) -> &RegionMask {
        &self.mask
    }

    /// Whether `coord` is an enabled (deployable) cell of the region.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn is_cell_enabled(&self, coord: GridCoord) -> Result<bool> {
        self.system.index_of(coord)?;
        Ok(self.mask.is_enabled(coord))
    }

    /// The grid description.
    #[inline]
    pub fn system(&self) -> &GridSystem {
        &self.system
    }

    /// All deployed nodes (enabled and disabled).
    #[inline]
    pub fn nodes(&self) -> &[SensorNode] {
        &self.nodes
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] for ids not deployed in this
    /// network.
    pub fn node(&self, id: NodeId) -> Result<&SensorNode> {
        self.nodes
            .get(id.index())
            .ok_or(GridError::UnknownNode { index: id.index() })
    }

    /// Number of deployed nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of enabled nodes — O(1), maintained incrementally.
    #[inline]
    pub fn enabled_count(&self) -> usize {
        self.enabled
    }

    /// The incremental occupancy index (vacancy bitset + change
    /// journal). Most callers use the convenience accessors
    /// ([`GridNetwork::vacant_iter`], [`GridNetwork::changed_cells`]);
    /// the raw index is exposed for index-level consumers.
    #[inline]
    pub fn occupancy(&self) -> &VacancySet {
        &self.occupancy
    }

    /// Cells whose occupancy toggled since the last
    /// [`GridNetwork::clear_changed_cells`], as dense row-major indices,
    /// deduplicated. Protocols use this to maintain pending-hole sets in
    /// O(changed) per round; read current vacancy from the index, not
    /// from the entry ordering.
    #[inline]
    pub fn changed_cells(&self) -> &[u32] {
        self.occupancy.changed_cells()
    }

    /// Empties the occupancy change journal (the consumer caught up).
    pub fn clear_changed_cells(&mut self) {
        self.occupancy.clear_changes();
    }

    /// Folds the change journal into a consumer's pending-hole set —
    /// cells that became vacant are inserted, filled cells removed —
    /// then clears the journal. O(changed). This is the canonical way a
    /// round-based protocol keeps its hole set current; current vacancy
    /// is read from the index, per the journal's hint semantics.
    pub fn drain_changed_cells_into(&mut self, pending: &mut std::collections::BTreeSet<usize>) {
        for &c in self.occupancy.changed_cells() {
            if self.occupancy.is_vacant(c as usize) {
                pending.insert(c as usize);
            } else {
                pending.remove(&(c as usize));
            }
        }
        self.occupancy.clear_changes();
    }

    /// Folds the change journal into a word-level pending-hole set and
    /// clears the journal — the [`HoleSet`] counterpart of
    /// [`GridNetwork::drain_changed_cells_into`]: one bit write per
    /// changed cell, no allocation, identical membership and sweep
    /// order.
    pub fn fold_changed_cells_into(&mut self, pending: &mut HoleSet) {
        pending.fold_changes(&self.occupancy);
        self.occupancy.clear_changes();
    }

    /// The cell currently containing enabled node `id`, or `None` when
    /// the node is disabled or unknown.
    pub fn cell_of_node(&self, id: NodeId) -> Option<GridCoord> {
        let node = self.nodes.get(id.index())?;
        if !node.status().is_enabled() {
            return None;
        }
        self.system.cell_of(node.position())
    }

    /// Enabled members of `coord`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn members(&self, coord: GridCoord) -> Result<&[NodeId]> {
        Ok(self.members.cell(self.system.index_of(coord)?))
    }

    /// The head of `coord`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn head_of(&self, coord: GridCoord) -> Result<Option<NodeId>> {
        Ok(self.heads[self.system.index_of(coord)?])
    }

    /// `true` when `coord` is an enabled cell holding no enabled node —
    /// the paper's *vacant grid* / *hole*. Disabled (masked-out) cells
    /// are never vacant: they are not part of the surveillance region.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn is_vacant(&self, coord: GridCoord) -> Result<bool> {
        Ok(self.occupancy.is_vacant(self.system.index_of(coord)?))
    }

    /// Iterates the vacant cells in row-major order without allocating,
    /// skipping fully-occupied 64-cell blocks via the vacancy bitset.
    pub fn vacant_iter(&self) -> impl Iterator<Item = GridCoord> + '_ {
        self.occupancy
            .iter_vacant()
            .map(|i| self.system.coord_of(i))
    }

    /// Number of vacant cells — O(1), maintained incrementally.
    #[inline]
    pub fn vacant_count(&self) -> usize {
        self.occupancy.vacant_count()
    }

    /// All vacant cells recomputed by a full scan of the member table,
    /// bypassing the incremental index. This is the pre-index O(cells)
    /// code path, kept as the correctness oracle for `debug_invariants`
    /// and the property tests, and as the baseline the occupancy bench
    /// measures the index against.
    pub fn vacant_cells_scan(&self) -> Vec<GridCoord> {
        (0..self.members.cells())
            .filter(|&i| self.members.len_of(i) == 0 && self.mask.index_enabled(i))
            .map(|i| self.system.coord_of(i))
            .collect()
    }

    /// Number of enabled cells with at least one enabled node — O(1).
    /// Disabled cells are excluded even though the underlying bitset
    /// marks them occupied.
    #[inline]
    pub fn occupied_cells(&self) -> usize {
        self.occupancy.occupied_count() - self.mask.disabled_count()
    }

    /// Spares in `coord`: enabled members that are not the head. When no
    /// head is elected yet, all members count as spares except the one
    /// that would be lost to head duty — the paper's `N` accounting uses
    /// occupancy, so this returns `max(len − 1, 0)` regardless of whether
    /// election ran.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn spare_count(&self, coord: GridCoord) -> Result<usize> {
        Ok(self.members(coord)?.len().saturating_sub(1))
    }

    /// Iterates the spare nodes of `coord` without allocating, in member
    /// order (members minus the head; when no head is set, all but the
    /// first member).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for coordinates outside the
    /// grid.
    pub fn spare_iter(&self, coord: GridCoord) -> Result<impl Iterator<Item = NodeId> + '_> {
        let idx = self.system.index_of(coord)?;
        let head = self.heads[idx];
        Ok(self
            .members
            .cell(idx)
            .iter()
            .copied()
            .enumerate()
            .filter(move |&(i, id)| match head {
                Some(h) => id != h,
                None => i != 0,
            })
            .map(|(_, id)| id))
    }

    /// The raw spare-availability words: one bit per cell, set ⇔ the
    /// cell holds ≥ 2 enabled members (at least one spare under the
    /// paper's occupancy accounting), same layout as
    /// [`VacancySet::vacant_words`]. Maintained incrementally by every
    /// membership mutation, so word-level spare scans cost `cells/64`
    /// word reads instead of a per-cell member-count probe.
    #[inline]
    pub fn spareful_words(&self) -> &[u64] {
        self.members.multi_words()
    }

    /// Iterates the cells holding at least one spare (≥ 2 members) in
    /// row-major order without allocating, skipping spare-less 64-cell
    /// blocks via [`GridNetwork::spareful_words`].
    pub fn spareful_iter(&self) -> impl Iterator<Item = GridCoord> + '_ {
        self.members
            .multi_words()
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| {
                let base = w * WORD_BITS;
                std::iter::successors((word != 0).then_some(word), |&rest| {
                    let next = rest & (rest - 1);
                    (next != 0).then_some(next)
                })
                .map(move |rest| base + rest.trailing_zeros() as usize)
            })
            .map(|i| self.system.coord_of(i))
    }

    /// Total spares in the network — the paper's `N`
    /// (`enabled − occupied`). O(1).
    #[inline]
    pub fn total_spares(&self) -> usize {
        self.enabled - self.occupied_cells()
    }

    /// Headline occupancy numbers — O(1), read from the index. All
    /// counts are over *enabled* (in-mask) cells: disabled cells appear
    /// in none of them.
    pub fn stats(&self) -> NetworkStats {
        let enabled = self.enabled;
        let occupied = self.occupied_cells();
        NetworkStats {
            enabled,
            occupied,
            vacant: self.mask.enabled_count() - occupied,
            spares: enabled - occupied,
        }
    }

    /// Elects a head in every occupied cell using `policy`.
    pub fn elect_all_heads(&mut self, policy: HeadElection, rng: &mut SimRng) {
        for idx in 0..self.members.cells() {
            let coord = self.system.coord_of(idx);
            let center = self
                .system
                .cell_center(coord)
                .expect("coord_of yields in-bounds coords");
            self.heads[idx] = policy.elect(self.members.cell(idx), &self.nodes, center, rng);
        }
    }

    /// Re-elects heads only in cells that have members but no head
    /// (after a head was disabled or moved away). Returns how many cells
    /// were repaired.
    pub fn repair_heads(&mut self, policy: HeadElection, rng: &mut SimRng) -> usize {
        let mut repaired = 0;
        for idx in 0..self.members.cells() {
            if self.heads[idx].is_none() && self.members.len_of(idx) > 0 {
                let coord = self.system.coord_of(idx);
                let center = self
                    .system
                    .cell_center(coord)
                    .expect("coord_of yields in-bounds coords");
                self.heads[idx] = policy.elect(self.members.cell(idx), &self.nodes, center, rng);
                repaired += 1;
            }
        }
        repaired
    }

    /// Makes `id` the head of `coord`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::OutOfBounds`] for bad coordinates and
    /// [`GridError::UnknownNode`] when `id` is not an enabled member of
    /// `coord`.
    pub fn set_head(&mut self, coord: GridCoord, id: NodeId) -> Result<()> {
        let idx = self.system.index_of(coord)?;
        if !self.members.cell(idx).contains(&id) {
            return Err(GridError::UnknownNode { index: id.index() });
        }
        self.heads[idx] = Some(id);
        Ok(())
    }

    /// Deploys one fresh, fully-charged node at `raw` (clamped into the
    /// surveillance area like [`GridNetwork::new`]) and returns its id.
    /// This is the open-system arrival path of the steady-state
    /// workloads: ids keep growing densely past the initial deployment,
    /// and every incremental index (members, enabled bitset, occupancy,
    /// change journal) is maintained in O(1).
    ///
    /// # Errors
    ///
    /// [`GridError::CellDisabled`] when the clamped position lands in a
    /// masked-out cell; the network is left unchanged.
    pub fn add_node(&mut self, raw: Point2) -> Result<NodeId> {
        self.add_node_with_battery(raw, wsn_simcore::Battery::default())
    }

    /// [`GridNetwork::add_node`] with an explicit battery (arrivals in
    /// depletion scenarios may come partially charged).
    ///
    /// # Errors
    ///
    /// [`GridError::CellDisabled`] when the clamped position lands in a
    /// masked-out cell; the network is left unchanged.
    pub fn add_node_with_battery(
        &mut self,
        raw: Point2,
        battery: wsn_simcore::Battery,
    ) -> Result<NodeId> {
        let (p, cell) = GridNetwork::clamp_position(&self.system, raw);
        if !self.mask.is_enabled(cell) {
            return Err(GridError::CellDisabled { coord: cell });
        }
        let id = NodeId::new(self.nodes.len() as u32);
        let idx = self
            .system
            .index_of(cell)
            .expect("clamped position cell is in bounds");
        self.nodes.push(SensorNode::with_battery(id, p, battery));
        self.members.push(idx, id);
        if self.enabled_bits.len() * WORD_BITS < self.nodes.len() {
            self.enabled_bits.push(0);
        }
        self.enabled_bits[id.index() / WORD_BITS] |= 1u64 << (id.index() % WORD_BITS);
        self.enabled += 1;
        self.occupancy.set_occupied(idx);
        Ok(id)
    }

    /// Disables a node, removing it from its cell's member list (and from
    /// head duty if it held it). Idempotent for already-disabled nodes.
    /// Returns the cell the node occupied, or `None` when it was already
    /// disabled.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] for undeployed ids.
    pub fn disable_node(&mut self, id: NodeId) -> Result<Option<GridCoord>> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(GridError::UnknownNode { index: id.index() })?;
        if !node.status().is_enabled() {
            return Ok(None);
        }
        node.disable();
        let pos = node.position();
        let cell = self
            .system
            .cell_of(pos)
            .expect("enabled node positions stay in the area");
        let idx = self.system.index_of(cell)?;
        self.members.remove(idx, id);
        if self.heads[idx] == Some(id) {
            self.heads[idx] = None;
        }
        self.enabled -= 1;
        self.enabled_bits[id.index() / WORD_BITS] &= !(1u64 << (id.index() % WORD_BITS));
        if self.members.len_of(idx) == 0 {
            self.occupancy.set_vacant(idx);
        }
        Ok(Some(cell))
    }

    /// Moves enabled node `id` to `target` (which must be inside the
    /// surveillance area and in an enabled cell), updating membership.
    /// If the node was its source cell's head, the source head slot is
    /// cleared; the caller decides the destination head (protocols set
    /// the arriving spare as the new head explicitly).
    ///
    /// **Obstacle-aware distance.** On masked networks, when the straight
    /// segment between the old and new position crosses a disabled cell,
    /// the reported [`MoveOutcome::distance`] is the detour the node must
    /// physically take: the 4-connected shortest path through enabled
    /// cells ([`RegionMask::grid_distance`]) scaled by the cell side —
    /// never less than the Euclidean chord. On full (rectangular)
    /// networks the distance is always the Euclidean chord, unchanged.
    /// When the region is *disconnected* and the two cells sit in
    /// different components, no in-region detour exists; the move is
    /// then billed the plain chord (read it as an out-of-band
    /// redeployment, e.g. aerial). Keep masks 4-connected — every
    /// [`RegionShape`](crate::RegionShape) preset is — when strict
    /// ground-travel accounting matters.
    ///
    /// # Errors
    ///
    /// [`GridError::UnknownNode`] for undeployed ids,
    /// [`GridError::NodeDisabled`] for disabled nodes,
    /// [`GridError::TargetOutsideArea`] when `target` falls outside the
    /// grid, and [`GridError::CellDisabled`] when it falls in a
    /// masked-out cell.
    pub fn move_node(&mut self, id: NodeId, target: Point2) -> Result<MoveOutcome> {
        let to_cell = self
            .system
            .cell_of(target)
            .ok_or(GridError::TargetOutsideArea)?;
        if !self.mask.is_enabled(to_cell) {
            return Err(GridError::CellDisabled { coord: to_cell });
        }
        let node = self
            .nodes
            .get(id.index())
            .ok_or(GridError::UnknownNode { index: id.index() })?;
        if !node.status().is_enabled() {
            return Err(GridError::NodeDisabled { index: id.index() });
        }
        let from_cell = self
            .system
            .cell_of(node.position())
            .expect("enabled node positions stay in the area");
        let from_idx = self.system.index_of(from_cell)?;
        let to_idx = self.system.index_of(to_cell)?;
        let from_pos = node.position();
        let mut distance = self.nodes[id.index()].move_to(target);
        if !self.mask.is_full()
            && from_idx != to_idx
            && !self
                .mask
                .segment_clear(self.system.cell_side(), from_pos, target)
        {
            // The chord crosses an obstacle: bill the detour through
            // enabled cells instead (never less than the chord).
            if let Some(hops) = self.mask.grid_distance(from_cell, to_cell) {
                distance = distance.max(hops as f64 * self.system.cell_side());
            }
        }
        if from_idx != to_idx {
            self.members.remove(from_idx, id);
            self.members.push(to_idx, id);
            if self.heads[from_idx] == Some(id) {
                self.heads[from_idx] = None;
            }
            if self.members.len_of(from_idx) == 0 {
                self.occupancy.set_vacant(from_idx);
            }
            self.occupancy.set_occupied(to_idx);
        }
        Ok(MoveOutcome {
            from: from_cell,
            to: to_cell,
            distance,
        })
    }

    /// Draws `amount` joules from a node's battery, returning `true`
    /// when the battery is depleted afterwards. The caller decides what
    /// depletion means (protocols with battery dynamics disable the
    /// node).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] for undeployed ids.
    pub fn draw_battery(&mut self, id: NodeId, amount: f64) -> Result<bool> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(GridError::UnknownNode { index: id.index() })?;
        node.battery_mut().draw(amount);
        Ok(node.battery().is_depleted())
    }

    /// Applies one fault event, returning the ids actually disabled.
    pub fn apply_fault(&mut self, event: &FaultEvent, rng: &mut SimRng) -> Vec<NodeId> {
        let victims: Vec<NodeId> = match event {
            FaultEvent::KillNodes(ids) => ids
                .iter()
                .copied()
                .filter(|id| {
                    self.nodes
                        .get(id.index())
                        .is_some_and(|n| n.status().is_enabled())
                })
                .collect(),
            FaultEvent::KillRandomEnabled { count } => {
                // Sample ordinals into the enabled population (the draw
                // sequence depends only on (n, k), so this consumes the
                // rng exactly like the old materialize-an-id-list path),
                // then resolve each ordinal with rank/select over the
                // enabled-node bitset: a word-popcount prefix built once,
                // a binary search plus an in-word select per victim. No
                // O(network) id list is allocated.
                let picks = rng.sample_indices(self.enabled, *count);
                let mut prefix = Vec::with_capacity(self.enabled_bits.len());
                let mut acc = 0u32;
                for &word in &self.enabled_bits {
                    prefix.push(acc);
                    acc += word.count_ones();
                }
                picks
                    .into_iter()
                    .map(|ordinal| {
                        let ordinal = ordinal as u32;
                        let w = prefix.partition_point(|&p| p <= ordinal) - 1;
                        let mut rest = self.enabled_bits[w];
                        for _ in 0..ordinal - prefix[w] {
                            rest &= rest - 1;
                        }
                        NodeId::new((w * WORD_BITS + rest.trailing_zeros() as usize) as u32)
                    })
                    .collect()
            }
            FaultEvent::KillRegion(disk) => self
                .nodes
                .iter()
                .filter(|n| n.status().is_enabled() && disk.contains(n.position()))
                .map(|n| n.id())
                .collect(),
        };
        for &id in &victims {
            self.disable_node(id)
                .expect("victims are deployed enabled nodes");
        }
        victims
    }

    /// Verifies the structural invariants; used by tests and proptests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn debug_invariants(&self) {
        self.members.verify();
        let mut seen = vec![false; self.nodes.len()];
        for idx in 0..self.members.cells() {
            let m = self.members.cell(idx);
            let coord = self.system.coord_of(idx);
            assert!(
                m.is_empty() || self.mask.index_enabled(idx),
                "disabled cell {coord} holds members"
            );
            for &id in m {
                assert!(
                    self.nodes[id.index()].status().is_enabled(),
                    "disabled node {id} in member list of {coord}"
                );
                assert!(!seen[id.index()], "node {id} in two member lists");
                seen[id.index()] = true;
                let cell = self
                    .system
                    .cell_of(self.nodes[id.index()].position())
                    .expect("member position inside area");
                assert_eq!(cell, coord, "node {id} listed in wrong cell");
            }
            if let Some(h) = self.heads[idx] {
                assert!(m.contains(&h), "head {h} of {coord} not a member");
            }
        }
        for node in &self.nodes {
            let i = node.id().index();
            if node.status().is_enabled() {
                assert!(
                    seen[i],
                    "enabled node {} missing from member lists",
                    node.id()
                );
            }
            assert_eq!(
                self.enabled_bits[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0,
                node.status().is_enabled(),
                "enabled bit for node {} out of sync",
                node.id()
            );
        }
        // The incremental index must agree with a full member-table scan
        // (disabled cells read as permanently occupied).
        self.occupancy
            .verify(|i| self.mask.index_enabled(i) && self.members.len_of(i) == 0);
        assert_eq!(
            self.enabled,
            self.members.total_members(),
            "enabled counter out of sync with member lists"
        );
        assert_eq!(
            self.enabled,
            self.enabled_bits
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>(),
            "enabled counter out of sync with the enabled-node bitset"
        );
        assert_eq!(
            self.vacant_iter().collect::<Vec<_>>(),
            self.vacant_cells_scan(),
            "indexed vacancy enumeration disagrees with the full scan"
        );
    }
}

impl fmt::Display for GridNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "network over {}: {} enabled, {} occupied, {} vacant, {} spares",
            self.system, s.enabled, s.occupied, s.vacant, s.spares
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geometry::Disk;

    fn two_by_two() -> (GridNetwork, SimRng) {
        let sys = GridSystem::new(2, 2, 1.0).unwrap();
        // Cell (0,0): nodes 0, 1. Cell (1,0): node 2. Cells (0,1), (1,1) vacant.
        let net = GridNetwork::new(
            sys,
            &[
                Point2::new(0.2, 0.2),
                Point2::new(0.8, 0.8),
                Point2::new(1.5, 0.5),
            ],
        );
        (net, SimRng::seed_from_u64(0))
    }

    #[test]
    fn deployment_indexes_members() {
        let (net, _) = two_by_two();
        net.debug_invariants();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.enabled_count(), 3);
        assert_eq!(net.members(GridCoord::new(0, 0)).unwrap().len(), 2);
        assert_eq!(net.members(GridCoord::new(1, 0)).unwrap().len(), 1);
        assert!(net.is_vacant(GridCoord::new(0, 1)).unwrap());
        assert_eq!(net.occupied_cells(), 2);
        assert_eq!(net.total_spares(), 1);
        let stats = net.stats();
        assert_eq!(stats.vacant, 2);
        assert_eq!(stats.spares, 1);
    }

    #[test]
    fn boundary_positions_are_clamped_inside() {
        let sys = GridSystem::new(2, 2, 1.0).unwrap();
        let net = GridNetwork::new(
            sys,
            &[
                Point2::new(2.0, 2.0),  // exact top-right corner
                Point2::new(5.0, -3.0), // far outside
            ],
        );
        net.debug_invariants();
        assert_eq!(net.cell_of_node(NodeId::new(0)), Some(GridCoord::new(1, 1)));
        assert_eq!(net.cell_of_node(NodeId::new(1)), Some(GridCoord::new(1, 0)));
    }

    #[test]
    fn election_and_repair() {
        let (mut net, mut rng) = two_by_two();
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        assert_eq!(
            net.head_of(GridCoord::new(0, 0)).unwrap(),
            Some(NodeId::new(0))
        );
        assert_eq!(net.head_of(GridCoord::new(0, 1)).unwrap(), None);
        assert_eq!(
            net.spare_iter(GridCoord::new(0, 0))
                .unwrap()
                .collect::<Vec<_>>(),
            vec![NodeId::new(1)]
        );
        // Disable the head; repair elects the spare.
        net.disable_node(NodeId::new(0)).unwrap();
        assert_eq!(net.head_of(GridCoord::new(0, 0)).unwrap(), None);
        assert_eq!(net.repair_heads(HeadElection::FirstId, &mut rng), 1);
        assert_eq!(
            net.head_of(GridCoord::new(0, 0)).unwrap(),
            Some(NodeId::new(1))
        );
        net.debug_invariants();
    }

    #[test]
    fn disable_is_idempotent_and_creates_holes() {
        let (mut net, _) = two_by_two();
        assert_eq!(
            net.disable_node(NodeId::new(2)).unwrap(),
            Some(GridCoord::new(1, 0))
        );
        assert_eq!(net.disable_node(NodeId::new(2)).unwrap(), None);
        assert!(net.is_vacant(GridCoord::new(1, 0)).unwrap());
        assert_eq!(net.vacant_count(), 3);
        assert!(net.disable_node(NodeId::new(99)).is_err());
        net.debug_invariants();
    }

    #[test]
    fn move_node_updates_membership_and_heads() {
        let (mut net, mut rng) = two_by_two();
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        // Move spare node 1 into vacant cell (0,1).
        let out = net
            .move_node(NodeId::new(1), Point2::new(0.5, 1.5))
            .unwrap();
        assert_eq!(out.from, GridCoord::new(0, 0));
        assert_eq!(out.to, GridCoord::new(0, 1));
        assert!(out.distance > 0.0);
        assert_eq!(
            net.members(GridCoord::new(0, 1)).unwrap(),
            &[NodeId::new(1)]
        );
        // New cell has no head until set explicitly.
        assert_eq!(net.head_of(GridCoord::new(0, 1)).unwrap(), None);
        net.set_head(GridCoord::new(0, 1), NodeId::new(1)).unwrap();
        assert_eq!(
            net.head_of(GridCoord::new(0, 1)).unwrap(),
            Some(NodeId::new(1))
        );
        net.debug_invariants();
    }

    #[test]
    fn move_head_clears_source_head_slot() {
        let (mut net, mut rng) = two_by_two();
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        // Node 2 is head of (1,0); move it north.
        net.move_node(NodeId::new(2), Point2::new(1.5, 1.5))
            .unwrap();
        assert_eq!(net.head_of(GridCoord::new(1, 0)).unwrap(), None);
        assert!(net.is_vacant(GridCoord::new(1, 0)).unwrap());
        net.debug_invariants();
    }

    #[test]
    fn move_validations() {
        let (mut net, _) = two_by_two();
        assert!(matches!(
            net.move_node(NodeId::new(0), Point2::new(10.0, 10.0)),
            Err(GridError::TargetOutsideArea)
        ));
        net.disable_node(NodeId::new(0)).unwrap();
        assert!(matches!(
            net.move_node(NodeId::new(0), Point2::new(0.5, 1.5)),
            Err(GridError::NodeDisabled { .. })
        ));
        assert!(matches!(
            net.move_node(NodeId::new(9), Point2::new(0.5, 1.5)),
            Err(GridError::UnknownNode { .. })
        ));
    }

    #[test]
    fn set_head_requires_membership() {
        let (mut net, _) = two_by_two();
        assert!(net.set_head(GridCoord::new(0, 0), NodeId::new(2)).is_err());
        assert!(net.set_head(GridCoord::new(0, 0), NodeId::new(1)).is_ok());
    }

    #[test]
    fn fault_kill_nodes_and_region() {
        let (mut net, mut rng) = two_by_two();
        let killed = net.apply_fault(&FaultEvent::KillNodes(vec![NodeId::new(0)]), &mut rng);
        assert_eq!(killed, vec![NodeId::new(0)]);
        // Region strike over cell (1,0).
        let disk = Disk::new(Point2::new(1.5, 0.5), 0.4).unwrap();
        let killed = net.apply_fault(&FaultEvent::KillRegion(disk), &mut rng);
        assert_eq!(killed, vec![NodeId::new(2)]);
        assert!(net.is_vacant(GridCoord::new(1, 0)).unwrap());
        net.debug_invariants();
    }

    #[test]
    fn kill_region_boundary_is_closed() {
        // 2x2 grid of 4 m cells. Node 0 at (0.5, 0.5) sits at distance
        // exactly 5 from the disk center (a 3-4-5 triangle, every
        // coordinate exactly representable) — closed containment must
        // kill it; node 1 is out of reach and survives.
        let sys = GridSystem::new(2, 2, 4.0).unwrap();
        let mut net = GridNetwork::new(sys, &[Point2::new(0.5, 0.5), Point2::new(7.75, 7.75)]);
        let mut rng = SimRng::seed_from_u64(0);
        let exact = Disk::new(Point2::new(3.5, 4.5), 5.0).unwrap();
        let killed = net.apply_fault(&FaultEvent::KillRegion(exact), &mut rng);
        assert_eq!(killed, vec![NodeId::new(0)]);
        assert_eq!(net.enabled_count(), 1);
        net.debug_invariants();
        // An epsilon-smaller radius misses the same on-rim node.
        let sys = GridSystem::new(2, 2, 4.0).unwrap();
        let mut fresh = GridNetwork::new(sys, &[Point2::new(0.5, 0.5)]);
        let shy = Disk::new(Point2::new(3.5, 4.5), 5.0 - 1e-9).unwrap();
        assert!(fresh
            .apply_fault(&FaultEvent::KillRegion(shy), &mut rng)
            .is_empty());
        fresh.debug_invariants();
    }

    #[test]
    fn moving_jammer_kills_on_rim_nodes_every_step() {
        use wsn_simcore::Jammer;
        // 8x1 strip, one node per cell at x = 0.5, 1.5, ..., 7.5, all on
        // y = 0.5. The jammer advances 1 m/round along the same line with
        // radius 0.5: at round t its rim touches the nodes at x = t ± 0.5
        // exactly. Closed containment ⇒ each node dies the first round
        // the rim reaches it, with no off-by-epsilon skips as the disk
        // translates.
        let sys = GridSystem::new(8, 1, 1.0).unwrap();
        let positions: Vec<Point2> = (0..8).map(|i| Point2::new(i as f64 + 0.5, 0.5)).collect();
        let mut net = GridNetwork::new(sys, &positions);
        let mut rng = SimRng::seed_from_u64(0);
        let jammer = Jammer {
            start: Point2::new(0.0, 0.5),
            velocity: wsn_geometry::Vec2::new(1.0, 0.0),
            radius: 0.5,
        };
        let plan = jammer.plan(0, 8).unwrap();
        let mut first_killed_at = [None; 8];
        for round in 0..8u64 {
            for event in plan.events_at(round) {
                for id in net.apply_fault(event, &mut rng) {
                    first_killed_at[id.index()] = Some(round);
                }
            }
            net.debug_invariants();
        }
        // Node i sits at x = i + 0.5; the rim first reaches it when the
        // center is at x = i, i.e. round i (touching counts). With an
        // open boundary every kill would slip a round late.
        for (i, round) in first_killed_at.iter().enumerate() {
            assert_eq!(*round, Some(i as u64), "node {i}");
        }
        assert_eq!(net.enabled_count(), 0);
    }

    #[test]
    fn fault_kill_random_saturates() {
        let (mut net, mut rng) = two_by_two();
        let killed = net.apply_fault(&FaultEvent::KillRandomEnabled { count: 100 }, &mut rng);
        assert_eq!(killed.len(), 3);
        assert_eq!(net.enabled_count(), 0);
        assert_eq!(net.occupied_cells(), 0);
        net.debug_invariants();
    }

    #[test]
    fn display_mentions_stats() {
        let (net, _) = two_by_two();
        let s = net.to_string();
        assert!(s.contains("3 enabled"));
        assert!(s.contains("2 vacant"));
    }

    #[test]
    fn fresh_network_has_clean_journal_and_consistent_index() {
        let (net, _) = two_by_two();
        assert!(net.changed_cells().is_empty());
        assert_eq!(net.vacant_count(), 2);
        assert_eq!(
            net.vacant_iter().collect::<Vec<_>>(),
            net.vacant_cells_scan()
        );
        assert_eq!(net.vacant_iter().count(), 2);
        assert_eq!(net.occupancy().occupied_count(), 2);
    }

    #[test]
    fn mutations_feed_the_change_journal() {
        let (mut net, _) = two_by_two();
        // Disabling the lone member of (1,0) opens a hole -> journaled.
        net.disable_node(NodeId::new(2)).unwrap();
        let idx_10 = net.system().index_of(GridCoord::new(1, 0)).unwrap() as u32;
        assert_eq!(net.changed_cells(), &[idx_10]);
        // Disabling one of two members of (0,0) changes nothing.
        net.disable_node(NodeId::new(0)).unwrap();
        assert_eq!(net.changed_cells(), &[idx_10]);
        net.clear_changed_cells();
        // Moving the last member of (0,0) into (0,1) journals both ends.
        net.move_node(NodeId::new(1), Point2::new(0.5, 1.5))
            .unwrap();
        let idx_00 = net.system().index_of(GridCoord::new(0, 0)).unwrap() as u32;
        let idx_01 = net.system().index_of(GridCoord::new(0, 1)).unwrap() as u32;
        let mut changed = net.changed_cells().to_vec();
        changed.sort_unstable();
        assert_eq!(changed, vec![idx_00, idx_01]);
        assert!(net.is_vacant(GridCoord::new(0, 0)).unwrap());
        assert!(!net.is_vacant(GridCoord::new(0, 1)).unwrap());
        net.debug_invariants();
    }

    #[test]
    fn spare_iter_with_and_without_head() {
        let (mut net, mut rng) = two_by_two();
        let c = GridCoord::new(0, 0);
        // No head yet: all but the first member.
        assert_eq!(
            net.spare_iter(c).unwrap().collect::<Vec<_>>(),
            vec![NodeId::new(1)]
        );
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        assert_eq!(
            net.spare_iter(c).unwrap().collect::<Vec<_>>(),
            vec![NodeId::new(1)]
        );
        assert_eq!(
            net.spare_iter(c).unwrap().count(),
            net.spare_count(c).unwrap()
        );
        assert!(net.spare_iter(GridCoord::new(9, 9)).is_err());
    }

    #[test]
    fn add_node_maintains_every_index() {
        let (mut net, _) = two_by_two();
        // Arrival into the vacant cell (0,1) fills the hole.
        let id = net.add_node(Point2::new(0.5, 1.5)).unwrap();
        assert_eq!(id, NodeId::new(3));
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.enabled_count(), 4);
        assert!(!net.is_vacant(GridCoord::new(0, 1)).unwrap());
        assert_eq!(net.members(GridCoord::new(0, 1)).unwrap(), &[id]);
        // The journal records the fill for change-driven consumers.
        let idx_01 = net.system().index_of(GridCoord::new(0, 1)).unwrap() as u32;
        assert!(net.changed_cells().contains(&idx_01));
        net.debug_invariants();
        // Arrival into an occupied cell adds a spare.
        let spare = net.add_node(Point2::new(0.4, 0.4)).unwrap();
        assert_eq!(spare, NodeId::new(4));
        assert_eq!(net.spare_count(GridCoord::new(0, 0)).unwrap(), 2);
        net.debug_invariants();
        // Out-of-area positions clamp like the deployment path.
        let clamped = net.add_node(Point2::new(99.0, -5.0)).unwrap();
        assert_eq!(net.cell_of_node(clamped), Some(GridCoord::new(1, 0)));
        net.debug_invariants();
    }

    #[test]
    fn add_node_crosses_word_boundary() {
        // Push the node count past 64 so the enabled bitset must grow.
        let sys = GridSystem::new(2, 2, 1.0).unwrap();
        let mut net = GridNetwork::new(sys, &[Point2::new(0.5, 0.5)]);
        for i in 0..70 {
            let x = 0.1 + 1.8 * (i as f64 / 70.0);
            net.add_node(Point2::new(x, 1.5)).unwrap();
        }
        assert_eq!(net.enabled_count(), 71);
        net.debug_invariants();
        // Disable one arrival past the boundary; the bitset stays in sync.
        net.disable_node(NodeId::new(66)).unwrap();
        assert_eq!(net.enabled_count(), 70);
        net.debug_invariants();
    }

    #[test]
    fn add_node_rejects_masked_cells_and_leaves_state_intact() {
        use crate::RegionMask;
        let sys = GridSystem::new(4, 4, 1.0).unwrap();
        let mask = RegionMask::full(4, 4).difference_rect(2, 0, 3, 3);
        let mut net = GridNetwork::with_mask(sys, mask, &[Point2::new(0.5, 0.5)]).unwrap();
        assert!(matches!(
            net.add_node(Point2::new(3.5, 0.5)),
            Err(GridError::CellDisabled { .. })
        ));
        assert_eq!(net.node_count(), 1);
        assert_eq!(net.enabled_count(), 1);
        net.debug_invariants();
    }

    #[test]
    fn add_node_with_battery_keeps_charge() {
        let (mut net, _) = two_by_two();
        let weak = wsn_simcore::Battery::new(5.0);
        let id = net
            .add_node_with_battery(Point2::new(0.5, 1.5), weak)
            .unwrap();
        assert_eq!(net.node(id).unwrap().battery().capacity(), 5.0);
        assert!(net.draw_battery(id, 10.0).unwrap());
        net.debug_invariants();
    }

    #[test]
    fn masked_network_excludes_disabled_cells_everywhere() {
        use crate::RegionMask;
        // 4x4 with the right half disabled: 8 enabled cells.
        let sys = GridSystem::new(4, 4, 1.0).unwrap();
        let mask = RegionMask::full(4, 4).difference_rect(2, 0, 3, 3);
        // One node in (0,0); the rest of the enabled region is vacant.
        let net = GridNetwork::with_mask(sys, mask.clone(), &[Point2::new(0.5, 0.5)]).unwrap();
        net.debug_invariants();
        let stats = net.stats();
        assert_eq!(stats.enabled, 1);
        assert_eq!(stats.occupied, 1);
        assert_eq!(stats.vacant, 7, "only enabled cells can be holes");
        assert_eq!(stats.spares, 0);
        assert_eq!(net.vacant_count(), 7);
        assert_eq!(
            net.vacant_iter().collect::<Vec<_>>(),
            net.vacant_cells_scan()
        );
        assert!(net.vacant_iter().all(|c| net.is_cell_enabled(c).unwrap()));
        // Disabled cells are never vacant and never enabled.
        assert!(!net.is_vacant(GridCoord::new(3, 3)).unwrap());
        assert!(!net.is_cell_enabled(GridCoord::new(3, 3)).unwrap());
        assert!(net.is_cell_enabled(GridCoord::new(9, 9)).is_err());
    }

    #[test]
    fn masked_network_rejects_disabled_placements_and_moves() {
        use crate::RegionMask;
        let sys = GridSystem::new(4, 4, 1.0).unwrap();
        let mask = RegionMask::full(4, 4).difference_rect(2, 0, 3, 3);
        // A position in the disabled half is rejected at deployment.
        assert!(matches!(
            GridNetwork::with_mask(sys, mask.clone(), &[Point2::new(3.5, 0.5)]),
            Err(GridError::CellDisabled { .. })
        ));
        // Dimension mismatch is rejected.
        assert!(matches!(
            GridNetwork::with_mask(sys, RegionMask::full(5, 5), &[]),
            Err(GridError::MaskMismatch { .. })
        ));
        // A move into a disabled cell is rejected.
        let mut net = GridNetwork::with_mask(sys, mask, &[Point2::new(0.5, 0.5)]).unwrap();
        assert!(matches!(
            net.move_node(NodeId::new(0), Point2::new(2.5, 0.5)),
            Err(GridError::CellDisabled { .. })
        ));
        net.debug_invariants();
    }

    #[test]
    fn masked_move_bills_the_obstacle_detour() {
        use crate::RegionMask;
        // 5x1-style wall: a 5x3 grid with the middle column's top two
        // cells disabled forces a detour through the bottom row.
        let sys = GridSystem::new(5, 3, 1.0).unwrap();
        let mask = RegionMask::full(5, 3).difference_rect(2, 1, 2, 2);
        let net_pos = [Point2::new(0.5, 2.5)];
        let mut net = GridNetwork::with_mask(sys, mask.clone(), &net_pos).unwrap();
        // Move from (0,2) to (4,2): chord is ~4 m but the straight line
        // crosses the disabled (2,1)/(2,2) block, so the billed distance
        // is the 8-hop detour through the bottom row.
        let out = net
            .move_node(NodeId::new(0), Point2::new(4.5, 2.5))
            .unwrap();
        assert_eq!(out.to, GridCoord::new(4, 2));
        let hops = mask
            .grid_distance(GridCoord::new(0, 2), GridCoord::new(4, 2))
            .unwrap();
        assert_eq!(hops, 8);
        assert!((out.distance - 8.0).abs() < 1e-9, "got {}", out.distance);
        // A clear move on the same network stays Euclidean.
        let out = net
            .move_node(NodeId::new(0), Point2::new(3.5, 2.5))
            .unwrap();
        assert!((out.distance - 1.0).abs() < 1e-9);
        net.debug_invariants();
    }

    #[test]
    fn all_cells_disabled_or_vacant_degenerate_grid() {
        use crate::RegionMask;
        // Zero nodes on a mask with a single enabled cell: every cell of
        // the grid is disabled-or-vacant. Vacancy queries must stay
        // consistent and spare iteration empty.
        let sys = GridSystem::new(4, 4, 1.0).unwrap();
        let mask = RegionMask::full(4, 4)
            .difference_rect(0, 0, 3, 3)
            .union_rect(1, 2, 1, 2);
        assert_eq!(mask.enabled_count(), 1);
        let net = GridNetwork::with_mask(sys, mask, &[]).unwrap();
        net.debug_invariants();
        assert_eq!(net.vacant_count(), 1);
        assert_eq!(
            net.vacant_iter().collect::<Vec<_>>(),
            vec![GridCoord::new(1, 2)]
        );
        assert_eq!(
            net.vacant_iter().collect::<Vec<_>>(),
            net.vacant_cells_scan()
        );
        assert_eq!(net.occupied_cells(), 0);
        assert_eq!(net.total_spares(), 0);
        let stats = net.stats();
        assert_eq!((stats.enabled, stats.occupied, stats.vacant), (0, 0, 1));
        // Spare iteration over vacant and disabled cells yields nothing.
        assert_eq!(net.spare_iter(GridCoord::new(1, 2)).unwrap().count(), 0);
        assert_eq!(net.spare_iter(GridCoord::new(0, 0)).unwrap().count(), 0);
        assert_eq!(net.spare_count(GridCoord::new(0, 0)).unwrap(), 0);
    }

    #[test]
    fn one_by_n_strip_vacancy_and_spares() {
        // The 1xN degenerate strip: row-major order is the strip order;
        // vacant_iter and spare_iter behave exactly as on square grids.
        let sys = GridSystem::new(1, 6, 1.0).unwrap();
        let net = GridNetwork::new(
            sys,
            &[
                Point2::new(0.5, 0.5), // cell (0,0)
                Point2::new(0.2, 0.3), // cell (0,0) - spare
                Point2::new(0.5, 3.5), // cell (0,3)
            ],
        );
        net.debug_invariants();
        assert_eq!(net.vacant_count(), 4);
        assert_eq!(
            net.vacant_iter().collect::<Vec<_>>(),
            vec![
                GridCoord::new(0, 1),
                GridCoord::new(0, 2),
                GridCoord::new(0, 4),
                GridCoord::new(0, 5),
            ]
        );
        assert_eq!(
            net.vacant_iter().collect::<Vec<_>>(),
            net.vacant_cells_scan()
        );
        assert_eq!(
            net.spare_iter(GridCoord::new(0, 0))
                .unwrap()
                .collect::<Vec<_>>(),
            vec![NodeId::new(1)]
        );
        assert_eq!(net.spare_iter(GridCoord::new(0, 3)).unwrap().count(), 0);
        assert_eq!(net.total_spares(), 1);
        // The 1xN transpose behaves identically.
        let sys = GridSystem::new(6, 1, 1.0).unwrap();
        let net = GridNetwork::new(sys, &[Point2::new(2.5, 0.5)]);
        assert_eq!(net.vacant_count(), 5);
        assert_eq!(net.vacant_iter().count(), 5);
        net.debug_invariants();
    }

    #[test]
    fn o1_counters_track_mutations() {
        let (mut net, mut rng) = two_by_two();
        assert_eq!(net.total_spares(), 1);
        net.apply_fault(&FaultEvent::KillRandomEnabled { count: 1 }, &mut rng);
        assert_eq!(net.enabled_count(), 2);
        let stats = net.stats();
        assert_eq!(stats.enabled, 2);
        assert_eq!(stats.occupied + stats.vacant, 4);
        net.debug_invariants();
    }
}
