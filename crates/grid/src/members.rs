//! Struct-of-arrays member table: every cell's enabled members in one
//! flat `NodeId` pool.
//!
//! The seed kept `members: Vec<Vec<NodeId>>` — one heap allocation per
//! occupied cell, rebuilt from scratch every campaign trial, with cells
//! scattered across the heap. [`MemberTable`] packs all member lists
//! into a single pool with per-cell `(start, len, cap)` slabs:
//!
//! * **reads** are one slab load plus a contiguous slice — cache-dense
//!   row-major sweeps instead of a pointer chase per cell;
//! * **rebuilds** ([`MemberTable::rebuild_with`]) are two counting
//!   passes over the node list into the reused pool — zero per-cell
//!   allocations, which is what makes the per-trial arena
//!   (`GridNetwork::reset_into`) cheap;
//! * **moves** append in place while the slab has headroom; an
//!   overflowing cell relocates to a larger span taken from an intrusive
//!   free list of retired slabs (first-fit with split), so long repair
//!   cascades recycle the pool instead of growing it;
//! * a **spare-availability bitset** (one bit per cell, set ⇔ ≥ 2
//!   members) is maintained on every push/remove, giving word-level
//!   spare scans the same `u64`-block surface as the vacancy kernels.
//!
//! Ordering is load-bearing: `push` appends and `remove` shifts left,
//! exactly the `Vec::push` / `Vec::retain` semantics the protocols'
//! spare-selection order (and therefore the campaign goldens) depend
//! on. Equality is logical — two tables are equal when every cell holds
//! the same members in the same order, regardless of pool layout — so
//! an arena-reset network compares equal to a freshly built one.

use serde::{Deserialize, Serialize};
use wsn_simcore::NodeId;

const WORD_BITS: usize = u64::BITS as usize;
/// Smallest capacity granted when a cell outgrows its slab: small
/// enough to keep dense deployments tight, large enough that a repair
/// hop does not relocate the same cell repeatedly.
const MIN_GROW: u32 = 4;

/// A cell's slab in the pool: `pool[start..start+len]` holds the
/// members, `cap − len` slots of headroom follow.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Slab {
    start: u32,
    len: u32,
    cap: u32,
}

/// A retired span on the free list.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Span {
    start: u32,
    cap: u32,
}

/// Placeholder written into never-yet-assigned pool slots.
const POOL_SENTINEL: NodeId = NodeId::new(u32::MAX);

/// Struct-of-arrays per-cell membership (see the module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct MemberTable {
    /// All member ids, cell by cell, with per-slab headroom.
    pool: Vec<NodeId>,
    /// Per-cell slab descriptors, dense row-major.
    slabs: Vec<Slab>,
    /// Spans retired by slab relocations, available for reuse.
    free: Vec<Span>,
    /// One bit per cell, set ⇔ the cell holds ≥ 2 members (i.e. at
    /// least one spare under occupancy accounting).
    multi: Vec<u64>,
}

impl MemberTable {
    /// An empty table over `cells` cells.
    pub(crate) fn new(cells: usize) -> MemberTable {
        MemberTable {
            pool: Vec::new(),
            slabs: vec![Slab::default(); cells],
            free: Vec::new(),
            multi: vec![0u64; cells.div_ceil(WORD_BITS)],
        }
    }

    /// Number of cells tracked.
    #[inline]
    pub(crate) fn cells(&self) -> usize {
        self.slabs.len()
    }

    /// The members of cell `idx`, in insertion order.
    #[inline]
    pub(crate) fn cell(&self, idx: usize) -> &[NodeId] {
        let s = self.slabs[idx];
        &self.pool[s.start as usize..(s.start + s.len) as usize]
    }

    /// Number of members in cell `idx` — one slab load.
    #[inline]
    pub(crate) fn len_of(&self, idx: usize) -> usize {
        self.slabs[idx].len as usize
    }

    /// Total members across all cells (the enabled-node count).
    pub(crate) fn total_members(&self) -> usize {
        self.slabs.iter().map(|s| s.len as usize).sum()
    }

    /// The spare-availability words: one bit per cell, set ⇔ ≥ 2
    /// members, same layout as `VacancySet::vacant_words`.
    #[inline]
    pub(crate) fn multi_words(&self) -> &[u64] {
        &self.multi
    }

    /// Appends `id` to cell `idx` (`Vec::push` semantics), relocating
    /// the slab to a larger span when full. Amortized O(1).
    pub(crate) fn push(&mut self, idx: usize, id: NodeId) {
        let Slab { start, len, cap } = self.slabs[idx];
        if len < cap {
            self.pool[(start + len) as usize] = id;
        } else {
            let want = (cap * 2).max(MIN_GROW);
            let new_start = self.allocate(want);
            self.pool
                .copy_within(start as usize..(start + len) as usize, new_start as usize);
            self.pool[(new_start + len) as usize] = id;
            if cap > 0 {
                self.free.push(Span { start, cap });
            }
            self.slabs[idx].start = new_start;
            self.slabs[idx].cap = want;
        }
        self.slabs[idx].len += 1;
        if self.slabs[idx].len == 2 {
            self.multi[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
        }
    }

    /// Removes `id` from cell `idx`, shifting later members left
    /// (`Vec::retain` order semantics). Returns whether it was present.
    pub(crate) fn remove(&mut self, idx: usize, id: NodeId) -> bool {
        let Slab { start, len, .. } = self.slabs[idx];
        let (s, l) = (start as usize, len as usize);
        let Some(pos) = self.pool[s..s + l].iter().position(|&m| m == id) else {
            return false;
        };
        self.pool.copy_within(s + pos + 1..s + l, s + pos);
        self.slabs[idx].len -= 1;
        if self.slabs[idx].len == 1 {
            self.multi[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
        }
        true
    }

    /// Rebuilds the table in place for `node_count` nodes over `cells`
    /// cells: `cell_of(i)` names node `i`'s cell. Two counting passes
    /// lay out exact-fit contiguous slabs in the reused pool — no
    /// per-cell allocation, empty free list. Node order within a cell is
    /// ascending id, identical to pushing nodes in id order.
    pub(crate) fn rebuild_with(
        &mut self,
        cells: usize,
        node_count: usize,
        mut cell_of: impl FnMut(usize) -> usize,
    ) {
        self.slabs.clear();
        self.slabs.resize(cells, Slab::default());
        self.free.clear();
        self.multi.clear();
        self.multi.resize(cells.div_ceil(WORD_BITS), 0u64);
        // Pass 1: count members per cell (cap doubles as the counter).
        for i in 0..node_count {
            self.slabs[cell_of(i)].cap += 1;
        }
        // Exact-fit prefix layout.
        let mut offset = 0u32;
        for (idx, slab) in self.slabs.iter_mut().enumerate() {
            slab.start = offset;
            offset += slab.cap;
            if slab.cap >= 2 {
                self.multi[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
            }
        }
        self.pool.clear();
        self.pool.resize(node_count, POOL_SENTINEL);
        // Pass 2: fill in node-id order.
        for i in 0..node_count {
            let slab = &mut self.slabs[cell_of(i)];
            self.pool[(slab.start + slab.len) as usize] = NodeId::new(i as u32);
            slab.len += 1;
        }
    }

    /// Takes a span of at least `want` slots: first-fit from the free
    /// list (splitting oversized spans), else fresh pool growth.
    fn allocate(&mut self, want: u32) -> u32 {
        if let Some(i) = self.free.iter().position(|s| s.cap >= want) {
            let span = self.free.swap_remove(i);
            if span.cap > want {
                self.free.push(Span {
                    start: span.start + want,
                    cap: span.cap - want,
                });
            }
            return span.start;
        }
        let start = self.pool.len() as u32;
        self.pool
            .resize(self.pool.len() + want as usize, POOL_SENTINEL);
        start
    }

    /// Verifies slab/free-list/bitset consistency; used by
    /// `GridNetwork::debug_invariants`.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency.
    pub(crate) fn verify(&self) {
        for (idx, s) in self.slabs.iter().enumerate() {
            assert!(s.len <= s.cap, "slab {idx} length exceeds capacity");
            assert!(
                (s.start + s.cap) as usize <= self.pool.len(),
                "slab {idx} spills past the pool"
            );
            let multi = self.multi[idx / WORD_BITS] & (1u64 << (idx % WORD_BITS)) != 0;
            assert_eq!(
                multi,
                s.len >= 2,
                "spare-availability bit for cell {idx} out of sync"
            );
        }
        for span in &self.free {
            assert!(
                span.cap > 0 && (span.start + span.cap) as usize <= self.pool.len(),
                "free span out of range"
            );
        }
    }
}

impl PartialEq for MemberTable {
    /// Logical equality: same cells, same members in the same order —
    /// pool layout (headroom, relocation history) is not observable.
    fn eq(&self, other: &MemberTable) -> bool {
        self.slabs.len() == other.slabs.len()
            && (0..self.slabs.len()).all(|idx| self.cell(idx) == other.cell(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn push_remove_keep_vec_order_semantics() {
        let mut t = MemberTable::new(4);
        let mut oracle: Vec<Vec<NodeId>> = vec![Vec::new(); 4];
        let script: &[(usize, u32)] = &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5), // forces a relocation past MIN_GROW
            (2, 6),
            (2, 7),
            (3, 8),
        ];
        for &(cell, id) in script {
            t.push(cell, NodeId::new(id));
            oracle[cell].push(NodeId::new(id));
        }
        for (cell, want) in oracle.iter().enumerate() {
            assert_eq!(t.cell(cell), want.as_slice(), "cell {cell}");
        }
        // Remove from the middle: later members shift left.
        assert!(t.remove(0, NodeId::new(3)));
        oracle[0].retain(|&m| m != NodeId::new(3));
        assert_eq!(t.cell(0), oracle[0].as_slice());
        assert!(!t.remove(0, NodeId::new(3)));
        assert_eq!(t.total_members(), 7);
        t.verify();
    }

    #[test]
    fn relocation_recycles_retired_spans() {
        let mut t = MemberTable::new(2);
        // Grow cell 0 past two relocations, then grow cell 1: it should
        // reuse cell 0's retired spans instead of growing the pool.
        for i in 0..9 {
            t.push(0, NodeId::new(i));
        }
        let pool_after_cell0 = t.pool.len();
        for i in 100..104 {
            t.push(1, NodeId::new(i));
        }
        assert_eq!(
            t.pool.len(),
            pool_after_cell0,
            "cell 1 should fit in retired spans"
        );
        assert_eq!(t.cell(0), ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8]).as_slice());
        assert_eq!(t.cell(1), ids(&[100, 101, 102, 103]).as_slice());
        t.verify();
    }

    #[test]
    fn rebuild_is_exact_fit_and_id_ordered() {
        let mut t = MemberTable::new(3);
        for i in 0..5 {
            t.push(2, NodeId::new(i)); // dirty state to overwrite
        }
        // Nodes 0..6 alternate between cells 0 and 2.
        t.rebuild_with(3, 6, |i| if i % 2 == 0 { 0 } else { 2 });
        assert_eq!(t.cell(0), ids(&[0, 2, 4]).as_slice());
        assert_eq!(t.cell(1), &[] as &[NodeId]);
        assert_eq!(t.cell(2), ids(&[1, 3, 5]).as_slice());
        assert_eq!(t.pool.len(), 6, "rebuild lays out exact fit");
        assert_eq!(t.total_members(), 6);
        t.verify();
    }

    #[test]
    fn equality_is_logical_not_layout() {
        let mut a = MemberTable::new(2);
        let mut b = MemberTable::new(2);
        for i in 0..6 {
            a.push(0, NodeId::new(i)); // relocated layout with headroom
        }
        b.rebuild_with(2, 6, |_| 0); // exact-fit layout
        assert_eq!(a, b);
        b.push(1, NodeId::new(9));
        assert_ne!(a, b);
    }

    #[test]
    fn multi_words_track_spare_availability() {
        let mut t = MemberTable::new(70);
        t.push(0, NodeId::new(0));
        assert_eq!(t.multi_words()[0], 0);
        t.push(0, NodeId::new(1));
        assert_eq!(t.multi_words()[0], 1);
        t.push(65, NodeId::new(2));
        t.push(65, NodeId::new(3));
        t.push(65, NodeId::new(4));
        assert_eq!(t.multi_words()[1], 1 << 1);
        t.remove(65, NodeId::new(2));
        t.remove(65, NodeId::new(3));
        assert_eq!(t.multi_words()[1], 0);
        t.verify();
    }
}
