//! Irregular surveillance regions: a bitset mask of enabled cells.
//!
//! The paper assumes a rectangular `n × m` grid, but real deployment
//! surfaces — buildings, corridors, fields with lakes or jammed zones —
//! are not rectangles. [`RegionMask`] lifts that assumption: it marks a
//! subset of a grid's cells as **enabled** (deployable, monitorable,
//! repairable) and the rest as **disabled** (obstacles). Disabled cells
//! never hold nodes, never count as holes, and never appear in occupancy
//! statistics; [`crate::GridNetwork::with_mask`] enforces all three.
//!
//! The mask also carries the *obstacle-aware movement model*: a node
//! moving between two cells whose straight connecting segment crosses a
//! disabled cell must detour around the obstacle, so its billed moving
//! distance is the 4-connected shortest path through enabled cells
//! ([`RegionMask::grid_distance`]) rather than the Euclidean chord
//! ([`crate::GridNetwork::move_node`] applies this automatically).
//!
//! [`RegionShape`] names the preset shapes the scenario and campaign
//! harnesses sweep over (L-shape, rectangular annulus, corridor cross,
//! random rectangular obstacles).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

use wsn_geometry::Point2;
use wsn_simcore::SimRng;

use crate::{GridCoord, GridError, Result};

const WORD_BITS: usize = u64::BITS as usize;

/// A bitset of enabled cells over a `cols × rows` grid (set ⇔ enabled).
///
/// ```
/// use wsn_grid::{GridCoord, RegionMask};
///
/// // A 6×4 grid with the top-right 3×2 corner disabled (an L-shape).
/// let mask = RegionMask::l_shape(6, 4);
/// assert_eq!(mask.cell_count(), 24);
/// assert_eq!(mask.disabled_count(), 6);
/// assert!(mask.is_enabled(GridCoord::new(0, 0)));
/// assert!(!mask.is_enabled(GridCoord::new(5, 3)));
/// assert!(mask.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMask {
    cols: u16,
    rows: u16,
    /// One bit per cell, dense row-major; set ⇔ enabled. Trailing bits of
    /// the last word stay zero.
    words: Vec<u64>,
    enabled: usize,
}

impl RegionMask {
    /// The full (rectangular) region: every cell enabled.
    pub fn full(cols: u16, rows: u16) -> RegionMask {
        let cells = cols as usize * rows as usize;
        let mut words = vec![!0u64; cells.div_ceil(WORD_BITS)];
        if !cells.is_multiple_of(WORD_BITS) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (cells % WORD_BITS)) - 1;
            }
        }
        RegionMask {
            cols,
            rows,
            words,
            enabled: cells,
        }
    }

    /// A mask built from a per-cell predicate.
    pub fn from_fn(cols: u16, rows: u16, mut enabled: impl FnMut(GridCoord) -> bool) -> RegionMask {
        let mut m = RegionMask::full(cols, rows);
        for y in 0..rows {
            for x in 0..cols {
                if !enabled(GridCoord::new(x, y)) {
                    m.clear_index(y as usize * cols as usize + x as usize);
                }
            }
        }
        m
    }

    /// The L-shape: the full rectangle minus its top-right quadrant
    /// (`⌈cols/2⌉ × ⌈rows/2⌉` cells disabled) — a building footprint.
    pub fn l_shape(cols: u16, rows: u16) -> RegionMask {
        let x0 = cols - cols / 2;
        let y0 = rows - rows / 2;
        RegionMask::full(cols, rows).difference_rect(x0, y0, cols - 1, rows - 1)
    }

    /// The rectangular annulus: the full rectangle minus a centered
    /// courtyard of roughly half the side lengths — a building with an
    /// inner court, or a field around a lake.
    pub fn annulus(cols: u16, rows: u16) -> RegionMask {
        let hole_w = (cols / 2).max(1).min(cols.saturating_sub(2).max(1));
        let hole_h = (rows / 2).max(1).min(rows.saturating_sub(2).max(1));
        let x0 = (cols - hole_w) / 2;
        let y0 = (rows - hole_h) / 2;
        RegionMask::full(cols, rows).difference_rect(x0, y0, x0 + hole_w - 1, y0 + hole_h - 1)
    }

    /// The corridor cross: only a horizontal and a vertical band through
    /// the grid center are enabled (two intersecting hallways). Band
    /// thickness is one quarter of the respective side, at least one
    /// cell.
    pub fn corridor(cols: u16, rows: u16) -> RegionMask {
        let band_h = (rows / 4).max(1);
        let band_w = (cols / 4).max(1);
        let y0 = (rows - band_h) / 2;
        let x0 = (cols - band_w) / 2;
        RegionMask::from_fn(cols, rows, |c| {
            (c.y >= y0 && c.y < y0 + band_h) || (c.x >= x0 && c.x < x0 + band_w)
        })
    }

    /// Random rectangular obstacles: carves deterministic (seeded)
    /// rectangles out of the full region until roughly
    /// `target_disabled_percent` of the cells are disabled, skipping any
    /// carve that would disconnect the enabled region or empty it. The
    /// same `(cols, rows, seed, target)` always produces the same mask.
    pub fn random_obstacles(
        cols: u16,
        rows: u16,
        target_disabled_percent: u16,
        seed: u64,
    ) -> RegionMask {
        let mut mask = RegionMask::full(cols, rows);
        let cells = mask.cell_count();
        let target = cells * target_disabled_percent.min(60) as usize / 100;
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0b57_ac1e_0b57_ac1e);
        let mut attempts = 0;
        while mask.disabled_count() < target && attempts < 64 {
            attempts += 1;
            // Obstacle footprint: up to a quarter of each side.
            let w = 1 + rng.range_usize((cols as usize / 4).max(1)) as u16;
            let h = 1 + rng.range_usize((rows as usize / 4).max(1)) as u16;
            let x0 = rng.range_usize((cols - w + 1) as usize) as u16;
            let y0 = rng.range_usize((rows - h + 1) as usize) as u16;
            let carved = mask.clone().difference_rect(x0, y0, x0 + w - 1, y0 + h - 1);
            if carved.enabled_count() > 0 && carved.is_connected() {
                mask = carved;
            }
        }
        mask
    }

    /// Returns the mask with every cell of the (inclusive, cell-coordinate)
    /// rectangle enabled — the union of this region with a rectangle.
    /// Coordinates are clamped to the grid.
    #[must_use]
    pub fn union_rect(mut self, x0: u16, y0: u16, x1: u16, y1: u16) -> RegionMask {
        for y in y0.min(self.rows - 1)..=y1.min(self.rows - 1) {
            for x in x0.min(self.cols - 1)..=x1.min(self.cols - 1) {
                self.set_index(y as usize * self.cols as usize + x as usize);
            }
        }
        self
    }

    /// Returns the mask with every cell of the (inclusive, cell-coordinate)
    /// rectangle disabled — the difference of this region and a rectangle.
    /// Coordinates are clamped to the grid.
    #[must_use]
    pub fn difference_rect(mut self, x0: u16, y0: u16, x1: u16, y1: u16) -> RegionMask {
        for y in y0.min(self.rows - 1)..=y1.min(self.rows - 1) {
            for x in x0.min(self.cols - 1)..=x1.min(self.cols - 1) {
                self.clear_index(y as usize * self.cols as usize + x as usize);
            }
        }
        self
    }

    fn set_index(&mut self, index: usize) {
        let (w, b) = (index / WORD_BITS, 1u64 << (index % WORD_BITS));
        if self.words[w] & b == 0 {
            self.words[w] |= b;
            self.enabled += 1;
        }
    }

    fn clear_index(&mut self, index: usize) {
        let (w, b) = (index / WORD_BITS, 1u64 << (index % WORD_BITS));
        if self.words[w] & b != 0 {
            self.words[w] &= !b;
            self.enabled -= 1;
        }
    }

    /// Grid columns.
    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Grid rows.
    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total cells of the underlying grid (enabled + disabled).
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Number of enabled cells.
    #[inline]
    pub fn enabled_count(&self) -> usize {
        self.enabled
    }

    /// Number of disabled cells.
    #[inline]
    pub fn disabled_count(&self) -> usize {
        self.cell_count() - self.enabled
    }

    /// `true` when every cell is enabled (the rectangular special case
    /// the paper assumes).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.enabled == self.cell_count()
    }

    /// Whether the dense row-major cell `index` is enabled.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range (indices are produced by the
    /// owning grid, so a bad index is a caller bug).
    #[inline]
    pub fn index_enabled(&self, index: usize) -> bool {
        assert!(index < self.cell_count(), "cell index out of range");
        self.words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// The raw enabled-cell words: one bit per cell, set ⇔ enabled,
    /// cell `i` at bit `i % 64` of word `i / 64`, trailing bits of the
    /// last word clear. Word-level kernels ([`crate::HoleSet`]) `AND`
    /// these blocks with the vacancy words to filter masked regions
    /// without per-cell mask probes.
    #[inline]
    pub fn enabled_words(&self) -> &[u64] {
        &self.words
    }

    /// Whether `coord` is an enabled cell (`false` for out-of-grid
    /// coordinates).
    #[inline]
    pub fn is_enabled(&self, coord: GridCoord) -> bool {
        coord.x < self.cols
            && coord.y < self.rows
            && self.index_enabled(coord.y as usize * self.cols as usize + coord.x as usize)
    }

    /// Iterates the enabled cells in row-major order without allocating.
    pub fn iter_enabled(&self) -> impl Iterator<Item = GridCoord> + '_ {
        let cols = self.cols as usize;
        self.words.iter().enumerate().flat_map(move |(w, &word)| {
            let base = w * WORD_BITS;
            std::iter::successors((word != 0).then_some(word), |&rest| {
                let next = rest & (rest - 1);
                (next != 0).then_some(next)
            })
            .map(move |rest| {
                let i = base + rest.trailing_zeros() as usize;
                GridCoord::new((i % cols) as u16, (i / cols) as u16)
            })
        })
    }

    /// The in-mask 4-neighbors of `coord` (0 to 4 of them).
    pub fn enabled_neighbors(&self, coord: GridCoord) -> impl Iterator<Item = GridCoord> + '_ {
        crate::Direction::ALL
            .iter()
            .filter_map(move |&d| coord.step(d))
            .filter(|&c| self.is_enabled(c))
    }

    /// `true` when the enabled cells form a single 4-connected component
    /// (vacuously true for an empty mask).
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.iter_enabled().next() else {
            return true;
        };
        let mut seen = vec![false; self.cell_count()];
        let mut queue = VecDeque::new();
        let idx = |c: GridCoord| c.y as usize * self.cols as usize + c.x as usize;
        seen[idx(start)] = true;
        queue.push_back(start);
        let mut visited = 1usize;
        while let Some(c) = queue.pop_front() {
            for n in self.enabled_neighbors(c) {
                if !seen[idx(n)] {
                    seen[idx(n)] = true;
                    visited += 1;
                    queue.push_back(n);
                }
            }
        }
        visited == self.enabled
    }

    /// Shortest 4-connected hop count from `from` to `to` through enabled
    /// cells (0 when equal), or `None` when either cell is disabled or no
    /// enabled path exists. This is the obstacle-aware distance model:
    /// the detour a mobile node must take around disabled cells.
    pub fn grid_distance(&self, from: GridCoord, to: GridCoord) -> Option<usize> {
        if !self.is_enabled(from) || !self.is_enabled(to) {
            return None;
        }
        if from == to {
            return Some(0);
        }
        let idx = |c: GridCoord| c.y as usize * self.cols as usize + c.x as usize;
        let mut dist = vec![u32::MAX; self.cell_count()];
        let mut queue = VecDeque::new();
        dist[idx(from)] = 0;
        queue.push_back(from);
        while let Some(c) = queue.pop_front() {
            let d = dist[idx(c)];
            for n in self.enabled_neighbors(c) {
                if dist[idx(n)] == u32::MAX {
                    if n == to {
                        return Some(d as usize + 1);
                    }
                    dist[idx(n)] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// Whether the straight segment from `a` to `b` (in meters, over a
    /// grid of cells with side `cell_side` anchored at the origin) stays
    /// inside enabled cells. Uses an Amanatides–Woo grid traversal;
    /// points outside the grid count as blocked.
    pub fn segment_clear(&self, cell_side: f64, a: Point2, b: Point2) -> bool {
        // Work in cell units.
        let (ax, ay) = (a.x / cell_side, a.y / cell_side);
        let (bx, by) = (b.x / cell_side, b.y / cell_side);
        let cell_at = |x: f64, y: f64| -> Option<GridCoord> {
            let (cx, cy) = (x.floor() as i64, y.floor() as i64);
            (cx >= 0 && cy >= 0 && cx < self.cols as i64 && cy < self.rows as i64)
                .then(|| GridCoord::new(cx as u16, cy as u16))
        };
        let Some(start) = cell_at(ax, ay) else {
            return false;
        };
        let Some(end) = cell_at(bx, by) else {
            return false;
        };
        if !self.is_enabled(start) {
            return false;
        }
        let (dx, dy) = (bx - ax, by - ay);
        let step_x: i64 = if dx > 0.0 { 1 } else { -1 };
        let step_y: i64 = if dy > 0.0 { 1 } else { -1 };
        // Parameter t runs 0..1 along the segment; t_max_* is the t at
        // which the ray crosses the next cell boundary on each axis.
        let mut t_max_x = if dx == 0.0 {
            f64::INFINITY
        } else {
            let next = if dx > 0.0 {
                start.x as f64 + 1.0
            } else {
                start.x as f64
            };
            (next - ax) / dx
        };
        let mut t_max_y = if dy == 0.0 {
            f64::INFINITY
        } else {
            let next = if dy > 0.0 {
                start.y as f64 + 1.0
            } else {
                start.y as f64
            };
            (next - ay) / dy
        };
        let t_delta_x = if dx == 0.0 {
            f64::INFINITY
        } else {
            (1.0 / dx).abs()
        };
        let t_delta_y = if dy == 0.0 {
            f64::INFINITY
        } else {
            (1.0 / dy).abs()
        };
        let (mut cx, mut cy) = (start.x as i64, start.y as i64);
        // Each iteration crosses one cell boundary, so the traversal
        // visits at most cols + rows cells.
        for _ in 0..(self.cols as usize + self.rows as usize + 2) {
            if (cx, cy) == (end.x as i64, end.y as i64) {
                return true;
            }
            if t_max_x < t_max_y {
                cx += step_x;
                t_max_x += t_delta_x;
            } else {
                cy += step_y;
                t_max_y += t_delta_y;
            }
            match cell_at(cx as f64 + 0.5, cy as f64 + 0.5) {
                Some(c) if self.is_enabled(c) => {}
                _ => return false,
            }
        }
        // Numerical fallback: the walk did not land exactly on the end
        // cell; every visited cell was enabled, which is what matters.
        true
    }

    /// Validates that `self` can mask a `cols × rows` grid.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::MaskMismatch`] on a dimension mismatch.
    pub fn check_dims(&self, cols: u16, rows: u16) -> Result<()> {
        if self.cols != cols || self.rows != rows {
            return Err(GridError::MaskMismatch {
                mask_cols: self.cols,
                mask_rows: self.rows,
                cols,
                rows,
            });
        }
        Ok(())
    }
}

impl fmt::Display for RegionMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region mask {}x{}: {} enabled, {} disabled",
            self.cols,
            self.rows,
            self.enabled,
            self.disabled_count()
        )
    }
}

/// The named region shapes the scenario and campaign harnesses sweep
/// over. `Full` is the paper's rectangle; the others are the irregular
/// regions the masked replacement structures were built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RegionShape {
    /// The full rectangle (no cells disabled) — the paper's setting.
    #[default]
    Full,
    /// [`RegionMask::l_shape`]: the top-right quadrant disabled (25%).
    LShape,
    /// [`RegionMask::annulus`]: a centered courtyard disabled (~25%).
    Annulus,
    /// [`RegionMask::corridor`]: only two crossing hallways enabled.
    Corridor,
    /// [`RegionMask::random_obstacles`] at ~20% disabled, fixed seed.
    Obstacles,
}

impl RegionShape {
    /// Every shape, in canonical sweep order.
    pub const ALL: [RegionShape; 5] = [
        RegionShape::Full,
        RegionShape::LShape,
        RegionShape::Annulus,
        RegionShape::Corridor,
        RegionShape::Obstacles,
    ];

    /// The irregular shapes (everything but [`RegionShape::Full`]).
    pub const IRREGULAR: [RegionShape; 4] = [
        RegionShape::LShape,
        RegionShape::Annulus,
        RegionShape::Corridor,
        RegionShape::Obstacles,
    ];

    /// Figure-legend / artifact label.
    pub fn label(&self) -> &'static str {
        match self {
            RegionShape::Full => "full",
            RegionShape::LShape => "l-shape",
            RegionShape::Annulus => "annulus",
            RegionShape::Corridor => "corridor",
            RegionShape::Obstacles => "obstacles",
        }
    }

    /// Parses a [`RegionShape::label`] back into the shape — the wire
    /// direction for configs arriving as campaign JSON (`None` for
    /// unknown labels).
    pub fn from_label(label: &str) -> Option<RegionShape> {
        RegionShape::ALL
            .iter()
            .copied()
            .find(|s| s.label() == label)
    }

    /// Stable numeric id used in RNG stream paths (never reordered).
    pub fn stream_id(&self) -> u64 {
        match self {
            RegionShape::Full => 0,
            RegionShape::LShape => 1,
            RegionShape::Annulus => 2,
            RegionShape::Corridor => 3,
            RegionShape::Obstacles => 4,
        }
    }

    /// Builds the shape's mask for a `cols × rows` grid.
    pub fn build_mask(&self, cols: u16, rows: u16) -> RegionMask {
        match self {
            RegionShape::Full => RegionMask::full(cols, rows),
            RegionShape::LShape => RegionMask::l_shape(cols, rows),
            RegionShape::Annulus => RegionMask::annulus(cols, rows),
            RegionShape::Corridor => RegionMask::corridor(cols, rows),
            RegionShape::Obstacles => RegionMask::random_obstacles(cols, rows, 20, 0xD15A_B1ED),
        }
    }
}

impl fmt::Display for RegionShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_enables_everything() {
        let m = RegionMask::full(10, 7);
        assert!(m.is_full());
        assert_eq!(m.enabled_count(), 70);
        assert_eq!(m.disabled_count(), 0);
        assert_eq!(m.iter_enabled().count(), 70);
        assert!(m.is_connected());
        assert!(!m.to_string().is_empty());
    }

    #[test]
    fn l_shape_disables_top_right_quadrant() {
        let m = RegionMask::l_shape(8, 8);
        assert_eq!(m.disabled_count(), 16);
        assert!(!m.is_enabled(GridCoord::new(7, 7)));
        assert!(!m.is_enabled(GridCoord::new(4, 4)));
        assert!(m.is_enabled(GridCoord::new(3, 7)));
        assert!(m.is_enabled(GridCoord::new(7, 3)));
        assert!(m.is_connected());
    }

    #[test]
    fn annulus_keeps_a_ring() {
        let m = RegionMask::annulus(8, 8);
        assert!(!m.is_enabled(GridCoord::new(4, 4)));
        assert!(m.is_enabled(GridCoord::new(0, 0)));
        assert!(m.is_enabled(GridCoord::new(7, 7)));
        assert!(m.is_connected());
        assert!(m.disabled_count() * 100 >= m.cell_count() * 15);
    }

    #[test]
    fn corridor_is_a_connected_cross() {
        let m = RegionMask::corridor(16, 16);
        assert!(m.is_connected());
        assert!(m.disabled_count() * 100 >= m.cell_count() * 15);
        // The corner is not part of either hallway.
        assert!(!m.is_enabled(GridCoord::new(0, 0)));
    }

    #[test]
    fn random_obstacles_hit_target_and_stay_connected() {
        let m = RegionMask::random_obstacles(32, 32, 20, 7);
        assert!(m.is_connected());
        assert!(m.enabled_count() > 0);
        assert!(
            m.disabled_count() * 100 >= m.cell_count() * 10,
            "expected substantial obstacles, got {}",
            m.disabled_count()
        );
        // Deterministic per (dims, seed).
        assert_eq!(m, RegionMask::random_obstacles(32, 32, 20, 7));
        assert_ne!(m, RegionMask::random_obstacles(32, 32, 20, 8));
    }

    #[test]
    fn rect_union_and_difference_roundtrip() {
        let m = RegionMask::full(6, 6).difference_rect(1, 1, 4, 4);
        assert_eq!(m.disabled_count(), 16);
        let m = m.union_rect(2, 2, 3, 3);
        assert_eq!(m.disabled_count(), 12);
        // Clamping: rects beyond the grid are truncated.
        let m = RegionMask::full(4, 4).difference_rect(3, 3, 99, 99);
        assert_eq!(m.disabled_count(), 1);
    }

    #[test]
    fn connectivity_detects_a_split() {
        // A full-height wall splits the region.
        let m = RegionMask::full(8, 8).difference_rect(4, 0, 4, 7);
        assert!(!m.is_connected());
        // An empty mask is vacuously connected.
        let empty = RegionMask::full(4, 4).difference_rect(0, 0, 3, 3);
        assert_eq!(empty.enabled_count(), 0);
        assert!(empty.is_connected());
    }

    #[test]
    fn grid_distance_detours_around_obstacles() {
        // A wall with a gap at the bottom: crossing it costs a detour.
        let m = RegionMask::full(9, 9).difference_rect(4, 1, 4, 8);
        let a = GridCoord::new(0, 8);
        let b = GridCoord::new(8, 8);
        // Straight-line Manhattan distance would be 8; the detour through
        // the gap at (4, 0) costs 8 + 2*8 = 24.
        assert_eq!(m.grid_distance(a, b), Some(24));
        assert_eq!(m.grid_distance(a, a), Some(0));
        assert_eq!(m.grid_distance(a, GridCoord::new(4, 4)), None);
        // Unreachable across a sealed wall.
        let sealed = RegionMask::full(9, 9).difference_rect(4, 0, 4, 8);
        assert_eq!(sealed.grid_distance(a, b), None);
    }

    #[test]
    fn segment_clear_traverses_cells() {
        let m = RegionMask::full(8, 8).difference_rect(3, 3, 4, 4);
        let side = 2.0;
        // A segment well away from the obstacle.
        assert!(m.segment_clear(side, Point2::new(1.0, 1.0), Point2::new(13.0, 1.0)));
        // A segment straight through the disabled block.
        assert!(!m.segment_clear(side, Point2::new(1.0, 1.0), Point2::new(15.0, 15.0)));
        // Vertical and horizontal degenerate directions.
        assert!(m.segment_clear(side, Point2::new(1.0, 1.0), Point2::new(1.0, 15.0)));
        assert!(!m.segment_clear(side, Point2::new(7.0, 1.0), Point2::new(7.0, 15.0)));
        // Same-cell segment.
        assert!(m.segment_clear(side, Point2::new(0.5, 0.5), Point2::new(1.5, 1.5)));
        // Points outside the grid are blocked.
        assert!(!m.segment_clear(side, Point2::new(-1.0, 0.0), Point2::new(1.0, 1.0)));
    }

    #[test]
    fn shapes_build_nonempty_connected_masks() {
        for shape in RegionShape::ALL {
            for (cols, rows) in [(16u16, 16u16), (64, 64), (33, 17)] {
                let m = shape.build_mask(cols, rows);
                assert!(m.enabled_count() > 0, "{shape} {cols}x{rows}");
                assert!(m.is_connected(), "{shape} {cols}x{rows}");
                if shape != RegionShape::Full && cols >= 16 && rows >= 16 {
                    assert!(
                        m.disabled_count() * 100 >= m.cell_count() * 15,
                        "{shape} {cols}x{rows}: only {} of {} disabled",
                        m.disabled_count(),
                        m.cell_count()
                    );
                }
            }
        }
        assert_eq!(RegionShape::default(), RegionShape::Full);
        let ids: std::collections::HashSet<u64> =
            RegionShape::ALL.iter().map(|s| s.stream_id()).collect();
        assert_eq!(ids.len(), RegionShape::ALL.len());
    }

    #[test]
    fn shape_labels_round_trip_through_from_label() {
        for shape in RegionShape::ALL {
            assert_eq!(RegionShape::from_label(shape.label()), Some(shape));
        }
        assert_eq!(RegionShape::from_label("moon-base"), None);
        assert_eq!(RegionShape::from_label(""), None);
    }

    #[test]
    fn check_dims_rejects_mismatch() {
        let m = RegionMask::full(4, 4);
        assert!(m.check_dims(4, 4).is_ok());
        assert!(m.check_dims(5, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "cell index out of range")]
    fn index_out_of_range_panics() {
        RegionMask::full(2, 2).index_enabled(4);
    }
}
