//! The virtual grid model (GAF) substrate.
//!
//! The paper builds directly on the virtual-grid model of Xu & Heidemann
//! (*Geography-informed energy conservation for ad hoc routing*,
//! MobiCom'01 — the paper's reference \[9\]): the surveillance area is
//! partitioned into an `n × m` grid of `r × r` cells; with communication
//! range `R = √5·r` every enabled node can talk to nodes in the four
//! 4-adjacent cells, so keeping one **head** awake per cell guarantees
//! both surveillance coverage and network connectivity. The other enabled
//! nodes of a cell are **spares**.
//!
//! This crate implements that substrate:
//!
//! * [`GridCoord`] / [`Direction`] — cell addressing.
//! * [`GridSystem`] — dimensions plus cell geometry (`r = R/√5`).
//! * [`GridNetwork`] — the mutable network state: deployed nodes, per-cell
//!   occupancy, heads, spares, vacancies; fault application; movements.
//! * [`deploy`] — deployment generators reproducing the paper's uniform
//!   methodology (plus clustered variants for extension experiments).
//! * [`election`] — head-election policies.
//! * [`coverage`] — coverage / connectivity verdicts (the properties
//!   Theorem 1 is about).
//!
//! # Example
//!
//! ```
//! use wsn_grid::{deploy, GridNetwork, GridSystem};
//! use wsn_simcore::SimRng;
//!
//! // The paper's setup: R = 10 m => r = 4.4721 m cells.
//! let system = GridSystem::for_comm_range(16, 16, 10.0)?;
//! let mut rng = SimRng::seed_from_u64(1);
//! let positions = deploy::uniform(&system, 600, &mut rng);
//! let mut net = GridNetwork::new(system, &positions);
//! net.elect_all_heads(wsn_grid::HeadElection::FirstId, &mut rng);
//! assert_eq!(net.occupied_cells() + net.vacant_count(), 256);
//! # Ok::<(), wsn_grid::GridError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod coverage;
pub mod deploy;
pub mod election;
mod error;
pub mod kernel;
pub mod mask;
mod members;
mod network;
pub mod occupancy;
pub mod render;
mod system;

pub use coord::{Direction, GridCoord};
pub use coverage::{connectivity_verdict, coverage_verdict, k_coverage_fraction, CoverageVerdict};
pub use election::HeadElection;
pub use error::GridError;
pub use kernel::HoleSet;
pub use mask::{RegionMask, RegionShape};
pub use network::{GridNetwork, MoveOutcome, NetworkStats};
pub use occupancy::VacancySet;
pub use system::{GridSystem, COMM_RANGE_FACTOR, DIAGONAL_RANGE_FACTOR};

/// Result alias for grid-layer errors.
pub type Result<T> = std::result::Result<T, GridError>;
