//! Coverage and connectivity verdicts — the properties Theorem 1 is
//! about.
//!
//! The GAF result the paper builds on: "the connectivity and coverage of
//! networks can be guaranteed if each grid has its own head." This module
//! provides both the combinatorial check (every cell has a head) and the
//! two geometric/graph-theoretic facts that back it up:
//!
//! * **Coverage** — with sensing radius `≥ √2·r` a head anywhere in its
//!   cell covers the whole cell, so all-cells-headed ⇒ full area coverage.
//! * **Connectivity** — with communication range `R = √5·r` heads of
//!   4-adjacent cells can always hear each other, so all-cells-headed ⇒
//!   the head overlay graph is connected (it contains the grid's
//!   4-adjacency graph, which is connected).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

use wsn_geometry::Disk;

use crate::{GridCoord, GridNetwork};

/// The sensing-radius factor (`√2`) for which a head anywhere in an
/// `r × r` cell covers its entire own cell (worst case: corner to
/// opposite corner).
pub const SENSING_RANGE_FACTOR: f64 = std::f64::consts::SQRT_2;

/// Combined verdict of the coverage/connectivity check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageVerdict {
    /// Every cell has an elected head.
    pub all_cells_headed: bool,
    /// Cells without a head (the paper's holes, plus any occupied cells
    /// where election has not run).
    pub headless_cells: Vec<GridCoord>,
    /// Fraction of the surveillance area inside at least one head's
    /// sensing disk (lattice estimate).
    pub geometric_coverage: f64,
    /// The head overlay graph (edges between heads within communication
    /// range) is connected.
    pub heads_connected: bool,
}

impl CoverageVerdict {
    /// `true` when the network satisfies the paper's complete-coverage
    /// goal: all cells headed and the head overlay connected.
    pub fn is_complete(&self) -> bool {
        self.all_cells_headed && self.heads_connected
    }
}

impl fmt::Display for CoverageVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage: {} headless cells, {:.1}% area, heads {}connected",
            self.headless_cells.len(),
            self.geometric_coverage * 100.0,
            if self.heads_connected { "" } else { "NOT " }
        )
    }
}

/// Full verdict: combinatorial coverage, geometric estimate (with sensing
/// radius `√2·r`), and head connectivity.
///
/// `resolution` controls the geometric lattice estimator (probes per
/// axis); 100 gives ±1% accuracy, plenty for the repository's assertions.
pub fn coverage_verdict(net: &GridNetwork, resolution: usize) -> CoverageVerdict {
    let sys = net.system();
    // The occupancy index bounds the answer from below: every vacant
    // cell is headless, so it sizes the vector and cross-checks the
    // head sweep.
    let mut headless = Vec::with_capacity(net.vacant_count());
    let mut disks = Vec::with_capacity(net.occupied_cells());
    let sensing = SENSING_RANGE_FACTOR * sys.cell_side();
    for coord in sys.iter_coords() {
        match net.head_of(coord).expect("iter_coords in bounds") {
            Some(id) => {
                let pos = net.node(id).expect("head is deployed").position();
                disks.push(Disk::new(pos, sensing).expect("valid sensing radius"));
            }
            None => headless.push(coord),
        }
    }
    debug_assert!(
        headless.len() >= net.vacant_count(),
        "every hole in the occupancy index must be headless"
    );
    let geometric_coverage =
        wsn_geometry::coverage_fraction(&sys.area(), &disks, resolution.max(1));
    CoverageVerdict {
        all_cells_headed: headless.is_empty(),
        headless_cells: headless,
        geometric_coverage,
        heads_connected: connectivity_verdict(net),
    }
}

/// Whether the head overlay graph is connected: nodes are the elected
/// heads, edges join heads within communication range `R`. Returns `true`
/// for networks with zero or one head (the degenerate cases are
/// vacuously connected).
pub fn connectivity_verdict(net: &GridNetwork) -> bool {
    let sys = net.system();
    let heads: Vec<(GridCoord, wsn_geometry::Point2)> = sys
        .iter_coords()
        .filter_map(|c| {
            net.head_of(c)
                .expect("in bounds")
                .map(|id| (c, net.node(id).expect("deployed").position()))
        })
        .collect();
    if heads.len() <= 1 {
        return true;
    }
    let range_sq = sys.comm_range() * sys.comm_range();
    // BFS over the head graph. Head counts are <= cell counts (hundreds),
    // so the O(H^2) edge scan is fine at this scale.
    let mut visited = vec![false; heads.len()];
    let mut queue = VecDeque::new();
    visited[0] = true;
    queue.push_back(0usize);
    let mut reached = 1usize;
    while let Some(i) = queue.pop_front() {
        for j in 0..heads.len() {
            if !visited[j] && heads[i].1.distance_squared(heads[j].1) <= range_sq + 1e-9 {
                visited[j] = true;
                reached += 1;
                queue.push_back(j);
            }
        }
    }
    reached == heads.len()
}

/// Degree-of-coverage estimate: the fraction of the surveillance area
/// inside at least `k` heads' sensing disks (k-coverage, the redundancy
/// metric used by the deployment literature the paper builds on).
/// `k = 1` agrees with [`coverage_verdict`]'s geometric estimate.
///
/// # Panics
///
/// Panics when `k == 0` or `resolution == 0` (no meaningful estimate).
pub fn k_coverage_fraction(net: &GridNetwork, k: usize, resolution: usize) -> f64 {
    assert!(k >= 1, "k-coverage needs k >= 1");
    assert!(resolution >= 1, "resolution must be >= 1");
    let sys = net.system();
    let sensing = SENSING_RANGE_FACTOR * sys.cell_side();
    let disks: Vec<Disk> = sys
        .iter_coords()
        .filter_map(|c| net.head_of(c).expect("in bounds"))
        .map(|id| {
            Disk::new(net.node(id).expect("deployed").position(), sensing)
                .expect("valid sensing radius")
        })
        .collect();
    let area = sys.area();
    let mut covered = 0usize;
    for iy in 0..resolution {
        for ix in 0..resolution {
            let p = wsn_geometry::Point2::new(
                area.min().x + (ix as f64 + 0.5) / resolution as f64 * area.width(),
                area.min().y + (iy as f64 + 0.5) / resolution as f64 * area.height(),
            );
            if disks.iter().filter(|d| d.contains(p)).take(k).count() == k {
                covered += 1;
            }
        }
    }
    covered as f64 / (resolution * resolution) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deploy, GridSystem, HeadElection};
    use wsn_simcore::{NodeId, SimRng};

    fn full_network() -> (GridNetwork, SimRng) {
        let sys = GridSystem::new(4, 4, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let pos = deploy::per_cell_exact(&sys, 2, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        (net, rng)
    }

    #[test]
    fn fully_headed_network_is_complete() {
        let (net, _) = full_network();
        let v = coverage_verdict(&net, 60);
        assert!(v.all_cells_headed);
        assert!(v.headless_cells.is_empty());
        assert!(v.heads_connected);
        assert!(v.is_complete());
        // GAF guarantee: geometric coverage is total.
        assert!(
            v.geometric_coverage > 0.999,
            "coverage {}",
            v.geometric_coverage
        );
    }

    #[test]
    fn hole_breaks_combinatorial_coverage() {
        let (mut net, mut rng) = full_network();
        // Disable both nodes of cell (1,1).
        let victims: Vec<NodeId> = net.members(GridCoord::new(1, 1)).unwrap().to_vec();
        for id in victims {
            net.disable_node(id).unwrap();
        }
        net.repair_heads(HeadElection::FirstId, &mut rng);
        let v = coverage_verdict(&net, 60);
        assert!(!v.all_cells_headed);
        assert_eq!(v.headless_cells, vec![GridCoord::new(1, 1)]);
        assert!(!v.is_complete());
        // Neighboring heads' sensing disks may still blanket the hole
        // cell geometrically (that is why the paper's verdict is
        // combinatorial), but coverage cannot have improved.
        assert!(v.geometric_coverage > 0.8);
    }

    #[test]
    fn isolated_head_breaks_connectivity() {
        // Two occupied cells at opposite corners of a large grid: heads
        // cannot hear each other.
        let sys = GridSystem::new(8, 8, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let pos = deploy::with_holes(
            &sys,
            &sys.iter_coords()
                .filter(|c| *c != GridCoord::new(0, 0) && *c != GridCoord::new(7, 7))
                .collect::<Vec<_>>(),
            1,
            &mut rng,
        );
        let mut net = GridNetwork::new(sys, &pos);
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        assert!(!connectivity_verdict(&net));
        let v = coverage_verdict(&net, 40);
        assert!(!v.heads_connected);
        assert!(!v.is_complete());
    }

    #[test]
    fn adjacent_heads_always_connected_at_gaf_range() {
        // Heads in 4-adjacent cells are within R = sqrt(5) r wherever they
        // sit in their cells; a fully-headed network is thus connected.
        let (net, _) = full_network();
        assert!(connectivity_verdict(&net));
    }

    #[test]
    fn empty_and_singleton_networks_are_vacuously_connected() {
        let sys = GridSystem::new(3, 3, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let net = GridNetwork::new(sys, &[]);
        assert!(connectivity_verdict(&net));
        let pos = deploy::with_holes(
            &sys,
            &sys.iter_coords()
                .filter(|c| *c != GridCoord::new(1, 1))
                .collect::<Vec<_>>(),
            1,
            &mut rng,
        );
        let mut net1 = GridNetwork::new(sys, &pos);
        net1.elect_all_heads(HeadElection::FirstId, &mut rng);
        assert!(connectivity_verdict(&net1));
    }

    #[test]
    fn verdict_display_nonempty() {
        let (net, _) = full_network();
        assert!(!coverage_verdict(&net, 20).to_string().is_empty());
    }

    #[test]
    fn sensing_factor_is_sqrt2() {
        assert!((SENSING_RANGE_FACTOR - 2.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn k_coverage_decreases_with_k() {
        let (net, _) = full_network();
        let k1 = k_coverage_fraction(&net, 1, 60);
        let k2 = k_coverage_fraction(&net, 2, 60);
        let k4 = k_coverage_fraction(&net, 4, 60);
        assert!(k1 >= k2 && k2 >= k4, "{k1} {k2} {k4}");
        // Heads in every cell: 1-coverage is total, 2-coverage is not
        // (cell interiors near a head's own center may be singly covered).
        assert!(k1 > 0.999);
        assert!(k2 < 1.0);
        assert!(k2 > 0.3, "adjacent heads overlap substantially: {k2}");
    }

    #[test]
    fn k1_matches_verdict_geometric_estimate() {
        let (net, _) = full_network();
        let v = coverage_verdict(&net, 60);
        let k1 = k_coverage_fraction(&net, 1, 60);
        assert!((v.geometric_coverage - k1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_zero_panics() {
        let (net, _) = full_network();
        k_coverage_fraction(&net, 0, 10);
    }
}
