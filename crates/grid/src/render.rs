//! Terminal rendering of network state (used by the examples and handy
//! in tests when an assertion fails and you want to *see* the grid).

use crate::GridNetwork;

/// Renders per-cell enabled-node counts, top row first. Vacant cells
/// print `.`, counts above 9 print `+`.
///
/// ```
/// use wsn_grid::{deploy, render, GridNetwork, GridSystem};
/// use wsn_simcore::SimRng;
///
/// let sys = GridSystem::new(3, 2, 1.0)?;
/// let mut rng = SimRng::seed_from_u64(0);
/// let net = GridNetwork::new(sys, &deploy::per_cell_exact(&sys, 2, &mut rng));
/// assert_eq!(render::occupancy_map(&net), "2 2 2\n2 2 2\n");
/// # Ok::<(), wsn_grid::GridError>(())
/// ```
pub fn occupancy_map(net: &GridNetwork) -> String {
    let sys = net.system();
    let mut out = String::with_capacity((sys.cols() as usize * 2 + 1) * sys.rows() as usize);
    for y in (0..sys.rows()).rev() {
        for x in 0..sys.cols() {
            if x > 0 {
                out.push(' ');
            }
            let n = net
                .members(crate::GridCoord::new(x, y))
                .expect("iterating in bounds")
                .len();
            out.push(match n {
                0 => '.',
                1..=9 => char::from_digit(n as u32, 10).expect("single digit"),
                _ => '+',
            });
        }
        out.push('\n');
    }
    out
}

/// Renders head status per cell: `H` = headed, `o` = occupied but
/// headless (election pending), `.` = vacant.
pub fn head_map(net: &GridNetwork) -> String {
    let sys = net.system();
    let mut out = String::new();
    for y in (0..sys.rows()).rev() {
        for x in 0..sys.cols() {
            if x > 0 {
                out.push(' ');
            }
            let coord = crate::GridCoord::new(x, y);
            let headed = net.head_of(coord).expect("in bounds").is_some();
            let occupied = !net.is_vacant(coord).expect("in bounds");
            out.push(match (headed, occupied) {
                (true, _) => 'H',
                (false, true) => 'o',
                (false, false) => '.',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deploy, GridCoord, GridSystem, HeadElection};
    use wsn_simcore::SimRng;

    #[test]
    fn occupancy_shows_holes_and_counts() {
        let sys = GridSystem::new(3, 3, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let pos = deploy::with_holes(&sys, &[GridCoord::new(1, 1)], 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        let map = occupancy_map(&net);
        assert_eq!(map, "2 2 2\n2 . 2\n2 2 2\n");
    }

    #[test]
    fn large_counts_cap_at_plus() {
        let sys = GridSystem::new(1, 1, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let pos = deploy::per_cell_exact(&sys, 12, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        assert_eq!(occupancy_map(&net), "+\n");
    }

    #[test]
    fn head_map_distinguishes_three_states() {
        let sys = GridSystem::new(2, 1, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let pos = deploy::with_holes(&sys, &[GridCoord::new(1, 0)], 1, &mut rng);
        let mut net = GridNetwork::new(sys, &pos);
        assert_eq!(head_map(&net), "o .\n");
        net.elect_all_heads(HeadElection::FirstId, &mut rng);
        assert_eq!(head_map(&net), "H .\n");
    }

    #[test]
    fn top_row_prints_first() {
        // Row y = rows-1 must be the first output line (north up).
        let sys = GridSystem::new(2, 2, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        let pos = deploy::with_holes(
            &sys,
            &[GridCoord::new(0, 1), GridCoord::new(1, 1)],
            1,
            &mut rng,
        );
        let net = GridNetwork::new(sys, &pos);
        assert_eq!(occupancy_map(&net), ". .\n1 1\n");
    }
}
