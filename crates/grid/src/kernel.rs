//! Word-level hole-detection kernels: the pending-hole set protocols
//! sweep every round, stored as a dense `u64` bitset instead of a
//! `BTreeSet<usize>`.
//!
//! The PR 2 incremental index made hole *detection* O(changed) per round
//! by folding the [`VacancySet`] change journal into an ordered set. The
//! fold itself still paid a tree insert (allocation + rebalancing +
//! pointer chasing) per changed cell, and the per-round sweep walked tree
//! nodes. [`HoleSet`] keeps the same ascending-order contract — dense
//! row-major indices, iterated ascending, exactly like `BTreeSet` — but
//! as one bit per cell:
//!
//! * **bulk detection** ([`HoleSet::assign_vacant`],
//!   [`HoleSet::assign_vacant_masked`]) copies/ANDs the vacancy words
//!   (and the region's enabled words) directly — `cells/64` word ops and
//!   a popcount each, no per-cell probes;
//! * **journal folds** ([`HoleSet::fold_changes`]) are one bit write per
//!   changed cell — no allocation, ever;
//! * **sweeps** ([`HoleSet::iter`]) skip empty 64-cell blocks via
//!   `trailing_zeros`, the same kernel [`VacancySet::iter_vacant`] uses.
//!
//! Because `BTreeSet<usize>` iteration and word-level ascending iteration
//! visit identical cells in identical order, swapping the pending-set
//! representation changes **no observable behavior** — the campaign
//! goldens stay byte-identical. The property tests pin
//! `kernel == journal fold == vacant_cells_scan()` on full and masked
//! regions.

use serde::{Deserialize, Serialize};

use crate::{RegionMask, VacancySet};

const WORD_BITS: usize = u64::BITS as usize;

/// A pending-hole set over dense row-major cell indices, stored as one
/// bit per cell. Drop-in replacement for the `BTreeSet<usize>` the
/// protocols used to keep: same membership semantics, same ascending
/// iteration order, O(cells/64) bulk ops and O(1) point updates.
///
/// ```
/// use wsn_grid::{HoleSet, VacancySet};
///
/// let mut occ = VacancySet::new(130);
/// occ.set_occupied(0);
/// occ.set_occupied(64);
/// let mut holes = HoleSet::new(130);
/// holes.assign_vacant(&occ); // word-level copy + popcount
/// assert_eq!(holes.len(), 128);
/// assert!(!holes.contains(64));
/// assert_eq!(holes.iter().next(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoleSet {
    /// One bit per cell; set ⇔ pending. Trailing bits of the last word
    /// stay clear so word-level iteration never yields out-of-range
    /// indices.
    words: Vec<u64>,
    cells: usize,
    len: usize,
}

impl HoleSet {
    /// An empty set over `cells` cells.
    pub fn new(cells: usize) -> HoleSet {
        HoleSet {
            words: vec![0u64; cells.div_ceil(WORD_BITS)],
            cells,
            len: 0,
        }
    }

    /// Number of cells tracked (the domain, not the membership count).
    #[inline]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of pending cells — O(1).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no cell is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw membership words (same layout as
    /// [`VacancySet::vacant_words`]).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether cell `index` is pending.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range (indices are produced by the
    /// owning grid, so a bad index is a caller bug).
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        assert!(index < self.cells, "cell index out of range");
        self.words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// Inserts cell `index`; returns `true` when it was not already
    /// pending. O(1).
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.cells, "cell index out of range");
        let (w, b) = (index / WORD_BITS, 1u64 << (index % WORD_BITS));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes cell `index`; returns `true` when it was pending. O(1).
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.cells, "cell index out of range");
        let (w, b) = (index / WORD_BITS, 1u64 << (index % WORD_BITS));
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        self.len -= usize::from(present);
        present
    }

    /// Empties the set, keeping the allocation. O(cells/64).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Resets the set to an empty set over `cells` cells, reusing the
    /// word buffer (the arena analog of [`HoleSet::new`]).
    pub fn reset(&mut self, cells: usize) {
        self.words.clear();
        self.words.resize(cells.div_ceil(WORD_BITS), 0u64);
        self.cells = cells;
        self.len = 0;
    }

    /// **Bulk hole detection.** Overwrites the set with every vacant
    /// cell of `occupancy`: a straight word copy plus one popcount per
    /// word — `cells/64` word ops, no per-cell iteration. Equivalent to
    /// `occupancy.iter_vacant().collect::<BTreeSet<_>>()`.
    ///
    /// # Panics
    ///
    /// Panics when the domains disagree (the set must be sized for the
    /// same grid).
    pub fn assign_vacant(&mut self, occupancy: &VacancySet) {
        assert_eq!(self.cells, occupancy.len(), "cell domain mismatch");
        let src = occupancy.vacant_words();
        let mut len = 0usize;
        for (dst, &word) in self.words.iter_mut().zip(src) {
            *dst = word;
            len += word.count_ones() as usize;
        }
        self.len = len;
    }

    /// **Masked bulk hole detection.** Overwrites the set with every
    /// vacant *enabled* cell: `vacancy AND enabled` per word. On masked
    /// networks the [`VacancySet`] already reads disabled cells as
    /// occupied, so this equals [`HoleSet::assign_vacant`] there; the
    /// explicit AND lets kernels filter an arbitrary sub-region (or a
    /// raw vacancy bitset that never saw the mask) at the same cost.
    ///
    /// # Panics
    ///
    /// Panics when the domains disagree.
    pub fn assign_vacant_masked(&mut self, occupancy: &VacancySet, mask: &RegionMask) {
        assert_eq!(self.cells, occupancy.len(), "cell domain mismatch");
        assert_eq!(self.cells, mask.cell_count(), "mask domain mismatch");
        let mut len = 0usize;
        for ((dst, &vac), &ena) in self
            .words
            .iter_mut()
            .zip(occupancy.vacant_words())
            .zip(mask.enabled_words())
        {
            let word = vac & ena;
            *dst = word;
            len += word.count_ones() as usize;
        }
        self.len = len;
    }

    /// **Journal fold.** Folds `occupancy`'s change journal into the
    /// set — cells now vacant are inserted, filled cells removed — one
    /// bit write per changed cell, no allocation. The word-level
    /// counterpart of [`GridNetwork::drain_changed_cells_into`]; the
    /// caller clears the journal afterwards (or uses
    /// [`GridNetwork::fold_changed_cells_into`], which does both).
    ///
    /// # Panics
    ///
    /// Panics when the domains disagree.
    ///
    /// [`GridNetwork::drain_changed_cells_into`]: crate::GridNetwork::drain_changed_cells_into
    /// [`GridNetwork::fold_changed_cells_into`]: crate::GridNetwork::fold_changed_cells_into
    pub fn fold_changes(&mut self, occupancy: &VacancySet) {
        assert_eq!(self.cells, occupancy.len(), "cell domain mismatch");
        for &c in occupancy.changed_cells() {
            if occupancy.is_vacant(c as usize) {
                self.insert(c as usize);
            } else {
                self.remove(c as usize);
            }
        }
    }

    /// The smallest pending cell index, if any — O(cells/64) worst case,
    /// one word read when the first block is non-empty.
    pub fn first(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|&(_, &w)| w != 0)
            .map(|(i, &w)| i * WORD_BITS + w.trailing_zeros() as usize)
    }

    /// Iterates the pending cell indices in ascending (row-major) order
    /// without allocating, skipping empty 64-cell blocks — the exact
    /// visit order of the `BTreeSet<usize>` it replaces.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let base = w * WORD_BITS;
            std::iter::successors((word != 0).then_some(word), |&rest| {
                let next = rest & (rest - 1);
                (next != 0).then_some(next)
            })
            .map(move |rest| base + rest.trailing_zeros() as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn point_updates_match_btreeset_semantics() {
        let mut h = HoleSet::new(130);
        let mut b = BTreeSet::new();
        for &i in &[5usize, 64, 129, 5, 0] {
            assert_eq!(h.insert(i), b.insert(i));
        }
        assert_eq!(h.len(), b.len());
        assert_eq!(
            h.iter().collect::<Vec<_>>(),
            b.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(h.remove(64), b.remove(&64));
        assert_eq!(h.remove(64), b.remove(&64));
        assert!(h.contains(5) && !h.contains(64));
        assert_eq!(h.first(), Some(0));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.iter().count(), 0);
        assert_eq!(h.first(), None);
    }

    #[test]
    fn assign_vacant_matches_iter_vacant() {
        let mut occ = VacancySet::new(200);
        for i in (0..200).step_by(3) {
            occ.set_occupied(i);
        }
        let mut h = HoleSet::new(200);
        h.assign_vacant(&occ);
        assert_eq!(h.len(), occ.vacant_count());
        assert_eq!(
            h.iter().collect::<Vec<_>>(),
            occ.iter_vacant().collect::<Vec<_>>()
        );
    }

    #[test]
    fn masked_assign_filters_disabled_cells() {
        // 8x8 grid, right half disabled; an un-masked vacancy bitset
        // reads every cell vacant.
        let occ = VacancySet::new(64);
        let mask = RegionMask::full(8, 8).difference_rect(4, 0, 7, 7);
        let mut h = HoleSet::new(64);
        h.assign_vacant_masked(&occ, &mask);
        assert_eq!(h.len(), 32);
        assert!(h.iter().all(|i| mask.index_enabled(i)));
    }

    #[test]
    fn fold_changes_tracks_the_journal() {
        let mut occ = VacancySet::new(100);
        for i in 0..100 {
            occ.set_occupied(i);
        }
        occ.clear_changes();
        let mut h = HoleSet::new(100);
        h.assign_vacant(&occ);
        assert!(h.is_empty());
        occ.set_vacant(7);
        occ.set_vacant(70);
        occ.set_occupied(70); // toggles back: single journal entry, reads occupied
        h.fold_changes(&occ);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![7]);
        occ.clear_changes();
        occ.set_occupied(7);
        h.fold_changes(&occ);
        assert!(h.is_empty());
    }

    #[test]
    fn reset_resizes_domain() {
        let mut h = HoleSet::new(10);
        h.insert(3);
        h.reset(256);
        assert_eq!(h.cells(), 256);
        assert!(h.is_empty());
        h.insert(255);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![255]);
    }

    #[test]
    #[should_panic(expected = "cell index out of range")]
    fn out_of_range_panics() {
        HoleSet::new(4).contains(4);
    }
}
