//! Cell addressing: coordinates and the four cardinal directions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four cardinal directions between neighboring cells.
///
/// The paper: "Each grid (x, y) … has four neighbors (x, y+1), (x−1, y),
/// (x, y−1), and (x+1, y), with one in each of four directions: north,
/// south, east, and west." (Note the paper's east/west pairing of the
/// x-offsets is typographically garbled; we use the conventional mapping
/// east = +x, west = −x, north = +y, south = −y.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `+y`.
    North,
    /// `−y`.
    South,
    /// `+x`.
    East,
    /// `−x`.
    West,
}

impl Direction {
    /// All four directions, in N, S, E, W order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// The `(dx, dy)` cell offset of this direction.
    pub fn offset(self) -> (i32, i32) {
        match self {
            Direction::North => (0, 1),
            Direction::South => (0, -1),
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
        };
        f.write_str(s)
    }
}

/// The address of a grid cell: `(x, y)` with `0 ≤ x < n`, `0 ≤ y < m`
/// (bounds are held by [`crate::GridSystem`], not by the coordinate).
///
/// ```
/// use wsn_grid::GridCoord;
///
/// let c = GridCoord::new(2, 3);
/// assert_eq!(c.manhattan(GridCoord::new(4, 1)), 4);
/// assert!(c.is_adjacent(GridCoord::new(2, 4)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct GridCoord {
    /// Column index (0-based, east-positive).
    pub x: u16,
    /// Row index (0-based, north-positive).
    pub y: u16,
}

impl GridCoord {
    /// Creates a coordinate.
    #[inline]
    pub const fn new(x: u16, y: u16) -> GridCoord {
        GridCoord { x, y }
    }

    /// The neighbor in `dir`, or `None` when it would go below zero.
    /// (Upper bounds are checked by [`crate::GridSystem::contains`].)
    pub fn step(self, dir: Direction) -> Option<GridCoord> {
        let (dx, dy) = dir.offset();
        let x = i32::from(self.x) + dx;
        let y = i32::from(self.y) + dy;
        if x < 0 || y < 0 || x > i32::from(u16::MAX) || y > i32::from(u16::MAX) {
            None
        } else {
            Some(GridCoord::new(x as u16, y as u16))
        }
    }

    /// Manhattan distance in cells.
    pub fn manhattan(self, other: GridCoord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// `true` when the two cells are 4-adjacent ("neighboring grids" in
    /// the paper: addresses differ by exactly 1 in exactly one dimension).
    pub fn is_adjacent(self, other: GridCoord) -> bool {
        self.manhattan(other) == 1
    }

    /// The direction from `self` to a 4-adjacent `other`, or `None` if
    /// they are not adjacent.
    pub fn direction_to(self, other: GridCoord) -> Option<Direction> {
        if !self.is_adjacent(other) {
            return None;
        }
        Some(if other.x > self.x {
            Direction::East
        } else if other.x < self.x {
            Direction::West
        } else if other.y > self.y {
            Direction::North
        } else {
            Direction::South
        })
    }
}

impl fmt::Display for GridCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for GridCoord {
    fn from((x, y): (u16, u16)) -> Self {
        GridCoord::new(x, y)
    }
}

impl From<GridCoord> for (u16, u16) {
    fn from(c: GridCoord) -> Self {
        (c.x, c.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposites_and_offsets() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy) = d.offset();
            let (ox, oy) = d.opposite().offset();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn step_and_bounds() {
        let c = GridCoord::new(0, 0);
        assert_eq!(c.step(Direction::North), Some(GridCoord::new(0, 1)));
        assert_eq!(c.step(Direction::East), Some(GridCoord::new(1, 0)));
        assert_eq!(c.step(Direction::South), None);
        assert_eq!(c.step(Direction::West), None);
        let top = GridCoord::new(u16::MAX, u16::MAX);
        assert_eq!(top.step(Direction::North), None);
        assert_eq!(top.step(Direction::East), None);
    }

    #[test]
    fn adjacency_is_manhattan_one() {
        let c = GridCoord::new(3, 3);
        assert!(c.is_adjacent(GridCoord::new(3, 4)));
        assert!(c.is_adjacent(GridCoord::new(2, 3)));
        assert!(!c.is_adjacent(GridCoord::new(4, 4))); // diagonal
        assert!(!c.is_adjacent(c));
        assert_eq!(c.manhattan(GridCoord::new(0, 0)), 6);
    }

    #[test]
    fn direction_to_matches_step() {
        let c = GridCoord::new(5, 5);
        for d in Direction::ALL {
            let n = c.step(d).unwrap();
            assert_eq!(c.direction_to(n), Some(d));
            assert_eq!(n.direction_to(c), Some(d.opposite()));
        }
        assert_eq!(c.direction_to(GridCoord::new(6, 6)), None);
        assert_eq!(c.direction_to(c), None);
    }

    #[test]
    fn tuple_conversions_and_display() {
        let c: GridCoord = (4u16, 7u16).into();
        let t: (u16, u16) = c.into();
        assert_eq!(t, (4, 7));
        assert_eq!(c.to_string(), "(4, 7)");
        assert_eq!(Direction::North.to_string(), "north");
    }

    #[test]
    fn ordering_is_row_major_friendly() {
        // Ord derive: x first then y; used only for determinism in sets.
        assert!(GridCoord::new(0, 5) < GridCoord::new(1, 0));
        assert!(GridCoord::new(1, 0) < GridCoord::new(1, 1));
    }
}
