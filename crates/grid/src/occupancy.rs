//! The incremental occupancy index: a dense vacancy bitset plus a
//! change journal, maintained in O(1) per mutation by [`GridNetwork`].
//!
//! The paper's headline claim is that SR repairs holes with O(1) local
//! work per round, but a naive implementation still pays O(m·n) per round
//! to *find* the holes: every protocol used to rescan the full member
//! table (`vacant_cells`) each round. [`VacancySet`] removes that scan:
//!
//! * a **bitset** (one bit per cell, set ⇔ vacant) answers
//!   `is_vacant` / `vacant_count` in O(1) and enumerates vacancies in
//!   row-major order by skipping zero words — no allocation;
//! * a **change journal** records the dense index of every cell whose
//!   occupancy toggled since the journal was last cleared, deduplicated,
//!   so a protocol can maintain its own pending-hole set in O(changed)
//!   per round instead of O(cells);
//! * the owning [`GridNetwork`] pairs the set with incremental
//!   enabled/occupied counters, making `stats`, `total_spares`, and
//!   `spare_count` O(1).
//!
//! Consumers treat journal entries as *hints*: an entry means the cell's
//! occupancy changed at least once; the current state is read back from
//! the bitset (a cell that toggled vacant → occupied → vacant appears
//! once and reads as vacant).
//!
//! [`GridNetwork`]: crate::GridNetwork

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = u64::BITS as usize;

/// Dense vacancy bitset with a deduplicated change journal.
///
/// Indices are the dense row-major cell indices of the owning grid
/// (see [`crate::GridSystem::index_of`]).
///
/// ```
/// use wsn_grid::VacancySet;
///
/// let mut v = VacancySet::new(4); // all cells start vacant
/// assert_eq!(v.vacant_count(), 4);
/// v.set_occupied(2);
/// assert_eq!(v.vacant_count(), 3);
/// assert_eq!(v.iter_vacant().collect::<Vec<_>>(), vec![0, 1, 3]);
/// assert_eq!(v.changed_cells(), &[2]);
/// v.clear_changes();
/// assert!(v.changed_cells().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VacancySet {
    /// One bit per cell; set ⇔ vacant. Trailing bits of the last word
    /// stay zero.
    words: Vec<u64>,
    cells: usize,
    vacant: usize,
    /// Dense indices of cells whose occupancy toggled since
    /// [`VacancySet::clear_changes`], each at most once.
    journal: Vec<u32>,
    /// Journal membership bits (dedup without scanning the journal).
    journaled: Vec<u64>,
}

impl VacancySet {
    /// A set over `cells` cells, all initially vacant, with an empty
    /// journal.
    pub fn new(cells: usize) -> VacancySet {
        let words = cells.div_ceil(WORD_BITS);
        let mut v = VacancySet {
            words: vec![!0u64; words],
            cells,
            vacant: cells,
            journal: Vec::new(),
            journaled: vec![0u64; words],
        };
        // Keep trailing bits clear so word-level iteration never yields
        // out-of-range indices.
        if !cells.is_multiple_of(WORD_BITS) {
            if let Some(last) = v.words.last_mut() {
                *last = (1u64 << (cells % WORD_BITS)) - 1;
            }
        }
        v
    }

    /// Resets the set to the all-vacant, clean-journal state of
    /// [`VacancySet::new`], reusing the existing word buffers. Used by
    /// the per-trial arena ([`GridNetwork::reset_into`]) to avoid
    /// reallocating on every campaign trial.
    ///
    /// [`GridNetwork::reset_into`]: crate::GridNetwork::reset_into
    pub fn reset(&mut self, cells: usize) {
        let words = cells.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(words, !0u64);
        self.journaled.clear();
        self.journaled.resize(words, 0u64);
        self.journal.clear();
        self.cells = cells;
        self.vacant = cells;
        if !cells.is_multiple_of(WORD_BITS) {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << (cells % WORD_BITS)) - 1;
            }
        }
    }

    /// Number of cells tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells
    }

    /// `true` when the set tracks zero cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells == 0
    }

    /// Number of vacant cells — O(1).
    #[inline]
    pub fn vacant_count(&self) -> usize {
        self.vacant
    }

    /// Number of occupied cells — O(1).
    #[inline]
    pub fn occupied_count(&self) -> usize {
        self.cells - self.vacant
    }

    /// Whether cell `index` is vacant.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range (indices are produced by the
    /// owning grid, so a bad index is a caller bug).
    #[inline]
    pub fn is_vacant(&self, index: usize) -> bool {
        assert!(index < self.cells, "cell index out of range");
        self.words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// Marks cell `index` vacant; journals the transition when the state
    /// actually changes. O(1).
    pub fn set_vacant(&mut self, index: usize) {
        if !self.is_vacant(index) {
            self.words[index / WORD_BITS] |= 1u64 << (index % WORD_BITS);
            self.vacant += 1;
            self.journal_push(index);
        }
    }

    /// Marks cell `index` occupied; journals the transition when the
    /// state actually changes. O(1).
    pub fn set_occupied(&mut self, index: usize) {
        if self.is_vacant(index) {
            self.words[index / WORD_BITS] &= !(1u64 << (index % WORD_BITS));
            self.vacant -= 1;
            self.journal_push(index);
        }
    }

    fn journal_push(&mut self, index: usize) {
        let (w, b) = (index / WORD_BITS, 1u64 << (index % WORD_BITS));
        if self.journaled[w] & b == 0 {
            self.journaled[w] |= b;
            self.journal.push(index as u32);
        }
    }

    /// Cells whose occupancy toggled since the last
    /// [`VacancySet::clear_changes`], in first-toggle order, each at most
    /// once. Read the bitset for the current state of each entry.
    #[inline]
    pub fn changed_cells(&self) -> &[u32] {
        &self.journal
    }

    /// Empties the change journal (the consumer has caught up).
    pub fn clear_changes(&mut self) {
        for &i in &self.journal {
            self.journaled[i as usize / WORD_BITS] &= !(1u64 << (i as usize % WORD_BITS));
        }
        self.journal.clear();
    }

    /// The raw vacancy words: one bit per cell, set ⇔ vacant, cell `i`
    /// at bit `i % 64` of word `i / 64`, trailing bits of the last word
    /// clear. This is the input surface of the word-level kernels
    /// ([`crate::HoleSet`]): hole detection and masked filtering run as
    /// `AND`/`popcount` loops over these blocks instead of per-cell
    /// iteration.
    #[inline]
    pub fn vacant_words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the vacant cell indices in ascending (row-major) order,
    /// without allocating. Skips fully-occupied 64-cell words, so a
    /// mostly-covered grid enumerates in ~`cells/64` word reads.
    pub fn iter_vacant(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let base = w * WORD_BITS;
            std::iter::successors((word != 0).then_some(word), |&rest| {
                let next = rest & (rest - 1);
                (next != 0).then_some(next)
            })
            .map(move |rest| base + rest.trailing_zeros() as usize)
        })
    }

    /// Verifies internal consistency against an occupancy oracle; used
    /// by `GridNetwork::debug_invariants` and the property tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency.
    pub fn verify(&self, mut cell_is_vacant: impl FnMut(usize) -> bool) {
        let mut vacant = 0;
        for i in 0..self.cells {
            let expect = cell_is_vacant(i);
            assert_eq!(
                self.is_vacant(i),
                expect,
                "vacancy bit for cell {i} disagrees with the member table"
            );
            vacant += usize::from(expect);
        }
        assert_eq!(self.vacant, vacant, "vacant counter out of sync");
        // Trailing bits must stay clear.
        if !self.cells.is_multiple_of(WORD_BITS) {
            let mask = (1u64 << (self.cells % WORD_BITS)) - 1;
            assert_eq!(
                self.words.last().copied().unwrap_or(0) & !mask,
                0,
                "trailing vacancy bits set"
            );
        }
        // Journal membership bits must match the journal exactly.
        let mut flags = vec![0u64; self.words.len()];
        for &i in &self.journal {
            let (w, b) = (i as usize / WORD_BITS, 1u64 << (i as usize % WORD_BITS));
            assert_eq!(flags[w] & b, 0, "cell {i} journaled twice");
            flags[w] |= b;
            assert!((i as usize) < self.cells, "journaled index out of range");
        }
        assert_eq!(flags, self.journaled, "journal dedup bits out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_vacant_with_clean_journal() {
        let v = VacancySet::new(70);
        assert_eq!(v.len(), 70);
        assert!(!v.is_empty());
        assert_eq!(v.vacant_count(), 70);
        assert_eq!(v.occupied_count(), 0);
        assert!(v.changed_cells().is_empty());
        assert_eq!(v.iter_vacant().count(), 70);
        v.verify(|_| true);
    }

    #[test]
    fn zero_cells_is_degenerate_but_valid() {
        let v = VacancySet::new(0);
        assert!(v.is_empty());
        assert_eq!(v.iter_vacant().count(), 0);
        v.verify(|_| unreachable!());
    }

    #[test]
    fn transitions_update_counts_and_journal_once() {
        let mut v = VacancySet::new(130);
        v.set_occupied(0);
        v.set_occupied(64);
        v.set_occupied(129);
        assert_eq!(v.vacant_count(), 127);
        assert_eq!(v.changed_cells(), &[0, 64, 129]);
        // Re-asserting the same state journals nothing.
        v.set_occupied(0);
        assert_eq!(v.changed_cells().len(), 3);
        // Toggling back keeps the single journal entry (state is read
        // from the bitset, not the journal).
        v.set_vacant(64);
        assert_eq!(v.changed_cells(), &[0, 64, 129]);
        assert!(v.is_vacant(64));
        v.verify(|i| !(i == 0 || i == 129));
    }

    #[test]
    fn clear_changes_resets_dedup() {
        let mut v = VacancySet::new(10);
        v.set_occupied(3);
        v.clear_changes();
        assert!(v.changed_cells().is_empty());
        v.set_vacant(3);
        assert_eq!(v.changed_cells(), &[3]);
        v.verify(|_| true);
    }

    #[test]
    fn iter_vacant_is_row_major_and_skips_occupied_words() {
        let mut v = VacancySet::new(200);
        for i in 0..200 {
            v.set_occupied(i);
        }
        assert_eq!(v.iter_vacant().count(), 0);
        for &i in &[5usize, 63, 64, 127, 199] {
            v.set_vacant(i);
        }
        assert_eq!(
            v.iter_vacant().collect::<Vec<_>>(),
            vec![5, 63, 64, 127, 199]
        );
    }

    #[test]
    #[should_panic(expected = "cell index out of range")]
    fn out_of_range_index_panics() {
        VacancySet::new(4).is_vacant(4);
    }
}
