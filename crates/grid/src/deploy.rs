//! Deployment generators.
//!
//! The paper's §5 methodology: "After deploying all the nodes in the
//! uniform distribution, we randomly disable some nodes from the
//! collaboration and create the holes. … we deploy 5000 sensors and
//! select those cases when N's value is in the range from 10 to 1000."
//!
//! Deploying `E` nodes uniformly is distributionally identical to
//! deploying 5000 uniformly and disabling a uniformly random subset of
//! `5000 − E`, so the harness uses [`uniform`] with the effective enabled
//! count, and [`uniform_with_target_spares`] to land on an exact spare
//! count `N` (adding uniform nodes one at a time increments either the
//! occupied-cell count or the spare count, so any `N` is hit exactly).

use wsn_geometry::{sample, Point2};
use wsn_simcore::SimRng;

use crate::{GridCoord, GridSystem, RegionMask};

/// `count` node positions uniformly distributed over the surveillance
/// area.
pub fn uniform(system: &GridSystem, count: usize, rng: &mut SimRng) -> Vec<Point2> {
    let area = system.area();
    (0..count)
        .map(|_| sample::point_in_rect(&area, rng.uniform_f64(), rng.uniform_f64()))
        .collect()
}

/// Exactly `per_cell` nodes in every cell, each placed uniformly inside
/// its cell. Produces a hole-free network with `(per_cell − 1)` spares per
/// cell — the deterministic fixture used by protocol unit tests.
pub fn per_cell_exact(system: &GridSystem, per_cell: usize, rng: &mut SimRng) -> Vec<Point2> {
    let mut out = Vec::with_capacity(system.cell_count() * per_cell);
    for coord in system.iter_coords() {
        let rect = system
            .cell_rect(coord)
            .expect("iter_coords yields in-bounds coords");
        for _ in 0..per_cell {
            out.push(sample::point_in_rect(
                &rect,
                rng.uniform_f64(),
                rng.uniform_f64(),
            ));
        }
    }
    out
}

/// Uniform deployment that stops as soon as the network would hold
/// exactly `target_spares` spare nodes (`enabled − occupied cells`).
///
/// Returns the positions and the number of cells still vacant at that
/// point. Matches the paper's sweep axis: "number of spare sensors N in
/// the networks". The generator adds uniform points one at a time; each
/// addition either occupies a new cell (spares unchanged) or adds a spare
/// (spares + 1), so the walk hits every spare count exactly once.
///
/// `max_nodes` caps the attempt (the cap protects against pathological
/// targets such as `target_spares > max_nodes`); the actual spare count
/// achieved is `positions.len() − occupied`, which equals `target_spares`
/// unless the cap was hit.
pub fn uniform_with_target_spares(
    system: &GridSystem,
    target_spares: usize,
    max_nodes: usize,
    rng: &mut SimRng,
) -> Vec<Point2> {
    let area = system.area();
    let mut occupied = vec![false; system.cell_count()];
    let mut occupied_count = 0usize;
    let mut positions = Vec::new();
    let mut spares = 0usize;
    while spares < target_spares && positions.len() < max_nodes {
        let p = sample::point_in_rect(&area, rng.uniform_f64(), rng.uniform_f64());
        let cell = system.cell_of(p).expect("sampled inside area");
        let idx = system.index_of(cell).expect("in-bounds");
        if occupied[idx] {
            spares += 1;
        } else {
            occupied[idx] = true;
            occupied_count += 1;
        }
        positions.push(p);
    }
    let _ = occupied_count;
    positions
}

/// Clustered deployment: `hotspots` Gaussian-ish clusters with the given
/// spread (standard deviation in meters, approximated by the sum of two
/// uniforms), `count` nodes total. Used by the extension experiments to
/// show SR's behaviour under non-uniform density.
pub fn clustered(
    system: &GridSystem,
    count: usize,
    hotspots: usize,
    spread: f64,
    rng: &mut SimRng,
) -> Vec<Point2> {
    let area = system.area();
    let hotspots = hotspots.max(1);
    let centers: Vec<Point2> = (0..hotspots)
        .map(|_| sample::point_in_rect(&area, rng.uniform_f64(), rng.uniform_f64()))
        .collect();
    (0..count)
        .map(|_| {
            let c = centers[rng.range_usize(centers.len())];
            // Irwin–Hall(2) centered noise: triangular, sigma ~ spread.
            let nx = (rng.uniform_f64() + rng.uniform_f64() - 1.0) * spread * 2.0;
            let ny = (rng.uniform_f64() + rng.uniform_f64() - 1.0) * spread * 2.0;
            area.clamp_point(Point2::new(c.x + nx, c.y + ny))
        })
        .collect()
}

/// Positions that leave exactly the cells in `holes` vacant and place
/// `per_occupied_cell` nodes in every other cell — the crafted-scenario
/// generator for integration tests and examples.
pub fn with_holes(
    system: &GridSystem,
    holes: &[GridCoord],
    per_occupied_cell: usize,
    rng: &mut SimRng,
) -> Vec<Point2> {
    let mut out = Vec::new();
    for coord in system.iter_coords() {
        if holes.contains(&coord) {
            continue;
        }
        let rect = system
            .cell_rect(coord)
            .expect("iter_coords yields in-bounds coords");
        for _ in 0..per_occupied_cell {
            out.push(sample::point_in_rect(
                &rect,
                rng.uniform_f64(),
                rng.uniform_f64(),
            ));
        }
    }
    out
}

/// `count` node positions uniformly distributed over the *enabled* cells
/// of `mask` (rejection sampling over the surveillance area, so the
/// distribution conditioned on the enabled region stays uniform). Never
/// places a node in a disabled cell.
///
/// # Panics
///
/// Panics when `mask` has no enabled cells (there is nowhere to deploy)
/// or its dimensions disagree with `system`.
pub fn uniform_masked(
    system: &GridSystem,
    mask: &RegionMask,
    count: usize,
    rng: &mut SimRng,
) -> Vec<Point2> {
    mask.check_dims(system.cols(), system.rows())
        .expect("mask must match the grid dimensions");
    assert!(
        mask.enabled_count() > 0,
        "cannot deploy into an all-disabled region"
    );
    let area = system.area();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let p = sample::point_in_rect(&area, rng.uniform_f64(), rng.uniform_f64());
        let cell = system.cell_of(p).expect("sampled inside area");
        if mask.is_enabled(cell) {
            out.push(p);
        }
    }
    out
}

/// Exactly `per_cell` nodes in every *enabled* cell of `mask` — the
/// masked counterpart of [`per_cell_exact`]. Disabled cells receive
/// nothing.
pub fn per_cell_exact_masked(
    system: &GridSystem,
    mask: &RegionMask,
    per_cell: usize,
    rng: &mut SimRng,
) -> Vec<Point2> {
    mask.check_dims(system.cols(), system.rows())
        .expect("mask must match the grid dimensions");
    let mut out = Vec::with_capacity(mask.enabled_count() * per_cell);
    for coord in mask.iter_enabled() {
        let rect = system
            .cell_rect(coord)
            .expect("mask coords are in the grid");
        for _ in 0..per_cell {
            out.push(sample::point_in_rect(
                &rect,
                rng.uniform_f64(),
                rng.uniform_f64(),
            ));
        }
    }
    out
}

/// Positions that leave exactly the enabled cells in `holes` vacant and
/// place `per_occupied_cell` nodes in every other *enabled* cell — the
/// masked counterpart of [`with_holes`]. Disabled cells (and disabled
/// entries of `holes`) receive nothing.
pub fn with_holes_masked(
    system: &GridSystem,
    mask: &RegionMask,
    holes: &[GridCoord],
    per_occupied_cell: usize,
    rng: &mut SimRng,
) -> Vec<Point2> {
    mask.check_dims(system.cols(), system.rows())
        .expect("mask must match the grid dimensions");
    let mut out = Vec::new();
    for coord in mask.iter_enabled() {
        if holes.contains(&coord) {
            continue;
        }
        let rect = system
            .cell_rect(coord)
            .expect("mask coords are in the grid");
        for _ in 0..per_occupied_cell {
            out.push(sample::point_in_rect(
                &rect,
                rng.uniform_f64(),
                rng.uniform_f64(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridNetwork;

    fn sys() -> GridSystem {
        GridSystem::new(8, 8, 2.0).unwrap()
    }

    #[test]
    fn uniform_inside_area_and_deterministic() {
        let s = sys();
        let mut rng1 = SimRng::seed_from_u64(3);
        let mut rng2 = SimRng::seed_from_u64(3);
        let a = uniform(&s, 500, &mut rng1);
        let b = uniform(&s, 500, &mut rng2);
        assert_eq!(a, b);
        let area = s.area();
        assert!(a.iter().all(|&p| area.contains(p)));
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn uniform_spreads_over_cells() {
        let s = sys();
        let mut rng = SimRng::seed_from_u64(4);
        let pos = uniform(&s, 2000, &mut rng);
        let net = GridNetwork::new(s, &pos);
        // 2000 nodes in 64 cells: every cell occupied w.h.p.
        assert_eq!(net.occupied_cells(), 64);
    }

    #[test]
    fn per_cell_exact_fills_every_cell() {
        let s = sys();
        let mut rng = SimRng::seed_from_u64(5);
        let pos = per_cell_exact(&s, 3, &mut rng);
        assert_eq!(pos.len(), 64 * 3);
        let net = GridNetwork::new(s, &pos);
        for c in s.iter_coords() {
            assert_eq!(net.members(c).unwrap().len(), 3);
        }
        assert_eq!(net.total_spares(), 64 * 2);
    }

    #[test]
    fn target_spares_is_hit_exactly() {
        let s = sys();
        for target in [0usize, 1, 7, 40, 100] {
            let mut rng = SimRng::seed_from_u64(6 + target as u64);
            let pos = uniform_with_target_spares(&s, target, 10_000, &mut rng);
            let net = GridNetwork::new(s, &pos);
            assert_eq!(net.total_spares(), target, "target {target}");
        }
    }

    #[test]
    fn target_spares_respects_cap() {
        let s = sys();
        let mut rng = SimRng::seed_from_u64(7);
        let pos = uniform_with_target_spares(&s, 1000, 50, &mut rng);
        assert_eq!(pos.len(), 50);
    }

    #[test]
    fn clustered_stays_in_area() {
        let s = sys();
        let mut rng = SimRng::seed_from_u64(8);
        let pos = clustered(&s, 300, 3, 2.0, &mut rng);
        assert_eq!(pos.len(), 300);
        let area = s.area();
        assert!(pos.iter().all(|&p| area.contains_closed(p)));
        // Clustering: fewer occupied cells than uniform with same count.
        let net_c = GridNetwork::new(s, &pos);
        let uni = uniform(&s, 300, &mut rng);
        let net_u = GridNetwork::new(s, &uni);
        assert!(net_c.occupied_cells() < net_u.occupied_cells());
    }

    #[test]
    fn clustered_zero_hotspots_treated_as_one() {
        let s = sys();
        let mut rng = SimRng::seed_from_u64(9);
        let pos = clustered(&s, 10, 0, 1.0, &mut rng);
        assert_eq!(pos.len(), 10);
    }

    #[test]
    fn masked_generators_respect_the_mask() {
        let s = sys();
        let mask = RegionMask::l_shape(8, 8);
        let mut rng = SimRng::seed_from_u64(20);

        let uni = uniform_masked(&s, &mask, 300, &mut rng);
        assert_eq!(uni.len(), 300);
        for &p in &uni {
            assert!(mask.is_enabled(s.cell_of(p).unwrap()));
        }
        let net = GridNetwork::with_mask(s, mask.clone(), &uni).unwrap();
        net.debug_invariants();

        let exact = per_cell_exact_masked(&s, &mask, 2, &mut rng);
        assert_eq!(exact.len(), mask.enabled_count() * 2);
        let net = GridNetwork::with_mask(s, mask.clone(), &exact).unwrap();
        assert_eq!(net.stats().vacant, 0);
        assert_eq!(net.total_spares(), mask.enabled_count());

        let holes = [GridCoord::new(0, 0), GridCoord::new(7, 7)]; // (7,7) disabled
        let pos = with_holes_masked(&s, &mask, &holes, 1, &mut rng);
        let net = GridNetwork::with_mask(s, mask.clone(), &pos).unwrap();
        assert_eq!(
            net.vacant_iter().collect::<Vec<_>>(),
            vec![GridCoord::new(0, 0)]
        );
        net.debug_invariants();
    }

    #[test]
    fn with_holes_creates_exact_holes() {
        let s = sys();
        let mut rng = SimRng::seed_from_u64(10);
        let holes = [GridCoord::new(2, 2), GridCoord::new(5, 7)];
        let pos = with_holes(&s, &holes, 2, &mut rng);
        let net = GridNetwork::new(s, &pos);
        assert_eq!(net.vacant_iter().collect::<Vec<_>>(), holes.to_vec());
        assert_eq!(net.enabled_count(), (64 - 2) * 2);
    }
}
