//! Head-election policies.
//!
//! The paper only requires that "one and only one enabled node will be
//! elected as the grid head" and notes "the role of each head can be
//! rotated within the grid". Which node wins is a policy choice that does
//! not affect the replacement algorithms' correctness, but it does affect
//! secondary metrics (movement distance, battery drain), so the policy is
//! explicit and benchable (see DESIGN.md §6, ablations).

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_geometry::Point2;
use wsn_simcore::{NodeId, SensorNode, SimRng};

/// Strategy for electing a cell's head among its enabled nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HeadElection {
    /// Lowest node id wins: deterministic and cheap; the default, and the
    /// natural stand-in for the paper's unspecified election.
    #[default]
    FirstId,
    /// The node with the most remaining battery wins (GAF's motivation:
    /// rotate the awake role to balance energy).
    MaxEnergy,
    /// The node closest to the cell center wins (minimizes expected
    /// movement distance of the head's own future replacement hop).
    ClosestToCenter,
    /// Uniformly random among the cell's enabled nodes (models the
    /// randomized rotation the paper mentions).
    Random,
}

impl HeadElection {
    /// Elects a head among `candidates` (ids of enabled nodes in one
    /// cell). `nodes` is the backing node table, `center` the cell
    /// center, `rng` the deterministic stream for [`HeadElection::Random`].
    ///
    /// Returns `None` when `candidates` is empty.
    pub fn elect(
        self,
        candidates: &[NodeId],
        nodes: &[SensorNode],
        center: Point2,
        rng: &mut SimRng,
    ) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            HeadElection::FirstId => candidates.iter().copied().min(),
            HeadElection::MaxEnergy => candidates.iter().copied().max_by(|&a, &b| {
                let ea = nodes[a.index()].battery().charge();
                let eb = nodes[b.index()].battery().charge();
                // Tie-break on id for determinism.
                ea.partial_cmp(&eb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            }),
            HeadElection::ClosestToCenter => candidates.iter().copied().min_by(|&a, &b| {
                let da = nodes[a.index()].position().distance_squared(center);
                let db = nodes[b.index()].position().distance_squared(center);
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            }),
            HeadElection::Random => rng.pick(candidates).copied(),
        }
    }
}

impl fmt::Display for HeadElection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HeadElection::FirstId => "first-id",
            HeadElection::MaxEnergy => "max-energy",
            HeadElection::ClosestToCenter => "closest-to-center",
            HeadElection::Random => "random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_simcore::Battery;

    fn make_nodes() -> Vec<SensorNode> {
        vec![
            SensorNode::with_battery(NodeId::new(0), Point2::new(0.0, 0.0), Battery::new(5.0)),
            SensorNode::with_battery(NodeId::new(1), Point2::new(1.0, 1.0), Battery::new(9.0)),
            SensorNode::with_battery(NodeId::new(2), Point2::new(0.9, 1.1), Battery::new(2.0)),
        ]
    }

    #[test]
    fn empty_candidates_elect_none() {
        let nodes = make_nodes();
        let mut rng = SimRng::seed_from_u64(0);
        for p in [
            HeadElection::FirstId,
            HeadElection::MaxEnergy,
            HeadElection::ClosestToCenter,
            HeadElection::Random,
        ] {
            assert_eq!(p.elect(&[], &nodes, Point2::ORIGIN, &mut rng), None);
        }
    }

    #[test]
    fn first_id_picks_minimum() {
        let nodes = make_nodes();
        let mut rng = SimRng::seed_from_u64(0);
        let c = [NodeId::new(2), NodeId::new(0), NodeId::new(1)];
        assert_eq!(
            HeadElection::FirstId.elect(&c, &nodes, Point2::ORIGIN, &mut rng),
            Some(NodeId::new(0))
        );
    }

    #[test]
    fn max_energy_picks_fullest_battery() {
        let nodes = make_nodes();
        let mut rng = SimRng::seed_from_u64(0);
        let c = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        assert_eq!(
            HeadElection::MaxEnergy.elect(&c, &nodes, Point2::ORIGIN, &mut rng),
            Some(NodeId::new(1))
        );
    }

    #[test]
    fn closest_to_center_picks_nearest() {
        let nodes = make_nodes();
        let mut rng = SimRng::seed_from_u64(0);
        let c = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let center = Point2::new(1.0, 1.0);
        assert_eq!(
            HeadElection::ClosestToCenter.elect(&c, &nodes, center, &mut rng),
            Some(NodeId::new(1))
        );
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_candidates() {
        let nodes = make_nodes();
        let c = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let mut rng1 = SimRng::seed_from_u64(7);
        let mut rng2 = SimRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = HeadElection::Random.elect(&c, &nodes, Point2::ORIGIN, &mut rng1);
            let b = HeadElection::Random.elect(&c, &nodes, Point2::ORIGIN, &mut rng2);
            assert_eq!(a, b);
            assert!(c.contains(&a.unwrap()));
        }
    }

    #[test]
    fn display_nonempty() {
        for p in [
            HeadElection::FirstId,
            HeadElection::MaxEnergy,
            HeadElection::ClosestToCenter,
            HeadElection::Random,
        ] {
            assert!(!p.to_string().is_empty());
        }
    }
}
