use std::fmt;

use crate::GridCoord;

/// Errors reported by the grid layer.
///
/// Marked `#[non_exhaustive]`: future scheme and region capabilities may
/// add variants without breaking downstream matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// Grid dimensions must each be at least 1 and the cell count must
    /// fit the occupancy index.
    InvalidDimensions {
        /// Requested columns (`n`).
        cols: u32,
        /// Requested rows (`m`).
        rows: u32,
    },
    /// Cell side / communication range must be positive and finite.
    InvalidRange {
        /// The rejected value.
        value: f64,
    },
    /// A coordinate outside the grid was used.
    OutOfBounds {
        /// The offending coordinate.
        coord: GridCoord,
        /// Grid columns.
        cols: u16,
        /// Grid rows.
        rows: u16,
    },
    /// A node id not present in this network was used.
    UnknownNode {
        /// The offending dense index.
        index: usize,
    },
    /// Operation requires an enabled node but the node is disabled.
    NodeDisabled {
        /// The node's dense index.
        index: usize,
    },
    /// A movement target lies outside the surveillance area.
    TargetOutsideArea,
    /// A node position or movement target lies in a cell disabled by the
    /// network's [`crate::RegionMask`].
    CellDisabled {
        /// The disabled cell.
        coord: GridCoord,
    },
    /// A [`crate::RegionMask`] was paired with a grid of different
    /// dimensions.
    MaskMismatch {
        /// Mask columns.
        mask_cols: u16,
        /// Mask rows.
        mask_rows: u16,
        /// Grid columns.
        cols: u16,
        /// Grid rows.
        rows: u16,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidDimensions { cols, rows } => {
                write!(f, "invalid grid dimensions {cols}x{rows}")
            }
            GridError::InvalidRange { value } => {
                write!(f, "invalid cell side or communication range {value}")
            }
            GridError::OutOfBounds { coord, cols, rows } => {
                write!(f, "coordinate {coord} outside {cols}x{rows} grid")
            }
            GridError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            GridError::NodeDisabled { index } => {
                write!(f, "node index {index} is disabled")
            }
            GridError::TargetOutsideArea => {
                write!(f, "movement target outside the surveillance area")
            }
            GridError::CellDisabled { coord } => {
                write!(f, "cell {coord} is disabled by the region mask")
            }
            GridError::MaskMismatch {
                mask_cols,
                mask_rows,
                cols,
                rows,
            } => write!(
                f,
                "region mask is {mask_cols}x{mask_rows} but the grid is {cols}x{rows}"
            ),
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs = [
            GridError::InvalidDimensions { cols: 0, rows: 4 },
            GridError::InvalidRange { value: -1.0 },
            GridError::OutOfBounds {
                coord: GridCoord::new(9, 9),
                cols: 4,
                rows: 4,
            },
            GridError::UnknownNode { index: 3 },
            GridError::NodeDisabled { index: 3 },
            GridError::TargetOutsideArea,
            GridError::CellDisabled {
                coord: GridCoord::new(1, 1),
            },
            GridError::MaskMismatch {
                mask_cols: 4,
                mask_rows: 4,
                cols: 5,
                rows: 5,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GridError>();
    }
}
