//! The job queue and runner: campaign configs in, streamed deltas and
//! durable artifacts out.
//!
//! A job's life: `POST /jobs` validates the config against the scheme
//! registry and enqueues it; a runner thread claims it and executes the
//! matrix **in chunks** of `checkpoint_every` trials through
//! [`run_campaign_resumable`](wsn_bench::campaign::run_campaign_resumable), persisting a [`CampaignCheckpoint`]
//! between chunks. Every fold appends a `wsn-serve/1` delta line to the
//! job's [`StreamLog`]; completion writes the `wsn-campaign/3` artifact
//! and removes the checkpoint. A daemon killed mid-chunk therefore
//! loses at most one chunk of work — and none of its correctness: the
//! resumed run reproduces the byte-identical artifact (the engine's
//! contract, pinned in `wsn-bench`'s resume suite and re-pinned
//! end-to-end in this crate's `e2e` suite).
//!
//! Cancellation (`DELETE /jobs/<id>`) and process shutdown both flow
//! through the same cooperative cancel poll; the difference is what
//! happens after the wind-down — a cancelled job is terminal, a
//! suspended one re-queues on restart.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use wsn_bench::campaign::{
    run_campaign_resumable_with, CampaignCheckpoint, CampaignConfig, CampaignObserver, CampaignRun,
    CellStats,
};
use wsn_coverage::scheme::SchemeRegistry;
use wsn_simcore::shutdown;
use wsn_stats::JsonValue;

use crate::checkpoint::CheckpointStore;
use crate::stream::StreamLog;

/// Schema tag of every stream line the daemon emits.
pub const STREAM_SCHEMA: &str = "wsn-serve/1";

/// Where a job is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a runner (fresh, or suspended with a checkpoint).
    Queued,
    /// A runner is executing its matrix.
    Running,
    /// Completed; artifact on disk.
    Done,
    /// Rejected or crashed; `error` says why.
    Failed,
    /// Cancelled by `DELETE /jobs/<id>`.
    Cancelled,
}

impl JobState {
    /// Stable wire token.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time public view of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// The job id (`job-<n>`).
    pub id: String,
    /// The campaign's artifact name.
    pub name: String,
    /// Current state.
    pub state: JobState,
    /// Trials folded so far (live).
    pub trials_done: u64,
    /// Trials the matrix holds in total.
    pub trials_total: u64,
    /// Failure reason, for [`JobState::Failed`].
    pub error: Option<String>,
}

impl JobSnapshot {
    /// The wire form served by `GET /jobs` and `GET /jobs/<id>`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("id", JsonValue::from(self.id.as_str())),
            ("name", JsonValue::from(self.name.as_str())),
            ("state", JsonValue::from(self.state.label())),
            ("trials_done", JsonValue::from(self.trials_done)),
            ("trials_total", JsonValue::from(self.trials_total)),
            (
                "error",
                self.error
                    .as_deref()
                    .map_or(JsonValue::Null, JsonValue::from),
            ),
        ])
    }
}

/// One tracked job.
struct Job {
    config: CampaignConfig,
    state: JobState,
    error: Option<String>,
    /// Live fold counter (shared with the runner's observer).
    done: Arc<AtomicU64>,
    /// Set by `DELETE /jobs/<id>`.
    cancel: Arc<AtomicBool>,
    log: Arc<StreamLog>,
}

#[derive(Default)]
struct QueueInner {
    jobs: BTreeMap<String, Job>,
    /// Submission order (BTreeMap sorts `job-10` before `job-2`).
    order: Vec<String>,
    next_id: u64,
}

/// The daemon's job queue: submission, status, cancellation, and the
/// runner loop.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    wake: Condvar,
    store: CheckpointStore,
    registry: SchemeRegistry,
    /// Trials per chunk between checkpoints (0 = checkpoint only on
    /// suspension).
    checkpoint_every: u64,
    /// Per-job worker-thread override.
    workers: Option<usize>,
}

impl JobQueue {
    /// A queue persisting through `store`, validating against
    /// `registry`. `checkpoint_every` sets the trials-per-checkpoint
    /// chunk (0 = never mid-run); `workers` caps each campaign's
    /// thread pool.
    pub fn new(
        store: CheckpointStore,
        registry: SchemeRegistry,
        checkpoint_every: u64,
        workers: Option<usize>,
    ) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner::default()),
            wake: Condvar::new(),
            store,
            registry,
            checkpoint_every,
            workers,
        }
    }

    /// The store this queue persists through.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Re-queues every job the previous daemon left mid-matrix (a
    /// checkpoint on disk) and re-lists completed ones (an artifact on
    /// disk). Returns `(resumed, completed)` counts.
    ///
    /// # Errors
    ///
    /// Propagates store errors; a corrupt checkpoint fails recovery
    /// loudly rather than silently rerunning from scratch.
    pub fn recover(&self) -> std::io::Result<(usize, usize)> {
        let pending = self.store.pending_jobs()?;
        let mut resumed = 0;
        let mut completed = 0;
        let mut inner = self.inner.lock().expect("job queue lock");
        // Completed jobs first: list artifacts already on disk.
        for entry in std::fs::read_dir(self.store.dir())? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(".result.json") else {
                continue;
            };
            if inner.jobs.contains_key(id) {
                continue;
            }
            let Some(artifact) = self.store.load_result(id)? else {
                continue;
            };
            // The artifact embeds its config; a parse failure marks the
            // job failed instead of erasing its history.
            let (config, state, error) = match JsonValue::parse(&artifact)
                .ok()
                .as_ref()
                .and_then(|v| v.get("config").cloned())
                .ok_or_else(|| "artifact lacks a config block".to_owned())
                .and_then(|c| CampaignConfig::from_json(&c))
            {
                Ok(config) => (config, JobState::Done, None),
                Err(e) => (
                    CampaignConfig::smoke(),
                    JobState::Failed,
                    Some(format!("unreadable artifact: {e}")),
                ),
            };
            let done = config.trial_count();
            Self::insert(&mut inner, id.to_owned(), config, state, error, done);
            let log = &inner.jobs[id].log;
            log.close();
            completed += 1;
        }
        for id in pending {
            if inner.jobs.contains_key(&id) {
                continue;
            }
            let cp = self
                .store
                .load_checkpoint(&id)?
                .expect("pending_jobs listed it");
            let done = cp.trials_done();
            Self::insert(
                &mut inner,
                id,
                cp.config.clone(),
                JobState::Queued,
                None,
                done,
            );
            resumed += 1;
        }
        drop(inner);
        self.wake.notify_all();
        Ok((resumed, completed))
    }

    fn insert(
        inner: &mut QueueInner,
        id: String,
        config: CampaignConfig,
        state: JobState,
        error: Option<String>,
        done: u64,
    ) {
        // Keep fresh ids above every recovered one.
        if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
            inner.next_id = inner.next_id.max(n + 1);
        }
        inner.order.push(id.clone());
        inner.jobs.insert(
            id,
            Job {
                config,
                state,
                error,
                done: Arc::new(AtomicU64::new(done)),
                cancel: Arc::new(AtomicBool::new(false)),
                log: Arc::new(StreamLog::new()),
            },
        );
    }

    /// Validates and enqueues a campaign, returning the new job id.
    ///
    /// # Errors
    ///
    /// The validation failure, wire-form or semantic, as text.
    pub fn submit(&self, config: CampaignConfig) -> Result<String, String> {
        config.validate(&self.registry).map_err(|e| e.to_string())?;
        let mut inner = self.inner.lock().expect("job queue lock");
        let id = format!("job-{}", inner.next_id);
        inner.next_id += 1;
        Self::insert(&mut inner, id.clone(), config, JobState::Queued, None, 0);
        drop(inner);
        self.wake.notify_all();
        Ok(id)
    }

    /// Snapshots of every job, in submission order.
    pub fn list(&self) -> Vec<JobSnapshot> {
        let inner = self.inner.lock().expect("job queue lock");
        inner
            .order
            .iter()
            .map(|id| Self::snapshot(id, &inner.jobs[id]))
            .collect()
    }

    /// One job's snapshot.
    pub fn get(&self, id: &str) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("job queue lock");
        inner.jobs.get(id).map(|j| Self::snapshot(id, j))
    }

    /// One job's stream log.
    pub fn log(&self, id: &str) -> Option<Arc<StreamLog>> {
        let inner = self.inner.lock().expect("job queue lock");
        inner.jobs.get(id).map(|j| Arc::clone(&j.log))
    }

    fn snapshot(id: &str, job: &Job) -> JobSnapshot {
        JobSnapshot {
            id: id.to_owned(),
            name: job.config.name.clone(),
            state: job.state,
            trials_done: job.done.load(Ordering::Relaxed),
            trials_total: job.config.trial_count(),
            error: job.error.clone(),
        }
    }

    /// Cancels a job. Queued jobs become terminal immediately; running
    /// ones wind down at the next trial boundary. Returns `false` for
    /// unknown ids, `true` otherwise (including already-terminal jobs —
    /// cancellation is idempotent).
    pub fn cancel(&self, id: &str) -> bool {
        let mut inner = self.inner.lock().expect("job queue lock");
        let Some(job) = inner.jobs.get_mut(id) else {
            return false;
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.log
                    .append(event_line(id, "job_cancelled", &[]).to_string());
                job.log.close();
                let _ = self.store.remove_checkpoint(id);
            }
            JobState::Running => job.cancel.store(true, Ordering::SeqCst),
            _ => {}
        }
        true
    }

    /// Runs queued jobs until process shutdown is requested. Call from
    /// one or more dedicated runner threads.
    pub fn run_until_shutdown(&self) {
        while !shutdown::requested() {
            match self.claim_next() {
                Some(id) => self.run_job(&id),
                None => {
                    // Nothing queued: block until a submit/recover wakes
                    // us, re-polling the shutdown flag periodically.
                    let inner = self.inner.lock().expect("job queue lock");
                    let _unused = self
                        .wake
                        .wait_timeout(inner, Duration::from_millis(100))
                        .expect("job queue lock");
                }
            }
        }
    }

    /// Claims the oldest queued job, marking it running.
    fn claim_next(&self) -> Option<String> {
        let mut inner = self.inner.lock().expect("job queue lock");
        let inner = &mut *inner;
        for id in &inner.order {
            let job = inner.jobs.get_mut(id).expect("ordered ids exist");
            if job.state == JobState::Queued {
                job.state = JobState::Running;
                return Some(id.clone());
            }
        }
        None
    }

    /// Executes one claimed job to a terminal state (or suspension).
    fn run_job(&self, id: &str) {
        let (config, done, cancel, log) = {
            let inner = self.inner.lock().expect("job queue lock");
            let job = &inner.jobs[id];
            (
                job.config.clone(),
                Arc::clone(&job.done),
                Arc::clone(&job.cancel),
                Arc::clone(&job.log),
            )
        };
        let mut config = config;
        config.workers = config.workers.or(self.workers);
        let mut checkpoint = match self.store.load_checkpoint(id) {
            Ok(cp) => cp,
            Err(e) => {
                self.finish(id, JobState::Failed, Some(format!("checkpoint load: {e}")));
                return;
            }
        };
        let resumed_from = checkpoint.as_ref().map(CampaignCheckpoint::trials_done);
        log.append(
            event_line(
                id,
                "job_started",
                &[
                    ("name", JsonValue::from(config.name.as_str())),
                    ("trials_total", JsonValue::from(config.trial_count())),
                    (
                        "resumed_at",
                        resumed_from.map_or(JsonValue::Null, JsonValue::from),
                    ),
                ],
            )
            .to_string(),
        );
        loop {
            let budget = if self.checkpoint_every == 0 {
                u64::MAX
            } else {
                self.checkpoint_every
            };
            let observer = RunObserver {
                job: id,
                log: &log,
                done: &done,
                budget: AtomicU64::new(budget),
                cancel: &cancel,
            };
            let run =
                run_campaign_resumable_with(&config, &self.registry, checkpoint.take(), &observer);
            match run {
                Ok(CampaignRun::Complete(result)) => {
                    let artifact = result.to_json().to_file_string();
                    if let Err(e) = self.store.save_result(id, &artifact) {
                        self.finish(id, JobState::Failed, Some(format!("artifact write: {e}")));
                        return;
                    }
                    let _ = self.store.remove_checkpoint(id);
                    log.append(
                        event_line(
                            id,
                            "job_done",
                            &[("artifact_bytes", JsonValue::from(artifact.len()))],
                        )
                        .to_string(),
                    );
                    self.finish(id, JobState::Done, None);
                    return;
                }
                Ok(CampaignRun::Interrupted(cp)) => {
                    done.store(cp.trials_done(), Ordering::Relaxed);
                    if let Err(e) = self.store.save_checkpoint(id, &cp) {
                        self.finish(id, JobState::Failed, Some(format!("checkpoint write: {e}")));
                        return;
                    }
                    log.append(
                        event_line(
                            id,
                            "checkpoint",
                            &[("trials_done", JsonValue::from(cp.trials_done()))],
                        )
                        .to_string(),
                    );
                    if cancel.load(Ordering::SeqCst) {
                        let _ = self.store.remove_checkpoint(id);
                        log.append(event_line(id, "job_cancelled", &[]).to_string());
                        self.finish(id, JobState::Cancelled, None);
                        return;
                    }
                    if shutdown::requested() {
                        // Suspend: back to queued, checkpoint on disk;
                        // the restarted daemon resumes it.
                        let mut inner = self.inner.lock().expect("job queue lock");
                        if let Some(job) = inner.jobs.get_mut(id) {
                            job.state = JobState::Queued;
                        }
                        return;
                    }
                    checkpoint = Some(cp); // next chunk
                }
                Err(e) => {
                    log.append(
                        event_line(
                            id,
                            "job_failed",
                            &[("error", JsonValue::from(e.to_string().as_str()))],
                        )
                        .to_string(),
                    );
                    self.finish(id, JobState::Failed, Some(e.to_string()));
                    return;
                }
            }
        }
    }

    fn finish(&self, id: &str, state: JobState, error: Option<String>) {
        let mut inner = self.inner.lock().expect("job queue lock");
        if let Some(job) = inner.jobs.get_mut(id) {
            if state.is_terminal() {
                job.done.store(
                    if state == JobState::Done {
                        job.config.trial_count()
                    } else {
                        job.done.load(Ordering::Relaxed)
                    },
                    Ordering::Relaxed,
                );
            }
            job.state = state;
            job.error = error;
            job.log.close();
        }
    }
}

/// Builds one `wsn-serve/1` event line.
fn event_line(job: &str, event: &str, extra: &[(&str, JsonValue)]) -> JsonValue {
    let mut fields = vec![
        ("schema", JsonValue::from(STREAM_SCHEMA)),
        ("event", JsonValue::from(event)),
        ("job", JsonValue::from(job)),
    ];
    for (k, v) in extra {
        fields.push((*k, v.clone()));
    }
    JsonValue::obj(fields)
}

/// The per-chunk observer: streams a delta line per fold, counts the
/// chunk budget down, and winds the engine down on budget exhaustion,
/// job cancellation, or process shutdown.
struct RunObserver<'a> {
    job: &'a str,
    log: &'a StreamLog,
    done: &'a AtomicU64,
    budget: AtomicU64,
    cancel: &'a AtomicBool,
}

impl CampaignObserver for RunObserver<'_> {
    fn trial_folded(&self, cell: usize, done: u64, stats: &CellStats) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                Some(b.saturating_sub(1))
            })
            .expect("fetch_update closure never returns None");
        let mean = |metric: &str| {
            stats
                .metric(metric)
                .map_or(JsonValue::Null, |s| JsonValue::from(s.summary().mean()))
        };
        self.log.append(
            event_line(
                self.job,
                "delta",
                &[
                    ("cell", JsonValue::from(cell)),
                    ("done", JsonValue::from(done)),
                    ("scheme", JsonValue::from(stats.scheme.as_str())),
                    ("region", JsonValue::from(stats.region.label())),
                    ("n", JsonValue::from(stats.n_target)),
                    ("trials", JsonValue::from(stats.trials)),
                    ("covered_trials", JsonValue::from(stats.covered_trials)),
                    ("holes_mean", JsonValue::from(stats.holes.summary().mean())),
                    ("moves_mean", mean("moves")),
                    ("distance_mean", mean("distance")),
                ],
            )
            .to_string(),
        );
    }

    fn cancel_requested(&self) -> bool {
        self.budget.load(Ordering::SeqCst) == 0
            || self.cancel.load(Ordering::SeqCst)
            || shutdown::requested()
    }
}
