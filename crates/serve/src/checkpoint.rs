//! Durable job state: checkpoints and final artifacts on disk, written
//! atomically so a killed daemon never leaves a half-written file.
//!
//! Layout under the daemon's `--state-dir`:
//!
//! ```text
//! <state>/job-7.checkpoint.json   # wsn-checkpoint/1, while running
//! <state>/job-7.result.json       # wsn-campaign/3, when complete
//! ```
//!
//! Every write lands in `<name>.tmp` first and is renamed into place —
//! rename is atomic on POSIX filesystems, so readers (and the restarted
//! daemon) only ever see empty-or-complete files. When a job completes,
//! its checkpoint is removed and its artifact written; restart recovery
//! ([`CheckpointStore::pending_jobs`]) therefore resumes exactly the
//! jobs that were mid-matrix.

use std::io;
use std::path::{Path, PathBuf};

use wsn_bench::campaign::CampaignCheckpoint;

/// File-backed store of per-job checkpoints and artifacts.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors.
    pub fn open(dir: &Path) -> io::Result<CheckpointStore> {
        std::fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_path(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.checkpoint.json"))
    }

    /// Path of a job's final artifact.
    pub fn result_path(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.result.json"))
    }

    /// Atomic write: `.tmp` then rename.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Persists a job's checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_checkpoint(&self, job: &str, cp: &CampaignCheckpoint) -> io::Result<()> {
        self.write_atomic(
            &self.checkpoint_path(job),
            cp.to_json().to_file_string().as_bytes(),
        )
    }

    /// Loads a job's checkpoint, `Ok(None)` when none exists.
    ///
    /// # Errors
    ///
    /// Filesystem errors propagate; a present-but-corrupt checkpoint is
    /// `InvalidData` (the daemon surfaces it instead of silently
    /// restarting the job from scratch).
    pub fn load_checkpoint(&self, job: &str) -> io::Result<Option<CampaignCheckpoint>> {
        let path = self.checkpoint_path(job);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        CampaignCheckpoint::from_json_str(&text)
            .map(Some)
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })
    }

    /// Removes a job's checkpoint (idempotent).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn remove_checkpoint(&self, job: &str) -> io::Result<()> {
        match std::fs::remove_file(self.checkpoint_path(job)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Writes a job's final artifact.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_result(&self, job: &str, artifact: &str) -> io::Result<()> {
        self.write_atomic(&self.result_path(job), artifact.as_bytes())
    }

    /// Reads a job's final artifact, `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn load_result(&self, job: &str) -> io::Result<Option<String>> {
        match std::fs::read_to_string(self.result_path(job)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Job ids with a checkpoint on disk — the jobs a restarted daemon
    /// must resume. Sorted by the numeric suffix of `job-<n>` ids (then
    /// lexically), so recovery re-queues in submission order.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn pending_jobs(&self) -> io::Result<Vec<String>> {
        let mut jobs = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(job) = name.strip_suffix(".checkpoint.json") {
                jobs.push(job.to_owned());
            }
        }
        jobs.sort_by_key(|j| {
            (
                j.strip_prefix("job-")
                    .and_then(|n| n.parse::<u64>().ok())
                    .unwrap_or(u64::MAX),
                j.clone(),
            )
        });
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_bench::campaign::{run_campaign_resumable, CampaignConfig, CampaignRun, CancelAfter};
    use wsn_coverage::SchemeId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wsn-serve-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn interrupted_checkpoint() -> CampaignCheckpoint {
        let cfg = CampaignConfig {
            name: "store".into(),
            schemes: SchemeId::list(&["sr"]),
            grids: vec![(6, 6)],
            targets: vec![5],
            seeds_per_cell: 3,
            ..CampaignConfig::paper()
        };
        match run_campaign_resumable(&cfg, None, &CancelAfter::new(1)).unwrap() {
            CampaignRun::Interrupted(cp) => cp,
            CampaignRun::Complete(_) => panic!("budgeted run must interrupt"),
        }
    }

    #[test]
    fn checkpoints_round_trip_through_disk() {
        let dir = temp_dir("rt");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_checkpoint("job-1").unwrap().is_none());
        let cp = interrupted_checkpoint();
        store.save_checkpoint("job-1", &cp).unwrap();
        let loaded = store.load_checkpoint("job-1").unwrap().unwrap();
        assert_eq!(loaded.done, cp.done);
        assert_eq!(loaded.cells, cp.cells);
        assert_eq!(store.pending_jobs().unwrap(), vec!["job-1".to_owned()]);
        store.remove_checkpoint("job-1").unwrap();
        store.remove_checkpoint("job-1").unwrap(); // idempotent
        assert!(store.pending_jobs().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn results_persist_and_corrupt_checkpoints_are_flagged() {
        let dir = temp_dir("res");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_result("job-2").unwrap().is_none());
        store
            .save_result("job-2", "{\"schema\":\"wsn-campaign/3\"}\n")
            .unwrap();
        assert_eq!(
            store.load_result("job-2").unwrap().unwrap(),
            "{\"schema\":\"wsn-campaign/3\"}\n"
        );
        std::fs::write(dir.join("job-3.checkpoint.json"), "{not json").unwrap();
        let err = store.load_checkpoint("job-3").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pending_jobs_sort_by_submission_order() {
        let dir = temp_dir("sort");
        let store = CheckpointStore::open(&dir).unwrap();
        for job in ["job-10", "job-2", "job-1"] {
            std::fs::write(store.checkpoint_path(job), "{}").unwrap();
        }
        assert_eq!(
            store.pending_jobs().unwrap(),
            vec!["job-1".to_owned(), "job-2".to_owned(), "job-10".to_owned()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
