//! The serve throughput ledger (`BENCH_serve.json`): what does it cost
//! to talk to the daemon?
//!
//! Entries cover the CPU-bound codecs (handshake hash, frame codec,
//! request parsing) and the two loopback round trips that dominate real
//! use — a status request, and a full submit-job-and-stream-to-completion
//! cycle over the smoke matrix. `perf compare` gates the file with the
//! same >25% `min_ns` threshold as every other ledger (see
//! `wsn_bench::perf::LEDGER_FILES`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use wsn_bench::campaign::CampaignConfig;
use wsn_simcore::shutdown;
use wsn_stats::JsonValue;

use crate::client;
use crate::http::read_request;
use crate::server::{ServeConfig, Server};
use crate::ws::{accept_key, decode_frame, encode_frame, Frame};

/// Times one closure `samples` times; `(min, mean, max)` nanoseconds —
/// the same criterion stand-in shape as `wsn_bench::perf`.
fn time_ns(samples: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos() as f64);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean, max)
}

fn bench_entry(name: &str, samples: usize, (min, mean, max): (f64, f64, f64)) -> JsonValue {
    JsonValue::obj([
        ("name", JsonValue::from(name)),
        ("samples", JsonValue::from(samples as u64)),
        ("min_ns", JsonValue::from(min)),
        ("mean_ns", JsonValue::from(mean)),
        ("max_ns", JsonValue::from(max)),
    ])
}

/// Runs the serve benchmarks, returning the `wsn-serve-bench/1`
/// document for `BENCH_serve.json`. The smoke profile shares every
/// benchmark name with the full baseline so `perf compare` always has
/// both sides.
///
/// # Panics
///
/// On loopback daemon failures — a benchmark that cannot run should
/// fail loudly, not report garbage.
pub fn bench_serve(smoke: bool) -> JsonValue {
    let mut entries = Vec::new();

    // -- CPU-bound codecs ------------------------------------------------
    let samples = if smoke { 100 } else { 400 };
    let sink = AtomicU64::new(0);
    entries.push(bench_entry(
        "ws_accept_key",
        samples,
        time_ns(samples, || {
            let key = accept_key("dGhlIHNhbXBsZSBub25jZQ==");
            sink.fetch_add(key.len() as u64, Ordering::Relaxed);
        }),
    ));

    let payload = "x".repeat(4096);
    entries.push(bench_entry(
        "ws_text_frame_codec_4k",
        samples,
        time_ns(samples, || {
            let frame = Frame::text(payload.as_str());
            let bytes = encode_frame(&frame, Some([0xde, 0xad, 0xbe, 0xef]));
            let (decoded, used) = decode_frame(&bytes)
                .expect("well-formed frame decodes")
                .expect("complete frame decodes");
            assert_eq!(used, bytes.len());
            sink.fetch_add(decoded.payload.len() as u64, Ordering::Relaxed);
        }),
    ));

    let config_body = CampaignConfig::smoke().to_json().to_string();
    let post = format!(
        "POST /jobs HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{config_body}",
        config_body.len()
    );
    entries.push(bench_entry(
        "http_parse_post_jobs",
        samples,
        time_ns(samples, || {
            let request = read_request(&mut std::io::BufReader::new(post.as_bytes()))
                .expect("well-formed request parses")
                .expect("non-empty request parses");
            sink.fetch_add(request.body.len() as u64, Ordering::Relaxed);
        }),
    ));

    // -- Loopback round trips --------------------------------------------
    // A real daemon on a real socket, state in a throwaway directory.
    let state = std::env::temp_dir().join(format!("wsn-serve-bench-{}", std::process::id()));
    let _unused = std::fs::remove_dir_all(&state);
    shutdown::reset();
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        state_dir: state.clone(),
        checkpoint_every: 0,
        workers: Some(2),
    })
    .expect("bench daemon binds loopback");
    let addr = server.local_addr().to_string();
    let serving = std::thread::spawn(move || server.serve());

    let http_samples = if smoke { 50 } else { 200 };
    entries.push(bench_entry(
        "serve_healthz_round_trip",
        http_samples,
        time_ns(http_samples, || {
            let response =
                client::request(&addr, "GET", "/healthz", None).expect("healthz round trip");
            assert_eq!(response.status, 200);
        }),
    ));

    let job_samples = if smoke { 2 } else { 4 };
    let expected_trials = CampaignConfig::smoke().trial_count();
    entries.push(bench_entry(
        "serve_submit_and_stream_smoke",
        job_samples,
        time_ns(job_samples, || {
            let submitted = client::request(&addr, "POST", "/jobs", Some(&config_body))
                .expect("submit round trip");
            assert_eq!(submitted.status, 201, "{}", submitted.body);
            let id = JsonValue::parse(&submitted.body)
                .ok()
                .and_then(|v| v.get("id").and_then(|id| id.as_str().map(str::to_owned)))
                .expect("submit response carries the job id");
            let lines = client::stream_lines(&addr, &format!("/jobs/{id}/stream"))
                .expect("stream to completion");
            // One delta per trial plus job_started/job_done bookends.
            assert!(
                lines.len() as u64 >= expected_trials + 2,
                "expected >= {} stream lines, got {}",
                expected_trials + 2,
                lines.len()
            );
        }),
    ));

    shutdown::request();
    serving
        .join()
        .expect("daemon thread joins")
        .expect("daemon exits cleanly");
    shutdown::reset();
    let _unused = std::fs::remove_dir_all(&state);
    assert!(sink.load(Ordering::Relaxed) > 0);

    JsonValue::obj([
        ("schema", JsonValue::from("wsn-serve-bench/1")),
        (
            "mode",
            JsonValue::from(if smoke { "smoke" } else { "full" }),
        ),
        ("benchmarks", JsonValue::Arr(entries)),
    ])
}
