//! RFC 6455 WebSocket server half: opening-handshake accept key and the
//! frame codec.
//!
//! The codec is deliberately split from the socket: [`encode_frame`]
//! and [`decode_frame`] work on byte buffers, so the edge cases the RFC
//! cares about — masked client payloads, 16-bit and 64-bit extended
//! lengths, fragmentation, close-code round-trips — are all testable
//! without a TCP connection (see the crate's `ws_codec` test suite).
//! The server glues the codec to sockets in [`crate::server`].

use std::fmt;

use crate::{base64, sha1};

/// The protocol GUID every accept key mixes in (RFC 6455 §1.3).
pub const WS_GUID: &str = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

/// Computes `Sec-WebSocket-Accept` for a client's `Sec-WebSocket-Key`
/// (RFC 6455 §4.2.2 step 5.4): `base64(SHA1(key ++ GUID))`, the key
/// taken verbatim — never decoded.
pub fn accept_key(client_key: &str) -> String {
    let mut input = client_key.trim().as_bytes().to_vec();
    input.extend_from_slice(WS_GUID.as_bytes());
    base64::encode(&sha1::sha1(&input))
}

/// Frame opcodes (RFC 6455 §5.2). Reserved opcodes are decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Continuation of a fragmented message.
    Continuation,
    /// UTF-8 text message (the only data opcode the daemon sends).
    Text,
    /// Binary message.
    Binary,
    /// Connection close.
    Close,
    /// Ping (must be answered with a pong carrying the same payload).
    Ping,
    /// Pong.
    Pong,
}

impl Opcode {
    fn from_bits(bits: u8) -> Option<Opcode> {
        Some(match bits {
            0x0 => Opcode::Continuation,
            0x1 => Opcode::Text,
            0x2 => Opcode::Binary,
            0x8 => Opcode::Close,
            0x9 => Opcode::Ping,
            0xA => Opcode::Pong,
            _ => return None,
        })
    }

    fn bits(self) -> u8 {
        match self {
            Opcode::Continuation => 0x0,
            Opcode::Text => 0x1,
            Opcode::Binary => 0x2,
            Opcode::Close => 0x8,
            Opcode::Ping => 0x9,
            Opcode::Pong => 0xA,
        }
    }

    /// Control frames may not fragment and cap payloads at 125 bytes.
    pub fn is_control(self) -> bool {
        matches!(self, Opcode::Close | Opcode::Ping | Opcode::Pong)
    }
}

/// One decoded frame: header flags plus the unmasked payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Final fragment of its message.
    pub fin: bool,
    /// The frame's opcode.
    pub opcode: Opcode,
    /// Unmasked payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A final text frame — the shape of every stream line the daemon
    /// sends.
    pub fn text(payload: impl Into<String>) -> Frame {
        Frame {
            fin: true,
            opcode: Opcode::Text,
            payload: payload.into().into_bytes(),
        }
    }

    /// A close frame carrying `code` and a UTF-8 `reason`
    /// (RFC 6455 §5.5.1).
    pub fn close(code: u16, reason: &str) -> Frame {
        let mut payload = code.to_be_bytes().to_vec();
        payload.extend_from_slice(reason.as_bytes());
        Frame {
            fin: true,
            opcode: Opcode::Close,
            payload,
        }
    }

    /// Parses a close frame's `(code, reason)`. An empty payload means
    /// "no code" (RFC maps it to 1005 semantics at a higher layer);
    /// here it reads back as `None`.
    pub fn close_code(&self) -> Option<(u16, String)> {
        if self.payload.len() < 2 {
            return None;
        }
        let code = u16::from_be_bytes([self.payload[0], self.payload[1]]);
        let reason = String::from_utf8_lossy(&self.payload[2..]).into_owned();
        Some((code, reason))
    }
}

/// Frame-codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsError {
    /// Reserved bits or opcodes, oversized/fragmented control frames,
    /// or non-minimal extended lengths.
    Protocol(String),
    /// A frame longer than the receiver's hard cap (a malicious length
    /// prefix must not allocate 2^63 bytes).
    TooLarge(u64),
}

impl fmt::Display for WsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsError::Protocol(why) => write!(f, "websocket protocol error: {why}"),
            WsError::TooLarge(n) => write!(f, "websocket frame of {n} bytes exceeds the cap"),
        }
    }
}

impl std::error::Error for WsError {}

/// Hard cap on accepted payload length. Campaign configs and stream
/// lines are kilobytes; anything beyond this is hostile or broken.
pub const MAX_FRAME_PAYLOAD: u64 = 16 * 1024 * 1024;

/// Encodes one frame. `mask` is `Some` for client→server frames (the
/// RFC requires clients to mask and servers not to); the daemon always
/// passes `None`, the test client a key.
pub fn encode_frame(frame: &Frame, mask: Option<[u8; 4]>) -> Vec<u8> {
    let len = frame.payload.len() as u64;
    let mut out = Vec::with_capacity(frame.payload.len() + 14);
    out.push(u8::from(frame.fin) << 7 | frame.opcode.bits());
    let mask_bit = u8::from(mask.is_some()) << 7;
    // Minimal length encoding: 7-bit, then 16-bit, then 64-bit.
    if len < 126 {
        out.push(mask_bit | len as u8);
    } else if len <= u64::from(u16::MAX) {
        out.push(mask_bit | 126);
        out.extend_from_slice(&(len as u16).to_be_bytes());
    } else {
        out.push(mask_bit | 127);
        out.extend_from_slice(&len.to_be_bytes());
    }
    match mask {
        Some(key) => {
            out.extend_from_slice(&key);
            out.extend(
                frame
                    .payload
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| b ^ key[i % 4]),
            );
        }
        None => out.extend_from_slice(&frame.payload),
    }
    out
}

/// Decodes one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a frame prefix (read more
/// bytes and retry), `Ok(Some((frame, consumed)))` on success.
///
/// # Errors
///
/// [`WsError::Protocol`] for reserved bits/opcodes, fragmented or
/// oversized control frames, and non-minimal extended lengths;
/// [`WsError::TooLarge`] beyond [`MAX_FRAME_PAYLOAD`].
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WsError> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let b0 = buf[0];
    let b1 = buf[1];
    if b0 & 0x70 != 0 {
        return Err(WsError::Protocol(
            "reserved bits set without a negotiated extension".into(),
        ));
    }
    let fin = b0 & 0x80 != 0;
    let opcode = Opcode::from_bits(b0 & 0x0f)
        .ok_or_else(|| WsError::Protocol(format!("reserved opcode 0x{:x}", b0 & 0x0f)))?;
    let masked = b1 & 0x80 != 0;
    let short_len = u64::from(b1 & 0x7f);
    let mut at = 2usize;
    let len = match short_len {
        126 => {
            if buf.len() < at + 2 {
                return Ok(None);
            }
            let n = u64::from(u16::from_be_bytes([buf[at], buf[at + 1]]));
            at += 2;
            if n < 126 {
                return Err(WsError::Protocol(format!("non-minimal 16-bit length {n}")));
            }
            n
        }
        127 => {
            if buf.len() < at + 8 {
                return Ok(None);
            }
            let mut eight = [0u8; 8];
            eight.copy_from_slice(&buf[at..at + 8]);
            at += 8;
            let n = u64::from_be_bytes(eight);
            if n <= u64::from(u16::MAX) {
                return Err(WsError::Protocol(format!("non-minimal 64-bit length {n}")));
            }
            if n & (1 << 63) != 0 {
                return Err(WsError::Protocol("64-bit length with MSB set".into()));
            }
            n
        }
        n => n,
    };
    if opcode.is_control() {
        if !fin {
            return Err(WsError::Protocol("fragmented control frame".into()));
        }
        if len > 125 {
            return Err(WsError::Protocol(format!(
                "control frame payload of {len} bytes (cap 125)"
            )));
        }
    }
    if len > MAX_FRAME_PAYLOAD {
        return Err(WsError::TooLarge(len));
    }
    let key = if masked {
        if buf.len() < at + 4 {
            return Ok(None);
        }
        let key = [buf[at], buf[at + 1], buf[at + 2], buf[at + 3]];
        at += 4;
        Some(key)
    } else {
        None
    };
    let len = len as usize;
    if buf.len() < at + len {
        return Ok(None);
    }
    let mut payload = buf[at..at + len].to_vec();
    if let Some(key) = key {
        for (i, b) in payload.iter_mut().enumerate() {
            *b ^= key[i % 4];
        }
    }
    Ok(Some((
        Frame {
            fin,
            opcode,
            payload,
        },
        at + len,
    )))
}

/// A complete data message assembled from frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Text message (UTF-8 validated).
    Text(String),
    /// Binary message.
    Binary(Vec<u8>),
    /// The peer closed; payload per [`Frame::close_code`].
    Close(Option<(u16, String)>),
    /// Ping — respond with [`Frame`]`{opcode: Pong, ..}` echoing the
    /// payload.
    Ping(Vec<u8>),
    /// Pong (unsolicited pongs are legal and ignorable).
    Pong(Vec<u8>),
}

/// Incremental message assembler: feed decoded frames, get complete
/// messages. Handles fragmentation (a text/binary frame with
/// `fin=false` followed by continuations) with control frames legally
/// interleaved between fragments.
#[derive(Debug, Default)]
pub struct MessageAssembler {
    fragments: Vec<u8>,
    fragment_opcode: Option<Opcode>,
}

impl MessageAssembler {
    /// A fresh assembler with no partial message.
    pub fn new() -> MessageAssembler {
        MessageAssembler::default()
    }

    /// Feeds one frame; returns a message when one completes.
    ///
    /// # Errors
    ///
    /// [`WsError::Protocol`] on interleaved data messages, orphan
    /// continuations, invalid UTF-8 in a text message, or an assembled
    /// message over [`MAX_FRAME_PAYLOAD`].
    pub fn push(&mut self, frame: Frame) -> Result<Option<Message>, WsError> {
        match frame.opcode {
            Opcode::Close => return Ok(Some(Message::Close(frame.close_code()))),
            Opcode::Ping => return Ok(Some(Message::Ping(frame.payload))),
            Opcode::Pong => return Ok(Some(Message::Pong(frame.payload))),
            Opcode::Text | Opcode::Binary => {
                if self.fragment_opcode.is_some() {
                    return Err(WsError::Protocol(
                        "new data message before the previous one finished".into(),
                    ));
                }
                if frame.fin {
                    return Self::complete(frame.opcode, frame.payload);
                }
                self.fragment_opcode = Some(frame.opcode);
                self.fragments = frame.payload;
            }
            Opcode::Continuation => {
                let opcode = self.fragment_opcode.ok_or_else(|| {
                    WsError::Protocol("continuation frame with no message in progress".into())
                })?;
                self.fragments.extend_from_slice(&frame.payload);
                if self.fragments.len() as u64 > MAX_FRAME_PAYLOAD {
                    return Err(WsError::TooLarge(self.fragments.len() as u64));
                }
                if frame.fin {
                    self.fragment_opcode = None;
                    let payload = std::mem::take(&mut self.fragments);
                    return Self::complete(opcode, payload);
                }
            }
        }
        Ok(None)
    }

    fn complete(opcode: Opcode, payload: Vec<u8>) -> Result<Option<Message>, WsError> {
        Ok(Some(match opcode {
            Opcode::Text => Message::Text(
                String::from_utf8(payload)
                    .map_err(|_| WsError::Protocol("text message is not UTF-8".into()))?,
            ),
            Opcode::Binary => Message::Binary(payload),
            _ => unreachable!("only data opcodes reach complete()"),
        }))
    }
}
