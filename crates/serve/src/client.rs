//! A minimal blocking client for the daemon — just enough to submit
//! jobs, poll status, and subscribe to a stream.
//!
//! This exists so the serve benchmarks, the end-to-end tests, and the
//! CI smoke step all drive the daemon through the same front door (real
//! TCP, real HTTP, real WebSocket frames) instead of poking internals.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::base64;
use crate::ws::{accept_key, decode_frame, encode_frame, Frame, Opcode};

/// A parsed response: status code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

fn invalid(why: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why)
}

/// Reads an HTTP response head, returning `(status, headers)`.
fn read_head(reader: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid(format!("malformed status line: {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.push((k.to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    Ok((status, headers))
}

/// Sends one request and reads the response.
///
/// # Errors
///
/// Connection or protocol failures.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = String::new();
    match length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf).map_err(|_| invalid("non-UTF-8 body".into()))?;
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok(Response { status, body })
}

/// Opens a WebSocket subscription to `path` and collects every text
/// line until the server's close frame (or EOF). Client frames are
/// masked, as RFC 6455 requires of clients.
///
/// # Errors
///
/// Connection failures, a refused upgrade, a wrong `Sec-WebSocket-Accept`,
/// or malformed server frames.
pub fn stream_lines(addr: &str, path: &str) -> io::Result<Vec<String>> {
    // A fixed nonce is fine: the handshake hash is deterministic and we
    // verify the echo, which is all the key is for.
    let key = base64::encode(b"wsn-serve-client");
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: {addr}\r\nupgrade: websocket\r\nconnection: Upgrade\r\nsec-websocket-key: {key}\r\nsec-websocket-version: 13\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let (status, headers) = read_head(&mut reader)?;
    if status != 101 {
        // The refusal body is JSON; surface it.
        let mut body = String::new();
        let _unused = reader.read_to_string(&mut body);
        return Err(invalid(format!("upgrade refused ({status}): {body}")));
    }
    let echoed = headers
        .iter()
        .find(|(k, _)| k == "sec-websocket-accept")
        .map(|(_, v)| v.as_str());
    if echoed != Some(accept_key(&key).as_str()) {
        return Err(invalid("bad sec-websocket-accept".into()));
    }
    let mut lines = Vec::new();
    let mut inbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match decode_frame(&inbuf) {
            Ok(Some((frame, used))) => {
                inbuf.drain(..used);
                match frame.opcode {
                    Opcode::Text => lines.push(
                        String::from_utf8(frame.payload)
                            .map_err(|_| invalid("non-UTF-8 text frame".into()))?,
                    ),
                    Opcode::Close => {
                        // Mirror the close (masked — we are the client).
                        let reply = encode_frame(&frame, Some([0x13, 0x37, 0xab, 0xcd]));
                        let _unused = stream.write_all(&reply);
                        return Ok(lines);
                    }
                    Opcode::Ping => {
                        let pong = Frame {
                            fin: true,
                            opcode: Opcode::Pong,
                            payload: frame.payload,
                        };
                        stream.write_all(&encode_frame(&pong, Some([1, 2, 3, 4])))?;
                    }
                    _ => {}
                }
                continue;
            }
            Ok(None) => {}
            Err(e) => return Err(invalid(format!("bad server frame: {e}"))),
        }
        match reader.read(&mut chunk)? {
            0 => return Ok(lines), // server closed the socket
            n => inbuf.extend_from_slice(&chunk[..n]),
        }
    }
}
