//! The per-job stream log: an append-only sequence of JSON lines every
//! subscriber replays from the beginning.
//!
//! This is what makes the daemon's streaming contract trivial to state
//! and test: subscribers do not tap a live firehose, they read one
//! shared, ordered, immutable-once-written log (schema `wsn-serve/1`,
//! one JSON object per line). A subscriber that connects late replays
//! the prefix it missed and then blocks on the tail; two subscribers —
//! whenever they connect — therefore observe the *identical* ordered
//! sequence, which is the acceptance criterion the serve e2e tests pin.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct Inner {
    lines: Vec<Arc<str>>,
    closed: bool,
}

/// An append-only, close-once log of stream lines with blocking tail
/// reads.
#[derive(Debug, Default)]
pub struct StreamLog {
    inner: Mutex<Inner>,
    grew: Condvar,
}

impl StreamLog {
    /// An empty, open log.
    pub fn new() -> StreamLog {
        StreamLog::default()
    }

    /// Appends one line (no trailing newline) and wakes tail readers.
    /// Appends to a closed log are dropped — the log's final state is
    /// immutable so late folds cannot reorder what subscribers saw.
    pub fn append(&self, line: impl Into<Arc<str>>) {
        let mut inner = self.inner.lock().expect("stream log lock");
        if !inner.closed {
            inner.lines.push(line.into());
            self.grew.notify_all();
        }
    }

    /// Closes the log: no further appends, tail readers drain and
    /// return.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("stream log lock");
        inner.closed = true;
        self.grew.notify_all();
    }

    /// Number of lines appended so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("stream log lock").lines.len()
    }

    /// Whether no line has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`StreamLog::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("stream log lock").closed
    }

    /// Reads lines from index `from`, blocking up to `timeout` for
    /// growth when the log is still open and `from` is at the tail.
    /// Returns the new lines (possibly empty on timeout) and whether
    /// the log is closed with everything at or past `from` returned —
    /// i.e. the subscriber is done.
    pub fn read_from(&self, from: usize, timeout: Duration) -> (Vec<Arc<str>>, bool) {
        let mut inner = self.inner.lock().expect("stream log lock");
        if from >= inner.lines.len() && !inner.closed {
            let (guard, _timed_out) = self
                .grew
                .wait_timeout_while(inner, timeout, |i| from >= i.lines.len() && !i.closed)
                .expect("stream log lock");
            inner = guard;
        }
        let lines: Vec<Arc<str>> = inner.lines.get(from..).unwrap_or_default().to_vec();
        let done = inner.closed;
        (lines, done)
    }

    /// Snapshot of the full log so far.
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.lock().expect("stream log lock").lines.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn subscribers_replay_the_identical_sequence() {
        let log = Arc::new(StreamLog::new());
        let writer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for i in 0..200 {
                    log.append(format!("line-{i}"));
                }
                log.close();
            })
        };
        // Two subscribers racing the writer from different start
        // times still read the same ordered sequence.
        let subscribe = |log: Arc<StreamLog>| {
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let (lines, done) = log.read_from(seen.len(), Duration::from_millis(50));
                    seen.extend(lines.iter().map(|l| l.to_string()));
                    if done && seen.len() == log.len() {
                        return seen;
                    }
                }
            })
        };
        let early = subscribe(Arc::clone(&log));
        std::thread::sleep(Duration::from_millis(5));
        let late = subscribe(Arc::clone(&log));
        writer.join().unwrap();
        let a = early.join().unwrap();
        let b = late.join().unwrap();
        assert_eq!(a.len(), 200);
        assert_eq!(a, b);
        assert_eq!(a[0], "line-0");
        assert_eq!(a[199], "line-199");
    }

    #[test]
    fn closed_logs_drop_appends_and_release_readers() {
        let log = StreamLog::new();
        log.append("kept");
        log.close();
        log.append("dropped");
        assert_eq!(log.len(), 1);
        let (lines, done) = log.read_from(0, Duration::from_millis(1));
        assert_eq!(lines.len(), 1);
        assert!(done);
        // Reading past the end of a closed log returns immediately.
        let (lines, done) = log.read_from(5, Duration::from_secs(5));
        assert!(lines.is_empty());
        assert!(done);
    }
}
