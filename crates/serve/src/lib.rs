//! Campaign-as-a-service: the `served` daemon and everything it speaks.
//!
//! The rest of the workspace runs campaigns as one-shot processes
//! (`figures`, `perf`). This crate turns the same engine into a
//! long-running service: submit a `wsn-campaign/3` config over HTTP,
//! watch per-trial deltas stream over a WebSocket, fetch the final
//! artifact — and kill the daemon at any point without losing the run,
//! because jobs checkpoint (`wsn-checkpoint/1`) and resume to a
//! byte-identical artifact.
//!
//! Everything is hand-rolled over `std::net` — the workspace has no
//! network dependencies, so this crate carries its own HTTP/1.1 codec
//! ([`http`]), RFC 6455 WebSocket codec ([`ws`]) with the SHA-1
//! ([`sha1`]) and base64 ([`base64`]) primitives the handshake needs,
//! a replay-from-zero stream log ([`stream`]), and atomic on-disk job
//! state ([`checkpoint`]). [`job`] is the queue and runner, [`server`]
//! the daemon, [`client`] the matching test/bench client, and [`mod@bench`]
//! the `BENCH_serve.json` throughput ledger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod bench;
pub mod checkpoint;
pub mod client;
pub mod http;
pub mod job;
pub mod server;
pub mod sha1;
pub mod stream;
pub mod ws;

pub use checkpoint::CheckpointStore;
pub use job::{JobQueue, JobSnapshot, JobState, STREAM_SCHEMA};
pub use server::{ServeConfig, Server};
pub use stream::StreamLog;
