//! The daemon itself: a `TcpListener` accept loop, thread-per-connection
//! routing, and the WebSocket streaming path.
//!
//! Routes (all JSON unless upgraded):
//!
//! | Method   | Path                 | Effect                                   |
//! |----------|----------------------|------------------------------------------|
//! | `GET`    | `/healthz`           | liveness probe                           |
//! | `GET`    | `/jobs`              | list all jobs                            |
//! | `POST`   | `/jobs`              | submit a `wsn-campaign/3` config         |
//! | `GET`    | `/jobs/<id>`         | one job's status                         |
//! | `DELETE` | `/jobs/<id>`         | cancel                                   |
//! | `GET`    | `/jobs/<id>/result`  | final artifact (`409` until done)        |
//! | `GET`    | `/jobs/<id>/stream`  | WebSocket: `wsn-serve/1` lines, replayed |
//!
//! The accept loop is non-blocking and polls the process-wide
//! [`wsn_simcore::shutdown`] flag between accepts, so SIGINT/SIGTERM
//! wind the daemon down cleanly: runners checkpoint their jobs back to
//! queued, streams close, and the listener stops accepting.

use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use wsn_baselines::builtins;
use wsn_bench::campaign::CampaignConfig;
use wsn_simcore::shutdown;
use wsn_stats::JsonValue;

use crate::checkpoint::CheckpointStore;
use crate::http::{read_request, write_json, write_upgrade, Request};
use crate::job::{JobQueue, JobState};
use crate::ws::{accept_key, decode_frame, encode_frame, Frame, Opcode};

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (port 0 picks a free one).
    pub addr: String,
    /// Directory for checkpoints and artifacts.
    pub state_dir: PathBuf,
    /// Trials between mid-run checkpoints (0 = checkpoint only when
    /// suspended).
    pub checkpoint_every: u64,
    /// Worker threads per campaign (`None` = the engine's default).
    pub workers: Option<usize>,
}

impl ServeConfig {
    /// Defaults: loopback on 7077, `./served-state`, a checkpoint every
    /// 64 trials, default campaign workers.
    pub fn default_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7077".to_owned(),
            state_dir: PathBuf::from("served-state"),
            checkpoint_every: 64,
            workers: None,
        }
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    queue: Arc<JobQueue>,
}

impl Server {
    /// Binds the listener, opens the state directory, and recovers any
    /// jobs the previous daemon left behind (suspended jobs re-queue,
    /// completed ones re-list).
    ///
    /// # Errors
    ///
    /// Bind, state-directory, or recovery failures.
    pub fn bind(cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let store = CheckpointStore::open(&cfg.state_dir)?;
        let queue = Arc::new(JobQueue::new(
            store,
            builtins(),
            cfg.checkpoint_every,
            cfg.workers,
        ));
        queue.recover()?;
        Ok(Server {
            listener,
            local_addr,
            queue,
        })
    }

    /// The bound address (useful when `addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The job queue (shared with runner and connection threads).
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// Serves until [`shutdown::requested`]. Spawns one runner thread
    /// and a thread per connection; returns once the accept loop stops
    /// and the runner has suspended its job (if any).
    ///
    /// # Errors
    ///
    /// Listener configuration failures; per-connection errors are
    /// contained to their threads.
    pub fn serve(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let runner = {
            let queue = Arc::clone(&self.queue);
            std::thread::spawn(move || queue.run_until_shutdown())
        };
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shutdown::requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let queue = Arc::clone(&self.queue);
                    conns.push(std::thread::spawn(move || {
                        let _unused = handle_connection(stream, &queue);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        runner
            .join()
            .map_err(|_| io::Error::other("runner thread panicked"))?;
        // Streams observe the shutdown flag themselves; give in-flight
        // responses a moment rather than tearing the process down
        // mid-write.
        for handle in conns {
            let _unused = handle.join();
        }
        Ok(())
    }
}

fn json_error(status: u16, message: &str) -> (u16, String) {
    (
        status,
        JsonValue::obj([("error", JsonValue::from(message))]).to_string(),
    )
}

/// Serves one connection: a single request/response, or a WebSocket
/// upgrade that streams until the job's log closes.
fn handle_connection(stream: TcpStream, queue: &JobQueue) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let request = match read_request(&mut reader) {
        Ok(Some(request)) => request,
        Ok(None) => return Ok(()),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            let (status, body) = json_error(400, &e.to_string());
            return write_json(&mut writer, status, &body);
        }
        Err(e) => return Err(e),
    };
    // The stream route upgrades and never returns an HTTP body.
    if let Some(job) = request
        .path
        .strip_prefix("/jobs/")
        .and_then(|rest| rest.strip_suffix("/stream"))
    {
        if request.method != "GET" {
            let (status, body) = json_error(405, "stream requires GET");
            return write_json(&mut writer, status, &body);
        }
        return serve_stream(&request, reader, writer, queue, job);
    }
    let (status, body) = route(&request, queue);
    write_json(&mut writer, status, &body)
}

/// Dispatches the plain-HTTP routes, returning `(status, json body)`.
fn route(request: &Request, queue: &JobQueue) -> (u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (
            200,
            JsonValue::obj([
                ("ok", JsonValue::from(true)),
                ("schema", JsonValue::from(crate::job::STREAM_SCHEMA)),
            ])
            .to_string(),
        ),
        ("GET", ["jobs"]) => {
            let jobs: Vec<JsonValue> = queue.list().iter().map(|j| j.to_json()).collect();
            (
                200,
                JsonValue::obj([("jobs", JsonValue::Arr(jobs))]).to_string(),
            )
        }
        ("POST", ["jobs"]) => {
            let Ok(text) = std::str::from_utf8(&request.body) else {
                return json_error(400, "body is not UTF-8");
            };
            match CampaignConfig::from_json_str(text).and_then(|cfg| queue.submit(cfg)) {
                Ok(id) => (
                    201,
                    JsonValue::obj([("id", JsonValue::from(id.as_str()))]).to_string(),
                ),
                Err(e) => json_error(400, &e),
            }
        }
        ("GET", ["jobs", id]) => match queue.get(id) {
            Some(snapshot) => (200, snapshot.to_json().to_string()),
            None => json_error(404, "no such job"),
        },
        ("DELETE", ["jobs", id]) => {
            if queue.cancel(id) {
                (
                    200,
                    JsonValue::obj([("cancelled", JsonValue::from(true))]).to_string(),
                )
            } else {
                json_error(404, "no such job")
            }
        }
        ("GET", ["jobs", id, "result"]) => match queue.get(id) {
            None => json_error(404, "no such job"),
            Some(snapshot) if snapshot.state != JobState::Done => {
                json_error(409, "job is not done")
            }
            Some(_) => match queue.store().load_result(id) {
                Ok(Some(artifact)) => (200, artifact),
                Ok(None) => json_error(500, "artifact missing"),
                Err(e) => json_error(500, &e.to_string()),
            },
        },
        _ => json_error(404, "no such route"),
    }
}

/// Completes the WebSocket handshake and streams the job's log from
/// line zero: every subscriber — however late — replays the identical
/// ordered sequence, then receives a close frame once the log closes.
fn serve_stream(
    request: &Request,
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    queue: &JobQueue,
    job: &str,
) -> io::Result<()> {
    let Some(log) = queue.log(job) else {
        let (status, body) = json_error(404, "no such job");
        return write_json(&mut writer, status, &body);
    };
    if !request.wants_websocket() {
        let (status, body) = json_error(400, "stream requires a WebSocket upgrade");
        return write_json(&mut writer, status, &body);
    }
    let Some(key) = request.header("sec-websocket-key") else {
        let (status, body) = json_error(400, "missing sec-websocket-key");
        return write_json(&mut writer, status, &body);
    };
    write_upgrade(&mut writer, &accept_key(key))?;
    // Short read timeout: the loop alternates between draining client
    // control frames and tailing the log.
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(10)))?;
    let mut inbuf: Vec<u8> = Vec::new();
    let mut cursor = 0usize;
    loop {
        // Client frames first (ping → pong, close → mirror and stop).
        let mut chunk = [0u8; 4096];
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // client went away
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
        loop {
            match decode_frame(&inbuf) {
                Ok(Some((frame, used))) => {
                    inbuf.drain(..used);
                    match frame.opcode {
                        Opcode::Ping => {
                            let pong = Frame {
                                fin: true,
                                opcode: Opcode::Pong,
                                payload: frame.payload,
                            };
                            writer.write_all(&encode_frame(&pong, None))?;
                            writer.flush()?;
                        }
                        Opcode::Close => {
                            writer.write_all(&encode_frame(&frame, None))?;
                            return writer.flush();
                        }
                        _ => {} // subscribers only listen
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    let close = Frame::close(1002, "protocol error");
                    writer.write_all(&encode_frame(&close, None))?;
                    return writer.flush();
                }
            }
        }
        if shutdown::requested() {
            let close = Frame::close(1001, "server shutting down");
            writer.write_all(&encode_frame(&close, None))?;
            return writer.flush();
        }
        let (lines, done) = log.read_from(cursor, Duration::from_millis(100));
        for line in &lines {
            let frame = Frame::text(line.as_ref());
            writer.write_all(&encode_frame(&frame, None))?;
        }
        if !lines.is_empty() {
            writer.flush()?;
            cursor += lines.len();
        }
        if done && cursor >= log.len() {
            let close = Frame::close(1000, "stream complete");
            writer.write_all(&encode_frame(&close, None))?;
            return writer.flush();
        }
    }
}
