//! SHA-1, as required by the RFC 6455 opening handshake.
//!
//! The WebSocket `Sec-WebSocket-Accept` header is
//! `base64(SHA1(key ++ GUID))` — SHA-1 is baked into the protocol, and
//! this workspace has no crates.io access, so the 80-round compression
//! function lives here (FIPS 180-4 §6.1). It is used *only* as the
//! handshake checksum the RFC prescribes, never as a security
//! primitive: SHA-1's known collision weaknesses are irrelevant to
//! proving "this peer actually speaks WebSocket", which is all the
//! handshake asks of it.

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 20;

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];

    // Message schedule: data ++ 0x80 ++ zero pad ++ 64-bit bit length,
    // processed in 512-bit blocks.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in padded.chunks_exact(64) {
        for (t, word) in block.chunks_exact(4).enumerate() {
            w[t] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = h;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | (!b & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; DIGEST_LEN];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; DIGEST_LEN]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_180_vectors() {
        // FIPS 180-4 / RFC 3174 reference vectors.
        assert_eq!(hex(sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        // The classic streaming vector; exercises many blocks.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(sha1(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn padding_boundaries() {
        // Lengths straddling the 55/56/63/64-byte padding edges all
        // digest without panicking and differ from one another.
        let digests: Vec<_> = [55, 56, 57, 63, 64, 65]
            .iter()
            .map(|&n| sha1(&vec![0x5a; n]))
            .collect();
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
