//! A minimal HTTP/1.1 server codec over `std::io` — just enough for
//! the daemon's five routes and the WebSocket upgrade.
//!
//! Scope is deliberate: requests are read with a bounded header block
//! and a `Content-Length` body (no chunked encoding, no pipelining —
//! each connection serves one request, or upgrades), responses always
//! carry `Content-Length` and `Connection: close`. Everything the
//! daemon speaks is JSON, so the helpers bake that in.

use std::io::{self, BufRead, Write};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body — a campaign config is kilobytes.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request target, query string stripped.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether this request asks for a WebSocket upgrade (RFC 6455
    /// §4.2.1: `Upgrade: websocket` + `Connection: … upgrade …`).
    pub fn wants_websocket(&self) -> bool {
        let upgrade = self
            .header("upgrade")
            .is_some_and(|v| v.eq_ignore_ascii_case("websocket"));
        let connection = self.header("connection").is_some_and(|v| {
            v.split(',')
                .any(|t| t.trim().eq_ignore_ascii_case("upgrade"))
        });
        upgrade && connection
    }
}

/// Reads one request from `reader`. Returns `Ok(None)` on a cleanly
/// closed connection (EOF before any byte).
///
/// # Errors
///
/// `InvalidData` on malformed request lines/headers or oversized
/// head/body; other `io::Error`s propagate from the reader.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, why.to_owned());
    let mut line = String::new();
    if read_crlf_line(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_owned(), t.to_owned(), v),
        _ => return Err(bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        line.clear();
        let n = read_crlf_line(reader, &mut line)?;
        if n == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(bad("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| bad("unparsable content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    let path = target
        .split_once('?')
        .map_or(target.as_str(), |(p, _)| p)
        .to_owned();
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Reads one CRLF-terminated line into `out` (terminator stripped),
/// returning raw bytes consumed (0 at EOF). Tolerates bare LF.
fn read_crlf_line(reader: &mut impl BufRead, out: &mut String) -> io::Result<usize> {
    let mut buf = Vec::new();
    let mut n = 0;
    loop {
        let mut byte = [0u8; 1];
        match io::Read::read(reader, &mut byte)? {
            0 => break,
            _ => {
                n += 1;
                if byte[0] == b'\n' {
                    break;
                }
                if n > MAX_HEAD_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "header line too long",
                    ));
                }
                buf.push(byte[0]);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    out.push_str(
        std::str::from_utf8(&buf)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 header"))?,
    );
    Ok(n)
}

/// Reason phrases for the statuses the daemon uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        101 => "Switching Protocols",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with a body.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a JSON response.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_json(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_response(w, status, "application/json", body.as_bytes())
}

/// Writes the 101 upgrade response of a successful WebSocket handshake.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_upgrade(w: &mut impl Write, accept: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 101 Switching Protocols\r\nupgrade: websocket\r\nconnection: Upgrade\r\nsec-websocket-accept: {accept}\r\n\r\n"
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let req = parse("POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_close() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn detects_websocket_upgrades() {
        let req = parse(
            "GET /jobs/job-1/stream HTTP/1.1\r\nUpgrade: WebSocket\r\nConnection: keep-alive, Upgrade\r\nSec-WebSocket-Key: abc\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert!(req.wants_websocket());
        let plain = parse("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(!plain.wants_websocket());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "GET\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        write_json(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
