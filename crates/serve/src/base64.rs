//! Standard-alphabet base64 (RFC 4648 §4), for the WebSocket handshake.
//!
//! `Sec-WebSocket-Accept` is the only base64 the daemon produces — the
//! client's `Sec-WebSocket-Key` is hashed verbatim, never decoded — so
//! only the encoder is load-bearing. A strict decoder rides along for
//! the round-trip tests (and for symmetric-looking call sites).

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` with padding, RFC 4648 §4.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let sextets = [(n >> 18) & 63, (n >> 12) & 63, (n >> 6) & 63, n & 63];
        for (i, &s) in sextets.iter().enumerate() {
            if i <= chunk.len() {
                out.push(ALPHABET[s as usize] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Decodes padded RFC 4648 §4 text. Strict: rejects bad lengths, bad
/// characters, and misplaced padding.
///
/// # Errors
///
/// Returns a description of the first malformed quantum.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("length {} is not a multiple of 4", bytes.len()));
    }
    let value = |c: u8| -> Result<u32, String> {
        ALPHABET
            .iter()
            .position(|&a| a == c)
            .map(|i| i as u32)
            .ok_or_else(|| format!("invalid base64 byte 0x{c:02x}"))
    };
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (qi, quad) in bytes.chunks_exact(4).enumerate() {
        let last = qi + 1 == bytes.len() / 4;
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err("misplaced padding".into());
        }
        if quad[..4 - pad].contains(&b'=') {
            return Err("padding before data".into());
        }
        let mut n = 0u32;
        for &c in &quad[..4 - pad] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pad as u32;
        let full = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        out.extend_from_slice(&full[..3 - pad]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        for (plain, encoded) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain.as_bytes()), encoded);
            assert_eq!(decode(encoded).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn decoder_is_strict() {
        for bad in ["abc", "a===", "=abc", "ab=c", "Zm9v!A==", "Zg==Zg=="] {
            assert!(decode(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
