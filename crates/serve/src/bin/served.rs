//! The campaign-as-a-service daemon CLI.
//!
//! ```text
//! cargo run -p wsn-serve --bin served --release -- \
//!     serve [--addr HOST:PORT] [--state-dir DIR] [--checkpoint-every N] [--workers N]
//! cargo run -p wsn-serve --bin served --release -- bench [--smoke] [--out DIR]
//! ```
//!
//! * `serve` binds the listener, recovers any jobs a previous daemon
//!   left mid-matrix (their checkpoints live in the state directory),
//!   and serves until SIGINT/SIGTERM. Shutdown is graceful: the running
//!   job checkpoints and re-queues, so the next `served` picks it up and
//!   finishes it to a byte-identical artifact.
//! * `bench` writes the `BENCH_serve.json` request/stream-throughput
//!   ledger into `results/` (or `--out`/`$WSN_RESULTS_DIR`), gated by
//!   `perf compare` alongside the other ledgers.

use std::path::PathBuf;
use std::process::ExitCode;

use wsn_serve::server::{ServeConfig, Server};
use wsn_simcore::shutdown;

const USAGE: &str = "usage: served serve [--addr HOST:PORT] [--state-dir DIR] \
[--checkpoint-every N] [--workers N]\n       served bench [--smoke] [--out DIR]";

/// Consumes `--flag value` / `--flag=value` from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Ok(Some(v));
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        return Ok(Some(args.remove(i)[prefix.len()..].to_owned()));
    }
    Ok(None)
}

/// Consumes a bare `--flag` switch from `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{flag} needs a number, got {value:?}"))
}

fn cmd_serve(mut args: Vec<String>) -> Result<(), String> {
    let mut cfg = ServeConfig::default_config();
    if let Some(addr) = take_flag(&mut args, "--addr")? {
        cfg.addr = addr;
    }
    if let Some(dir) = take_flag(&mut args, "--state-dir")? {
        cfg.state_dir = PathBuf::from(dir);
    }
    if let Some(every) = take_flag(&mut args, "--checkpoint-every")? {
        cfg.checkpoint_every = parse_num("--checkpoint-every", &every)?;
    }
    if let Some(workers) = take_flag(&mut args, "--workers")? {
        cfg.workers = Some(parse_num("--workers", &workers)?);
    }
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    shutdown::install_signal_traps();
    let server = Server::bind(&cfg).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let jobs = server.queue().list();
    let queued = jobs
        .iter()
        .filter(|j| j.state == wsn_serve::JobState::Queued)
        .count();
    println!(
        "served: listening on {} (state: {}, {} job(s) known, {} queued)",
        server.local_addr(),
        cfg.state_dir.display(),
        jobs.len(),
        queued
    );
    server.serve().map_err(|e| e.to_string())?;
    println!("served: shut down cleanly (running jobs checkpointed)");
    Ok(())
}

fn cmd_bench(mut args: Vec<String>) -> Result<(), String> {
    let smoke = take_switch(&mut args, "--smoke");
    let dir = match take_flag(&mut args, "--out")? {
        Some(d) => PathBuf::from(d),
        None => std::env::var_os("WSN_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results")),
    };
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let doc = wsn_serve::bench::bench_serve(smoke);
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, doc.to_file_string()).map_err(|e| e.to_string())?;
    println!("serve ledger -> {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = if args.is_empty() {
        "serve".to_owned()
    } else {
        args.remove(0)
    };
    let result = match command.as_str() {
        "serve" => cmd_serve(args),
        "bench" => cmd_bench(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("served: {e}");
            ExitCode::FAILURE
        }
    }
}
