//! End-to-end daemon tests: a real `served` process on a loopback
//! socket, driven through the crate's own client.
//!
//! The headline guarantees pinned here:
//!
//! * a submitted smoke job streams to completion and its artifact is
//!   byte-identical to a direct in-process `run_campaign`;
//! * two concurrent WebSocket subscribers observe the identical ordered
//!   delta sequence;
//! * a daemon killed with SIGKILL mid-job resumes from its checkpoint
//!   on restart and still produces the byte-identical artifact;
//! * SIGTERM is graceful: the daemon exits 0 with the running job
//!   checkpointed and re-queued.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use wsn_bench::campaign::{run_campaign, CampaignConfig};
use wsn_coverage::SchemeId;
use wsn_serve::client;
use wsn_stats::JsonValue;

const DEADLINE: Duration = Duration::from_secs(120);

/// A `served` process bound to an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
    /// Kept open so the daemon's own prints never hit a closed pipe.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    /// Spawns `served serve` on port 0 and parses the bound address
    /// from its startup line.
    fn start(state_dir: &Path, checkpoint_every: u64) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_served"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--state-dir",
                state_dir.to_str().expect("utf-8 state dir"),
                "--checkpoint-every",
                &checkpoint_every.to_string(),
                "--workers",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("served spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("served announces its address");
        // "served: listening on 127.0.0.1:PORT (state: ...)"
        let addr = line
            .split_whitespace()
            .find(|w| w.starts_with("127.0.0.1:"))
            .unwrap_or_else(|| panic!("no address in startup line {line:?}"))
            .to_owned();
        Daemon {
            child,
            addr,
            _stdout: reader,
        }
    }

    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL delivered");
        self.child.wait().expect("killed daemon reaped");
    }

    /// SIGTERM, then wait; returns whether the exit was clean.
    fn terminate(&mut self) -> bool {
        let status = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -TERM failed");
        self.child.wait().expect("daemon reaped").success()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _unused = self.child.kill();
        let _unused = self.child.wait();
    }
}

fn temp_state(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsn-serve-e2e-{tag}-{}", std::process::id()));
    let _unused = std::fs::remove_dir_all(&dir);
    dir
}

fn submit(addr: &str, cfg: &CampaignConfig) -> String {
    let body = cfg.to_json().to_string();
    let response = client::request(addr, "POST", "/jobs", Some(&body)).expect("submit");
    assert_eq!(response.status, 201, "{}", response.body);
    JsonValue::parse(&response.body)
        .ok()
        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(str::to_owned)))
        .expect("submit response carries the id")
}

fn job_state(addr: &str, id: &str) -> (String, u64) {
    let response = client::request(addr, "GET", &format!("/jobs/{id}"), None).expect("status");
    assert_eq!(response.status, 200, "{}", response.body);
    let v = JsonValue::parse(&response.body).expect("status is JSON");
    let state = v
        .get("state")
        .and_then(JsonValue::as_str)
        .expect("state field")
        .to_owned();
    let done = v
        .get("trials_done")
        .and_then(JsonValue::as_f64)
        .expect("trials_done field") as u64;
    (state, done)
}

fn wait_for_state(addr: &str, id: &str, want: &str) {
    let t0 = Instant::now();
    loop {
        let (state, _) = job_state(addr, id);
        if state == want {
            return;
        }
        assert!(
            !matches!(state.as_str(), "failed" | "cancelled"),
            "job {id} reached terminal state {state} while waiting for {want}"
        );
        assert!(
            t0.elapsed() < DEADLINE,
            "job {id} stuck in {state}, wanted {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fetch_result(addr: &str, id: &str) -> String {
    let response =
        client::request(addr, "GET", &format!("/jobs/{id}/result"), None).expect("result");
    assert_eq!(response.status, 200, "{}", response.body);
    response.body
}

/// The reference artifact bytes of a direct in-process run.
fn golden(cfg: &CampaignConfig) -> String {
    run_campaign(cfg)
        .expect("golden run succeeds")
        .to_json()
        .to_file_string()
}

#[test]
fn smoke_job_streams_to_completion_and_matches_the_direct_run() {
    let state = temp_state("smoke");
    let daemon = Daemon::start(&state, 0);
    let health = client::request(&daemon.addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);

    let cfg = CampaignConfig::smoke();
    let id = submit(&daemon.addr, &cfg);
    let lines = client::stream_lines(&daemon.addr, &format!("/jobs/{id}/stream"))
        .expect("stream to completion");
    // job_started + one delta per trial + job_done.
    assert!(
        lines.len() as u64 >= cfg.trial_count() + 2,
        "only {} stream lines for {} trials",
        lines.len(),
        cfg.trial_count()
    );
    for line in &lines {
        let v = JsonValue::parse(line).expect("stream lines are JSON");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("wsn-serve/1")
        );
    }
    assert_eq!(
        JsonValue::parse(lines.last().expect("non-empty stream"))
            .expect("last line is JSON")
            .get("event")
            .and_then(JsonValue::as_str),
        Some("job_done")
    );
    wait_for_state(&daemon.addr, &id, "done");
    assert_eq!(fetch_result(&daemon.addr, &id), golden(&cfg));

    // Unknown routes and premature result fetches answer properly.
    let missing = client::request(&daemon.addr, "GET", "/jobs/job-99", None).expect("404 route");
    assert_eq!(missing.status, 404);
    let _unused = std::fs::remove_dir_all(&state);
}

#[test]
fn concurrent_subscribers_observe_the_identical_ordered_sequence() {
    let state = temp_state("subs");
    let daemon = Daemon::start(&state, 0);
    let cfg = CampaignConfig {
        name: "subs".into(),
        ..CampaignConfig::smoke()
    };
    let id = submit(&daemon.addr, &cfg);
    let path = format!("/jobs/{id}/stream");
    let subscribe = |addr: String, path: String| {
        std::thread::spawn(move || client::stream_lines(&addr, &path).expect("subscriber"))
    };
    // One subscriber races the job from the start; the second joins
    // later and must replay the prefix it missed.
    let early = subscribe(daemon.addr.clone(), path.clone());
    std::thread::sleep(Duration::from_millis(20));
    let late = subscribe(daemon.addr.clone(), path.clone());
    let a = early.join().expect("early subscriber joins");
    let b = late.join().expect("late subscriber joins");
    assert!(!a.is_empty());
    assert_eq!(a, b, "subscribers diverged");
    // A third subscriber connecting after completion replays the full
    // closed log.
    wait_for_state(&daemon.addr, &id, "done");
    let replay = client::stream_lines(&daemon.addr, &path).expect("post-hoc subscriber");
    assert_eq!(a, replay, "post-completion replay diverged");
    let _unused = std::fs::remove_dir_all(&state);
}

/// A job big enough to survive until the test lands its signal:
/// two schemes on the 16×16 grid with the expensive n=1000 cells.
fn long_config() -> CampaignConfig {
    CampaignConfig {
        name: "e2e-long".into(),
        schemes: SchemeId::list(&["ar", "sr"]),
        grids: vec![(16, 16)],
        targets: vec![100, 1000],
        seeds_per_cell: 12,
        ..CampaignConfig::paper()
    }
}

/// Busy-waits until the job's checkpoint file exists (the signal that
/// at least one chunk committed).
fn wait_for_checkpoint(state: &Path, id: &str) {
    let path = state.join(format!("{id}.checkpoint.json"));
    let t0 = Instant::now();
    while !path.exists() {
        assert!(t0.elapsed() < DEADLINE, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn sigkill_mid_job_resumes_to_the_byte_identical_artifact() {
    let state = temp_state("kill9");
    let cfg = long_config();
    let id;
    {
        // Checkpoint every trial: maximal kill surface.
        let mut daemon = Daemon::start(&state, 1);
        id = submit(&daemon.addr, &cfg);
        wait_for_checkpoint(&state, &id);
        daemon.kill9();
    }
    // The kill must have landed mid-job: checkpoint present, no result.
    assert!(
        state.join(format!("{id}.checkpoint.json")).exists(),
        "checkpoint vanished"
    );
    assert!(
        !state.join(format!("{id}.result.json")).exists(),
        "job finished before the kill — enlarge long_config"
    );

    // Restart over the same state dir: the job re-queues and resumes.
    let daemon = Daemon::start(&state, 64);
    let lines = client::stream_lines(&daemon.addr, &format!("/jobs/{id}/stream"))
        .expect("stream resumed job");
    let started = JsonValue::parse(lines.first().expect("resumed stream is non-empty"))
        .expect("job_started is JSON");
    assert_eq!(
        started.get("event").and_then(JsonValue::as_str),
        Some("job_started")
    );
    let resumed_at = started
        .get("resumed_at")
        .and_then(JsonValue::as_f64)
        .expect("resumed job reports its watermark");
    assert!(resumed_at > 0.0, "daemon restarted from scratch");
    wait_for_state(&daemon.addr, &id, "done");
    assert_eq!(
        fetch_result(&daemon.addr, &id),
        golden(&cfg),
        "resumed artifact differs from the uninterrupted run"
    );
    assert!(
        !state.join(format!("{id}.checkpoint.json")).exists(),
        "completed job left its checkpoint behind"
    );
    let _unused = std::fs::remove_dir_all(&state);
}

#[test]
fn sigterm_suspends_gracefully_and_the_restart_finishes_the_job() {
    let state = temp_state("term");
    let cfg = long_config();
    let id;
    {
        let mut daemon = Daemon::start(&state, 1);
        id = submit(&daemon.addr, &cfg);
        wait_for_checkpoint(&state, &id);
        assert!(daemon.terminate(), "SIGTERM exit was not clean");
    }
    assert!(
        state.join(format!("{id}.checkpoint.json")).exists(),
        "graceful shutdown did not leave a checkpoint"
    );
    let daemon = Daemon::start(&state, 0);
    wait_for_state(&daemon.addr, &id, "done");
    assert_eq!(fetch_result(&daemon.addr, &id), golden(&cfg));
    let _unused = std::fs::remove_dir_all(&state);
}

#[test]
fn submissions_are_validated_and_cancellation_is_served() {
    let state = temp_state("reject");
    let daemon = Daemon::start(&state, 0);
    // Malformed JSON, bad scheme, and a structurally broken config.
    for body in [
        "{not json",
        "{\"schema\":\"wsn-campaign/3\"}",
        &CampaignConfig {
            schemes: vec![],
            ..CampaignConfig::smoke()
        }
        .to_json()
        .to_string(),
    ] {
        let response = client::request(&daemon.addr, "POST", "/jobs", Some(body)).expect("post");
        assert_eq!(response.status, 400, "{body:?} was accepted");
    }
    // A job heavy enough (~thousands of trials) that cancelling it
    // mid-run cannot race its completion.
    let big = CampaignConfig {
        name: "e2e-cancel".into(),
        seeds_per_cell: 400,
        ..long_config()
    };
    let running_id = submit(&daemon.addr, &big);
    // A second job parks behind it on the single runner, so its DELETE
    // exercises the queued-cancel path deterministically.
    let queued_id = submit(&daemon.addr, &long_config());
    let deleted = client::request(&daemon.addr, "DELETE", &format!("/jobs/{queued_id}"), None)
        .expect("delete queued");
    assert_eq!(deleted.status, 200);
    // Queued cancellation is synchronous: the next status read is
    // already terminal.
    let (queued_state, _) = job_state(&daemon.addr, &queued_id);
    assert_eq!(queued_state, "cancelled");

    // Result before completion → 409.
    let early = client::request(
        &daemon.addr,
        "GET",
        &format!("/jobs/{running_id}/result"),
        None,
    )
    .expect("early result");
    assert_eq!(early.status, 409);

    // Cancel the running job once it has demonstrably started folding.
    let t0 = Instant::now();
    loop {
        let (job, done) = job_state(&daemon.addr, &running_id);
        if job == "running" && done > 0 {
            break;
        }
        assert!(
            job == "queued" || job == "running",
            "big job reached {job} before the cancel"
        );
        assert!(t0.elapsed() < DEADLINE, "big job never started folding");
        std::thread::sleep(Duration::from_millis(5));
    }
    let deleted = client::request(&daemon.addr, "DELETE", &format!("/jobs/{running_id}"), None)
        .expect("delete running");
    assert_eq!(deleted.status, 200);
    let t0 = Instant::now();
    loop {
        let (job, done) = job_state(&daemon.addr, &running_id);
        if job == "cancelled" {
            assert!(
                done < big.trial_count(),
                "cancelled job claims all trials folded"
            );
            break;
        }
        assert!(t0.elapsed() < DEADLINE, "running cancellation never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // DELETE is idempotent; unknown jobs still 404.
    let again = client::request(&daemon.addr, "DELETE", &format!("/jobs/{running_id}"), None)
        .expect("re-delete");
    assert_eq!(again.status, 200);
    let ghost = client::request(&daemon.addr, "DELETE", "/jobs/job-999", None).expect("ghost");
    assert_eq!(ghost.status, 404);
    let _unused = std::fs::remove_dir_all(&state);
}
