//! RFC 6455 frame-codec edge cases: masking, extended lengths,
//! fragmentation, close codes, and the `decode ∘ encode` identity.

use proptest::prelude::*;
use wsn_serve::ws::{
    accept_key, decode_frame, encode_frame, Frame, Message, MessageAssembler, Opcode, WsError,
};

#[test]
fn rfc_handshake_vector() {
    // RFC 6455 §1.3's worked example.
    assert_eq!(
        accept_key("dGhlIHNhbXBsZSBub25jZQ=="),
        "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    );
    // Keys are taken verbatim (trimmed, never base64-decoded).
    assert_eq!(
        accept_key("  dGhlIHNhbXBsZSBub25jZQ==  "),
        "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    );
}

#[test]
fn masked_client_payloads_unmask() {
    let frame = Frame::text("hello stream");
    let wire = encode_frame(&frame, Some([0xde, 0xad, 0xbe, 0xef]));
    // The masked wire bytes must not contain the plaintext.
    let windows = wire.windows(5).any(|w| w == b"hello");
    assert!(!windows, "masked payload leaked plaintext");
    let (decoded, used) = decode_frame(&wire).unwrap().unwrap();
    assert_eq!(used, wire.len());
    assert_eq!(decoded, frame);
}

#[test]
fn rfc_masked_hello_vector() {
    // RFC 6455 §5.7: a masked "Hello" with key 0x37fa213d.
    let wire = [
        0x81, 0x85, 0x37, 0xfa, 0x21, 0x3d, 0x7f, 0x9f, 0x4d, 0x51, 0x58,
    ];
    let (frame, used) = decode_frame(&wire).unwrap().unwrap();
    assert_eq!(used, wire.len());
    assert_eq!(frame, Frame::text("Hello"));
}

#[test]
fn extended_lengths_use_minimal_encodings() {
    // Boundary payloads: 125 → 7-bit, 126 → 16-bit, 65535 → 16-bit,
    // 65536 → 64-bit.
    for (len, header) in [(125usize, 2usize), (126, 4), (65535, 4), (65536, 10)] {
        let frame = Frame {
            fin: true,
            opcode: Opcode::Binary,
            payload: vec![0xab; len],
        };
        let wire = encode_frame(&frame, None);
        assert_eq!(wire.len(), header + len, "payload {len}");
        let (decoded, used) = decode_frame(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(decoded.payload.len(), len);
    }
}

#[test]
fn non_minimal_lengths_are_rejected() {
    // 16-bit extended length holding 5 (fits in 7 bits).
    let wire = [0x82, 126, 0x00, 0x05, 1, 2, 3, 4, 5];
    assert!(matches!(decode_frame(&wire), Err(WsError::Protocol(_))));
    // 64-bit extended length holding 200 (fits in 16 bits).
    let mut wire = vec![0x82, 127];
    wire.extend_from_slice(&200u64.to_be_bytes());
    wire.extend_from_slice(&[0u8; 200]);
    assert!(matches!(decode_frame(&wire), Err(WsError::Protocol(_))));
    // 64-bit length with the MSB set (RFC 6455 §5.2).
    let mut wire = vec![0x82, 127];
    wire.extend_from_slice(&(1u64 << 63 | 70_000).to_be_bytes());
    assert!(matches!(decode_frame(&wire), Err(WsError::Protocol(_))));
}

#[test]
fn hostile_length_prefixes_do_not_allocate() {
    // Claims an 8 EiB payload; must fail fast, not reserve memory.
    let mut wire = vec![0x82, 127];
    wire.extend_from_slice(&(1u64 << 62).to_be_bytes());
    assert!(matches!(decode_frame(&wire), Err(WsError::TooLarge(_))));
}

#[test]
fn incomplete_prefixes_ask_for_more_bytes() {
    let frame = Frame::text("partial delivery");
    let wire = encode_frame(&frame, Some([9, 8, 7, 6]));
    // Every strict prefix decodes to "need more", never an error.
    for cut in 0..wire.len() {
        assert_eq!(decode_frame(&wire[..cut]).unwrap(), None, "cut at {cut}");
    }
    assert!(decode_frame(&wire).unwrap().is_some());
}

#[test]
fn reserved_bits_and_opcodes_are_rejected() {
    for b0 in [0xC1u8, 0xA1, 0x91] {
        // RSV1-3
        assert!(matches!(
            decode_frame(&[b0, 0x00]),
            Err(WsError::Protocol(_))
        ));
    }
    for opcode in [0x3u8, 0x7, 0xB, 0xF] {
        // reserved opcodes
        assert!(matches!(
            decode_frame(&[0x80 | opcode, 0x00]),
            Err(WsError::Protocol(_))
        ));
    }
}

#[test]
fn control_frames_may_not_fragment_or_exceed_125_bytes() {
    // Ping with fin=0.
    assert!(matches!(
        decode_frame(&[0x09, 0x00]),
        Err(WsError::Protocol(_))
    ));
    // Close with a 16-bit length (>125 is illegal even when complete).
    let mut wire = vec![0x88, 126, 0x00, 0x80];
    wire.extend_from_slice(&[0u8; 128]);
    assert!(matches!(decode_frame(&wire), Err(WsError::Protocol(_))));
}

#[test]
fn close_codes_round_trip() {
    for (code, reason) in [
        (1000u16, "stream complete"),
        (1001, "server shutting down"),
        (1002, ""),
        (4999, "app-specific"),
    ] {
        let frame = Frame::close(code, reason);
        let wire = encode_frame(&frame, None);
        let (decoded, _) = decode_frame(&wire).unwrap().unwrap();
        assert_eq!(decoded.close_code(), Some((code, reason.to_owned())));
    }
    // An empty close payload carries no code.
    let empty = Frame {
        fin: true,
        opcode: Opcode::Close,
        payload: Vec::new(),
    };
    assert_eq!(empty.close_code(), None);
}

#[test]
fn fragmented_messages_reassemble_with_interleaved_control() {
    let mut assembler = MessageAssembler::new();
    let first = Frame {
        fin: false,
        opcode: Opcode::Text,
        payload: b"wsn-".to_vec(),
    };
    assert_eq!(assembler.push(first).unwrap(), None);
    // A ping between fragments is legal and surfaces immediately.
    let ping = Frame {
        fin: true,
        opcode: Opcode::Ping,
        payload: b"hb".to_vec(),
    };
    assert_eq!(
        assembler.push(ping).unwrap(),
        Some(Message::Ping(b"hb".to_vec()))
    );
    let middle = Frame {
        fin: false,
        opcode: Opcode::Continuation,
        payload: b"serve".to_vec(),
    };
    assert_eq!(assembler.push(middle).unwrap(), None);
    let last = Frame {
        fin: true,
        opcode: Opcode::Continuation,
        payload: b"/1".to_vec(),
    };
    assert_eq!(
        assembler.push(last).unwrap(),
        Some(Message::Text("wsn-serve/1".to_owned()))
    );
}

#[test]
fn assembler_rejects_protocol_violations() {
    // A data frame while a fragmented message is open.
    let mut assembler = MessageAssembler::new();
    let open = Frame {
        fin: false,
        opcode: Opcode::Binary,
        payload: vec![1],
    };
    assembler.push(open).unwrap();
    assert!(assembler.push(Frame::text("interleaved")).is_err());
    // An orphan continuation with nothing open.
    let mut fresh = MessageAssembler::new();
    let orphan = Frame {
        fin: true,
        opcode: Opcode::Continuation,
        payload: vec![2],
    };
    assert!(fresh.push(orphan).is_err());
    // Fragments assembling to invalid UTF-8 text.
    let mut utf8 = MessageAssembler::new();
    let bad_start = Frame {
        fin: false,
        opcode: Opcode::Text,
        payload: vec![0xE2, 0x82], // truncated '€'
    };
    utf8.push(bad_start).unwrap();
    let bad_end = Frame {
        fin: true,
        opcode: Opcode::Continuation,
        payload: vec![0xFF],
    };
    assert!(utf8.push(bad_end).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `decode ∘ encode` is the identity for every frame shape the
    /// codec can produce, masked or not, at every length class.
    #[test]
    fn decode_encode_identity(
        raw_payload in proptest::collection::vec(0u16..256, 0..300),
        opcode_pick in 0usize..3,
        fin_pick in 0u8..2,
        mask_pick in 0u8..2,
        raw_key in proptest::collection::vec(0u16..256, 4..5),
        stretch in 0usize..3,
    ) {
        let opcode = [Opcode::Text, Opcode::Binary, Opcode::Continuation][opcode_pick];
        let fin = fin_pick == 1;
        // Stretch some cases into the 16-bit length class so the
        // extended encodings see random payloads too.
        let mut payload: Vec<u8> = raw_payload.iter().map(|&b| b as u8).collect();
        if stretch == 2 {
            let extra = payload.len() * 300 + 126;
            payload.resize(extra.min(70_000), 0x5a);
        }
        let frame = Frame { fin, opcode, payload };
        let mask = (mask_pick == 1)
            .then(|| [raw_key[0] as u8, raw_key[1] as u8, raw_key[2] as u8, raw_key[3] as u8]);
        let wire = encode_frame(&frame, mask);
        let (decoded, used) = decode_frame(&wire).unwrap().expect("complete frame");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(decoded, frame);
        // Trailing bytes after the frame are untouched.
        let mut padded = wire;
        padded.extend_from_slice(b"tail");
        let (_, used_padded) = decode_frame(&padded).unwrap().expect("complete frame");
        prop_assert_eq!(used_padded, used);
    }
}
