//! Property tests for the trace codecs: the binary and JSON-Lines
//! encodings must round-trip arbitrary event sequences byte-identically
//! in both directions (decode∘encode is the identity on logs,
//! encode∘decode is the identity on accepted byte streams).

use proptest::prelude::*;
use wsn_simcore::trace::{binary, TraceLog};
use wsn_simcore::{NodeId, Round, TraceEvent};

/// Strings that exercise every escape path of the JSON writer.
const REASONS: [&str; 7] = [
    "",
    "no spare",
    "said \"no\"",
    "line\nbreak and\r return",
    "tab\there",
    "π ∈ ℝ, 🛰",
    "back\\slash \u{1} control",
];

fn event() -> impl Strategy<Value = TraceEvent> {
    (
        (0u8..10, 0u64..u64::MAX, 0u32..u32::MAX),
        (0u16..u16::MAX, 0u16..u16::MAX),
        (0u16..u16::MAX, 0u16..u16::MAX),
        (-1e9..1e9f64, -1e9..1e9f64),
        &REASONS,
    )
        .prop_map(|((tag, n, node), c1, c2, (d1, d2), reason)| match tag {
            0 => TraceEvent::NodeDisabled {
                node: NodeId::new(node),
                cell: c1,
            },
            1 => TraceEvent::VacancyDetected {
                cell: c1,
                detector: c2,
            },
            2 => TraceEvent::ProcessInitiated {
                process: n,
                hole: c1,
                initiator: c2,
            },
            3 => TraceEvent::NotificationSent {
                process: n,
                from: c1,
                to: c2,
            },
            4 => TraceEvent::NodeMoved {
                process: (n % 2 == 0).then_some(n),
                node: NodeId::new(node),
                from: c1,
                to: c2,
                distance: d1,
            },
            5 => TraceEvent::ProcessConverged {
                process: n,
                moves: n.rotate_left(13),
            },
            6 => TraceEvent::ProcessFailed {
                process: n,
                reason: reason.to_string(),
            },
            7 => TraceEvent::HeadElected {
                cell: c1,
                node: NodeId::new(node),
            },
            8 => TraceEvent::NodeRepositioned {
                node: NodeId::new(node),
                to: wsn_geometry::Point2::new(d1, d2),
                distance: d1.abs(),
            },
            _ => TraceEvent::NetMessage {
                msg: reason.to_string(),
                from: c1,
                to: c2,
                deliver_at: (n % 2 == 0).then_some(n),
            },
        })
}

fn log() -> impl Strategy<Value = TraceLog> {
    prop::collection::vec((0u64..1_000_000, event()), 0..40).prop_map(|records| {
        let mut log = TraceLog::new();
        for (round, event) in records {
            log.record(round as Round, event);
        }
        log
    })
}

fn meta() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        (
            &["schema", "scheme", "grid", "trial", "fault_plan"][..],
            &REASONS,
        ),
        0..5,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    })
}

proptest! {
    #[test]
    fn binary_decode_inverts_encode(log in log()) {
        let bytes = log.to_binary();
        let decoded = TraceLog::from_binary(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &log);
        // Byte-identical in the other direction: re-encoding the decoded
        // log reproduces the exact stream (the encoding is canonical).
        prop_assert_eq!(decoded.to_binary(), bytes);
    }

    #[test]
    fn binary_meta_round_trips(log in log(), meta in meta()) {
        let bytes = binary::encode(&meta, &log);
        let (meta2, log2) = binary::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&meta2, &meta);
        prop_assert_eq!(&log2, &log);
        prop_assert_eq!(binary::encode(&meta2, &log2), bytes);
    }

    #[test]
    fn json_lines_decode_inverts_encode(log in log()) {
        let text = log.to_json_lines();
        let decoded = TraceLog::from_json_lines(&text).expect("own output parses");
        prop_assert_eq!(&decoded, &log);
        // Canonical text: a second generation is byte-identical.
        prop_assert_eq!(decoded.to_json_lines(), text);
    }

    #[test]
    fn corrupt_binary_never_panics(log in log(), cut in 0usize..64, flip in 0usize..64) {
        let mut bytes = log.to_binary();
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] ^= 0x55;
            let _ = TraceLog::from_binary(&bytes); // must not panic
            let prefix = &bytes[..cut.min(bytes.len())];
            let _ = TraceLog::from_binary(prefix); // must not panic
        }
    }
}
