//! Cost counters matching the paper's evaluation metrics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Aggregate cost counters for one protocol run.
///
/// The fields mirror Section 5 of the paper: it evaluates schemes by the
/// number of replacement processes initiated (Fig. 6a), their success rate
/// (Fig. 6b), the total number of node movements (Fig. 7) and the total
/// moving distance in meters (Fig. 8). Message and energy counters extend
/// the paper's accounting (its §1 argues communication cost matters but it
/// does not plot it).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Completed node movements (one per grid-to-grid hop).
    pub moves: u64,
    /// Total moving distance, meters.
    pub distance: f64,
    /// Replacement processes initiated.
    pub processes_initiated: u64,
    /// Replacement processes that converged (found a spare).
    pub processes_converged: u64,
    /// Replacement processes that failed.
    pub processes_failed: u64,
    /// Control messages sent between heads.
    pub messages: u64,
    /// Energy drawn across all nodes, joules.
    pub energy: f64,
    /// Rounds executed.
    pub rounds: u64,
    /// Cells (or nodes, for node-centric schemes) examined by occupancy
    /// scans: hole-detection sweeps, global balancing scans, force-field
    /// snapshots. Quantifies the paper's §1 criticism of global schemes —
    /// SR's change-journal detection keeps this O(changed) per round
    /// while scan-based baselines accumulate full-grid counts.
    pub cells_scanned: u64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Stable names of the per-trial observables, in the order
    /// [`Metrics::field_values`] reports them. Campaign aggregation keys
    /// its streaming accumulators (and the JSON/CSV schema) off this
    /// table, so adding a counter here automatically extends every
    /// downstream artifact.
    pub const FIELD_NAMES: [&'static str; 10] = [
        "moves",
        "distance",
        "processes_initiated",
        "processes_converged",
        "processes_failed",
        "success_rate_percent",
        "messages",
        "energy",
        "rounds",
        "cells_scanned",
    ];

    /// The counters as `f64` observables, parallel to
    /// [`Metrics::FIELD_NAMES`] — one Monte-Carlo observation per field,
    /// ready to fold into streaming summaries.
    pub fn field_values(&self) -> [f64; 10] {
        [
            self.moves as f64,
            self.distance,
            self.processes_initiated as f64,
            self.processes_converged as f64,
            self.processes_failed as f64,
            self.success_rate_percent(),
            self.messages as f64,
            self.energy,
            self.rounds as f64,
            self.cells_scanned as f64,
        ]
    }

    /// The same counters with round accounting stripped (`rounds = 0`) —
    /// what a protocol *did*, independent of how long the driver kept
    /// confirming quiescence. [`crate::engine::RoundRunner::run`] bills
    /// its trailing idle-confirmation rounds where
    /// [`crate::engine::RoundRunner::run_change_driven`] stops the moment
    /// the protocol's index reads empty, so on runs whose pending-hole
    /// set empties (full recovery) the two drivers agree on every
    /// counter except `rounds`; conformance tests compare this view.
    /// (On *incomplete* recoveries the classic driver's idle sweeps also
    /// keep billing the still-pending holes to `cells_scanned`.)
    #[must_use]
    pub fn ignoring_rounds(mut self) -> Metrics {
        self.rounds = 0;
        self
    }

    /// Per-process success rate in percent, the paper's Fig. 6b metric.
    /// Returns 100.0 when no process was initiated (an intact network
    /// counts as fully successful).
    pub fn success_rate_percent(&self) -> f64 {
        if self.processes_initiated == 0 {
            100.0
        } else {
            100.0 * self.processes_converged as f64 / self.processes_initiated as f64
        }
    }

    /// Records one movement of `distance` meters.
    pub fn record_move(&mut self, distance: f64) {
        self.moves += 1;
        self.distance += distance;
    }

    /// Records one control message.
    pub fn record_message(&mut self) {
        self.messages += 1;
    }
}

impl Add for Metrics {
    type Output = Metrics;
    fn add(self, rhs: Metrics) -> Metrics {
        Metrics {
            moves: self.moves + rhs.moves,
            distance: self.distance + rhs.distance,
            processes_initiated: self.processes_initiated + rhs.processes_initiated,
            processes_converged: self.processes_converged + rhs.processes_converged,
            processes_failed: self.processes_failed + rhs.processes_failed,
            messages: self.messages + rhs.messages,
            energy: self.energy + rhs.energy,
            rounds: self.rounds.max(rhs.rounds),
            cells_scanned: self.cells_scanned + rhs.cells_scanned,
        }
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "moves={} distance={:.1}m processes={} ({} ok, {} failed, {:.1}%) messages={} energy={:.1}J rounds={} scanned={}",
            self.moves,
            self.distance,
            self.processes_initiated,
            self.processes_converged,
            self.processes_failed,
            self.success_rate_percent(),
            self.messages,
            self.energy,
            self.rounds,
            self.cells_scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_conventions() {
        let mut m = Metrics::new();
        assert_eq!(m.success_rate_percent(), 100.0);
        m.processes_initiated = 4;
        m.processes_converged = 3;
        m.processes_failed = 1;
        assert_eq!(m.success_rate_percent(), 75.0);
    }

    #[test]
    fn record_helpers() {
        let mut m = Metrics::new();
        m.record_move(2.5);
        m.record_move(1.5);
        m.record_message();
        assert_eq!(m.moves, 2);
        assert_eq!(m.distance, 4.0);
        assert_eq!(m.messages, 1);
    }

    #[test]
    fn addition_merges_counters_and_takes_max_rounds() {
        let a = Metrics {
            moves: 2,
            distance: 3.0,
            processes_initiated: 1,
            processes_converged: 1,
            processes_failed: 0,
            messages: 5,
            energy: 1.0,
            rounds: 7,
            cells_scanned: 100,
        };
        let b = Metrics {
            moves: 1,
            distance: 1.0,
            processes_initiated: 2,
            processes_converged: 1,
            processes_failed: 1,
            messages: 2,
            energy: 0.5,
            rounds: 3,
            cells_scanned: 10,
        };
        let c = a + b;
        assert_eq!(c.moves, 3);
        assert_eq!(c.distance, 4.0);
        assert_eq!(c.processes_initiated, 3);
        assert_eq!(c.rounds, 7);
        assert_eq!(c.cells_scanned, 110);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn field_values_parallel_field_names() {
        let m = Metrics {
            moves: 2,
            distance: 3.5,
            processes_initiated: 4,
            processes_converged: 3,
            processes_failed: 1,
            messages: 6,
            energy: 7.25,
            rounds: 8,
            cells_scanned: 9,
        };
        let values = m.field_values();
        assert_eq!(values.len(), Metrics::FIELD_NAMES.len());
        let lookup = |name: &str| {
            let i = Metrics::FIELD_NAMES
                .iter()
                .position(|&f| f == name)
                .unwrap();
            values[i]
        };
        assert_eq!(lookup("moves"), 2.0);
        assert_eq!(lookup("distance"), 3.5);
        assert_eq!(lookup("success_rate_percent"), 75.0);
        assert_eq!(lookup("rounds"), 8.0);
        assert_eq!(lookup("cells_scanned"), 9.0);
    }

    #[test]
    fn ignoring_rounds_strips_only_round_accounting() {
        let m = Metrics {
            moves: 5,
            rounds: 11,
            messages: 2,
            ..Metrics::default()
        };
        let n = m.ignoring_rounds();
        assert_eq!(n.rounds, 0);
        assert_eq!(n.moves, 5);
        assert_eq!(n.messages, 2);
        // Two runs that differ only in idle-round padding compare equal.
        let padded = Metrics { rounds: 40, ..m };
        assert_eq!(m.ignoring_rounds(), padded.ignoring_rounds());
    }

    #[test]
    fn display_mentions_all_headline_numbers() {
        let m = Metrics {
            moves: 9,
            distance: 12.5,
            ..Metrics::default()
        };
        let s = m.to_string();
        assert!(s.contains("moves=9"));
        assert!(s.contains("12.5"));
    }
}
