//! Energy model for movement and communication cost accounting.
//!
//! The paper evaluates cost in *number of movements* and *total moving
//! distance*; it motivates those metrics by the energy they consume
//! (moving a sensor drains far more battery than transmitting). This
//! module gives the reproduction an explicit, configurable energy model so
//! the same experiments can also be read in energy units, and so fault
//! injection can model battery-depletion attacks (the paper's §1 cites
//! jamming attacks that "deplete their battery power").
//!
//! Default constants follow the common first-order model used by the
//! movement-assisted deployment literature the paper compares against
//! (Wang et al. \[5\]): movement ≈ 1 J/m (orders of magnitude above
//! communication), transmission/reception in the mJ range per message.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Energy prices for the three billable actions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Joules consumed per meter of mechanical movement.
    pub move_cost_per_meter: f64,
    /// Joules consumed per message sent (heads exchange monitoring and
    /// notification messages).
    pub message_cost: f64,
    /// Joules consumed per round of idle surveillance duty.
    pub idle_cost_per_round: f64,
}

impl EnergyModel {
    /// Cost of a movement of `distance` meters.
    #[inline]
    pub fn movement(&self, distance: f64) -> f64 {
        self.move_cost_per_meter * distance
    }

    /// Cost of sending `messages` messages.
    #[inline]
    pub fn messaging(&self, messages: u64) -> f64 {
        self.message_cost * messages as f64
    }

    /// Cost of `node_rounds` node-rounds of idle surveillance duty.
    #[inline]
    pub fn idle(&self, node_rounds: u64) -> f64 {
        self.idle_cost_per_round * node_rounds as f64
    }

    /// Total bill for an episode: movement over `distance` meters plus
    /// `messages` messages plus `node_rounds` node-rounds of idling.
    ///
    /// This is the per-tick billing entry point of the steady-state
    /// workloads: the bench feeds in the tick's [`crate::Metrics`] deltas
    /// (distance, messages) and the enabled-node-count × rounds product.
    pub fn bill(&self, distance: f64, messages: u64, node_rounds: u64) -> f64 {
        self.movement(distance) + self.messaging(messages) + self.idle(node_rounds)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            move_cost_per_meter: 1.0,
            message_cost: 0.001,
            idle_cost_per_round: 0.0001,
        }
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy(move={} J/m, msg={} J, idle={} J/round)",
            self.move_cost_per_meter, self.message_cost, self.idle_cost_per_round
        )
    }
}

/// Battery state of one node.
///
/// Charge is clamped at zero; [`Battery::is_depleted`] reports exhaustion.
/// A depleted battery does not automatically disable a node — the protocol
/// layer decides that, since the paper treats "disabled" as an input
/// condition rather than a simulated consequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: f64,
    charge: f64,
}

impl Battery {
    /// A battery with the given capacity, fully charged.
    ///
    /// Capacities that are non-finite or negative are clamped to zero
    /// (an explicitly dead battery is a valid model input).
    pub fn new(capacity: f64) -> Battery {
        let cap = if capacity.is_finite() && capacity > 0.0 {
            capacity
        } else {
            0.0
        };
        Battery {
            capacity: cap,
            charge: cap,
        }
    }

    /// Full capacity, joules.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Remaining charge, joules.
    #[inline]
    pub fn charge(&self) -> f64 {
        self.charge
    }

    /// Remaining fraction in `[0, 1]` (0 for a zero-capacity battery).
    pub fn fraction(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            self.charge / self.capacity
        }
    }

    /// `true` when the charge has reached zero.
    #[inline]
    pub fn is_depleted(&self) -> bool {
        self.charge <= 0.0
    }

    /// Draws `amount` joules; charge saturates at zero. Negative draws are
    /// ignored (charging is modeled by constructing a new battery).
    pub fn draw(&mut self, amount: f64) {
        if amount > 0.0 {
            self.charge = (self.charge - amount).max(0.0);
        }
    }
}

impl Default for Battery {
    /// 10 kJ — enough for ~10 km of default-model movement, i.e.
    /// effectively unconstrained for the paper's experiments, while still
    /// letting depletion scenarios opt in with smaller capacities.
    fn default() -> Self {
        Battery::new(10_000.0)
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}/{:.1} J", self.charge, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_cost_scales_with_distance() {
        let m = EnergyModel::default();
        assert_eq!(m.movement(5.0), 5.0);
        let custom = EnergyModel {
            move_cost_per_meter: 2.5,
            ..EnergyModel::default()
        };
        assert_eq!(custom.movement(4.0), 10.0);
    }

    #[test]
    fn bill_sums_the_three_tariffs() {
        let m = EnergyModel::default();
        assert_eq!(m.messaging(1000), 1.0);
        assert_eq!(m.idle(10_000), 1.0);
        let bill = m.bill(3.0, 500, 5000);
        assert!((bill - (3.0 + 0.5 + 0.5)).abs() < 1e-12);
        assert_eq!(m.bill(0.0, 0, 0), 0.0);
    }

    #[test]
    fn battery_draw_saturates() {
        let mut b = Battery::new(10.0);
        assert_eq!(b.fraction(), 1.0);
        b.draw(4.0);
        assert_eq!(b.charge(), 6.0);
        b.draw(100.0);
        assert_eq!(b.charge(), 0.0);
        assert!(b.is_depleted());
        b.draw(-5.0); // ignored
        assert_eq!(b.charge(), 0.0);
    }

    #[test]
    fn invalid_capacity_clamps_to_dead() {
        for cap in [f64::NAN, f64::NEG_INFINITY, -3.0] {
            let b = Battery::new(cap);
            assert_eq!(b.capacity(), 0.0);
            assert!(b.is_depleted());
            assert_eq!(b.fraction(), 0.0);
        }
    }

    #[test]
    fn default_battery_is_effectively_unconstrained() {
        let b = Battery::default();
        let m = EnergyModel::default();
        // The longest plausible experiment: 3500 moves of ~1.9 * 4.47 m.
        let worst = 3500.0 * 1.91 * 4.4721;
        assert!(b.charge() > m.movement(worst) * 0.3);
    }

    #[test]
    fn displays_nonempty() {
        assert!(!EnergyModel::default().to_string().is_empty());
        assert!(!Battery::default().to_string().is_empty());
    }
}
