//! Structured event tracing for protocol runs.
//!
//! Traces serve three purposes in the reproduction: debugging the
//! round-based protocols, rendering the step-by-step narration in the
//! examples, and asserting fine-grained behaviour in integration tests
//! (e.g. "exactly one replacement process was initiated for this hole" —
//! the paper's headline synchronization property).
//!
//! Grid cells are identified here by plain `(x, y)` pairs to keep this
//! crate independent of the grid layer; `wsn-grid`'s `GridCoord` converts
//! to and from these pairs.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_geometry::Point2;

use crate::node::NodeId;
use crate::Round;

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A node was disabled by fault injection.
    NodeDisabled {
        /// The disabled node.
        node: NodeId,
        /// Cell that contained the node.
        cell: (u16, u16),
    },
    /// A cell was detected vacant by the monitoring head.
    VacancyDetected {
        /// The vacant cell.
        cell: (u16, u16),
        /// Cell of the head that detected the vacancy.
        detector: (u16, u16),
    },
    /// A replacement process was initiated.
    ProcessInitiated {
        /// Process identifier (dense per run).
        process: u64,
        /// The hole the process is recovering.
        hole: (u16, u16),
        /// Cell of the initiating head.
        initiator: (u16, u16),
    },
    /// A head sent a replacement notification to its predecessor.
    NotificationSent {
        /// Process identifier.
        process: u64,
        /// Sender cell.
        from: (u16, u16),
        /// Receiver cell.
        to: (u16, u16),
    },
    /// A node moved from one cell to another.
    NodeMoved {
        /// Process that caused the movement (if any; `None` for
        /// non-protocol movements such as virtual-force steps).
        process: Option<u64>,
        /// The moving node.
        node: NodeId,
        /// Source cell.
        from: (u16, u16),
        /// Destination cell.
        to: (u16, u16),
        /// Distance covered, meters.
        distance: f64,
    },
    /// A replacement process converged (a spare reached the hole chain).
    ProcessConverged {
        /// Process identifier.
        process: u64,
        /// Number of movements the process used.
        moves: u64,
    },
    /// A replacement process failed.
    ProcessFailed {
        /// Process identifier.
        process: u64,
        /// Human-readable failure reason.
        reason: String,
    },
    /// A head was (re-)elected in a cell.
    HeadElected {
        /// The cell.
        cell: (u16, u16),
        /// The new head node.
        node: NodeId,
    },
    /// A node was repositioned without protocol involvement (deployment,
    /// balancing baselines).
    NodeRepositioned {
        /// The node.
        node: NodeId,
        /// New position.
        to: Point2,
        /// Distance covered, meters.
        distance: f64,
    },
}

impl TraceEvent {
    /// Short machine-friendly tag of the event kind (used by filters).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::NodeDisabled { .. } => "node_disabled",
            TraceEvent::VacancyDetected { .. } => "vacancy_detected",
            TraceEvent::ProcessInitiated { .. } => "process_initiated",
            TraceEvent::NotificationSent { .. } => "notification_sent",
            TraceEvent::NodeMoved { .. } => "node_moved",
            TraceEvent::ProcessConverged { .. } => "process_converged",
            TraceEvent::ProcessFailed { .. } => "process_failed",
            TraceEvent::HeadElected { .. } => "head_elected",
            TraceEvent::NodeRepositioned { .. } => "node_repositioned",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::NodeDisabled { node, cell } => {
                write!(f, "{node} disabled in ({}, {})", cell.0, cell.1)
            }
            TraceEvent::VacancyDetected { cell, detector } => write!(
                f,
                "vacancy at ({}, {}) detected by head of ({}, {})",
                cell.0, cell.1, detector.0, detector.1
            ),
            TraceEvent::ProcessInitiated {
                process,
                hole,
                initiator,
            } => write!(
                f,
                "process #{process} initiated at ({}, {}) for hole ({}, {})",
                initiator.0, initiator.1, hole.0, hole.1
            ),
            TraceEvent::NotificationSent { process, from, to } => write!(
                f,
                "process #{process}: notification ({}, {}) -> ({}, {})",
                from.0, from.1, to.0, to.1
            ),
            TraceEvent::NodeMoved {
                process,
                node,
                from,
                to,
                distance,
            } => match process {
                Some(p) => write!(
                    f,
                    "process #{p}: {node} moved ({}, {}) -> ({}, {}) [{distance:.2} m]",
                    from.0, from.1, to.0, to.1
                ),
                None => write!(
                    f,
                    "{node} moved ({}, {}) -> ({}, {}) [{distance:.2} m]",
                    from.0, from.1, to.0, to.1
                ),
            },
            TraceEvent::ProcessConverged { process, moves } => {
                write!(f, "process #{process} converged after {moves} moves")
            }
            TraceEvent::ProcessFailed { process, reason } => {
                write!(f, "process #{process} failed: {reason}")
            }
            TraceEvent::HeadElected { cell, node } => {
                write!(f, "{node} elected head of ({}, {})", cell.0, cell.1)
            }
            TraceEvent::NodeRepositioned { node, to, distance } => {
                write!(f, "{node} repositioned to {to} [{distance:.2} m]")
            }
        }
    }
}

/// A time-stamped trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Round in which the event occurred.
    pub round: Round,
    /// The event.
    pub event: TraceEvent,
}

/// An append-only event log with query helpers.
///
/// Recording can be disabled ([`TraceLog::disabled`]) for large
/// Monte-Carlo sweeps; a disabled log drops events in O(1) without
/// allocating, so protocols can trace unconditionally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// A log that records events.
    pub fn new() -> TraceLog {
        TraceLog {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// A log that silently drops events (for big sweeps).
    pub fn disabled() -> TraceLog {
        TraceLog {
            enabled: false,
            records: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends `event` at `round` (no-op when disabled).
    pub fn record(&mut self, round: Round, event: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord { round, event });
        }
    }

    /// All records in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records have been kept.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over records whose event kind equals `kind`
    /// (see [`TraceEvent::kind`]).
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    /// Counts records of the given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    /// Renders the whole log, one event per line, for examples and debug
    /// dumps.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "[round {:>4}] {}", r.round, r.event);
        }
        out
    }

    /// Serializes the log as JSON Lines (one object per record) for
    /// external tooling: each line carries `round`, `kind` and the
    /// event's fields flattened into simple keys. Hand-rolled on purpose
    /// — the values are rounds, ids, cell pairs and distances, so a JSON
    /// dependency would buy nothing (DESIGN.md keeps the dependency set
    /// minimal).
    pub fn to_json_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let mut fields: Vec<(&str, String)> = vec![("round", r.round.to_string())];
            let kind = r.event.kind();
            match &r.event {
                TraceEvent::NodeDisabled { node, cell } => {
                    fields.push(("node", node.raw().to_string()));
                    fields.push(("cell", format!("[{},{}]", cell.0, cell.1)));
                }
                TraceEvent::VacancyDetected { cell, detector } => {
                    fields.push(("cell", format!("[{},{}]", cell.0, cell.1)));
                    fields.push(("detector", format!("[{},{}]", detector.0, detector.1)));
                }
                TraceEvent::ProcessInitiated {
                    process,
                    hole,
                    initiator,
                } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("hole", format!("[{},{}]", hole.0, hole.1)));
                    fields.push(("initiator", format!("[{},{}]", initiator.0, initiator.1)));
                }
                TraceEvent::NotificationSent { process, from, to } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("from", format!("[{},{}]", from.0, from.1)));
                    fields.push(("to", format!("[{},{}]", to.0, to.1)));
                }
                TraceEvent::NodeMoved {
                    process,
                    node,
                    from,
                    to,
                    distance,
                } => {
                    if let Some(p) = process {
                        fields.push(("process", p.to_string()));
                    }
                    fields.push(("node", node.raw().to_string()));
                    fields.push(("from", format!("[{},{}]", from.0, from.1)));
                    fields.push(("to", format!("[{},{}]", to.0, to.1)));
                    fields.push(("distance", format!("{distance:.6}")));
                }
                TraceEvent::ProcessConverged { process, moves } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("moves", moves.to_string()));
                }
                TraceEvent::ProcessFailed { process, reason } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("reason", format!("\"{}\"", json_escape(reason))));
                }
                TraceEvent::HeadElected { cell, node } => {
                    fields.push(("cell", format!("[{},{}]", cell.0, cell.1)));
                    fields.push(("node", node.raw().to_string()));
                }
                TraceEvent::NodeRepositioned { node, to, distance } => {
                    fields.push(("node", node.raw().to_string()));
                    fields.push(("x", format!("{:.6}", to.x)));
                    fields.push(("y", format!("{:.6}", to.y)));
                    fields.push(("distance", format!("{distance:.6}")));
                }
            }
            let _ = write!(out, "{{\"kind\":\"{kind}\"");
            for (k, v) in fields {
                let _ = write!(out, ",\"{k}\":{v}");
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent::ProcessInitiated {
            process: 1,
            hole: (2, 3),
            initiator: (2, 2),
        }
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::new();
        log.record(0, sample_event());
        log.record(
            1,
            TraceEvent::ProcessConverged {
                process: 1,
                moves: 2,
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].round, 0);
        assert_eq!(log.records()[1].round, 1);
        assert!(!log.is_empty());
    }

    #[test]
    fn disabled_log_drops_everything() {
        let mut log = TraceLog::disabled();
        for r in 0..100 {
            log.record(r, sample_event());
        }
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn kind_filtering() {
        let mut log = TraceLog::new();
        log.record(0, sample_event());
        log.record(
            0,
            TraceEvent::NodeMoved {
                process: Some(1),
                node: NodeId::new(5),
                from: (0, 0),
                to: (0, 1),
                distance: 4.5,
            },
        );
        log.record(
            1,
            TraceEvent::ProcessFailed {
                process: 2,
                reason: "no spare".into(),
            },
        );
        assert_eq!(log.count_kind("process_initiated"), 1);
        assert_eq!(log.count_kind("node_moved"), 1);
        assert_eq!(log.count_kind("process_failed"), 1);
        assert_eq!(log.count_kind("head_elected"), 0);
    }

    #[test]
    fn every_event_kind_has_nonempty_display() {
        let events = vec![
            TraceEvent::NodeDisabled {
                node: NodeId::new(0),
                cell: (0, 0),
            },
            TraceEvent::VacancyDetected {
                cell: (1, 1),
                detector: (1, 0),
            },
            sample_event(),
            TraceEvent::NotificationSent {
                process: 0,
                from: (0, 0),
                to: (0, 1),
            },
            TraceEvent::NodeMoved {
                process: None,
                node: NodeId::new(1),
                from: (0, 0),
                to: (1, 0),
                distance: 1.0,
            },
            TraceEvent::ProcessConverged {
                process: 0,
                moves: 1,
            },
            TraceEvent::ProcessFailed {
                process: 0,
                reason: "x".into(),
            },
            TraceEvent::HeadElected {
                cell: (0, 0),
                node: NodeId::new(2),
            },
            TraceEvent::NodeRepositioned {
                node: NodeId::new(3),
                to: Point2::new(1.0, 2.0),
                distance: 2.0,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        for e in &events {
            assert!(!e.to_string().is_empty());
        }
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 9, "kinds must be distinct");
    }

    #[test]
    fn render_contains_rounds_and_lines() {
        let mut log = TraceLog::new();
        log.record(3, sample_event());
        let s = log.render();
        assert!(s.contains("[round    3]"));
        assert!(s.lines().count() == 1);
    }

    #[test]
    fn json_lines_one_object_per_record() {
        let mut log = TraceLog::new();
        log.record(0, sample_event());
        log.record(
            1,
            TraceEvent::NodeMoved {
                process: Some(1),
                node: NodeId::new(5),
                from: (0, 0),
                to: (0, 1),
                distance: 4.5,
            },
        );
        log.record(
            2,
            TraceEvent::ProcessFailed {
                process: 2,
                reason: "said \"no\"\nnewline".into(),
            },
        );
        let jsonl = log.to_json_lines();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("{\"kind\":\""));
            assert!(line.ends_with('}'));
            // Balanced quotes (escapes handled): even count of unescaped ".
            let unescaped = line.replace("\\\"", "");
            assert_eq!(unescaped.matches('"').count() % 2, 0, "{line}");
        }
        assert!(lines[0].contains("\"round\":0"));
        assert!(lines[1].contains("\"distance\":4.5"));
        assert!(lines[2].contains("\\\"no\\\""));
        assert!(lines[2].contains("\\n"));
    }

    #[test]
    fn json_lines_covers_every_event_kind() {
        let mut log = TraceLog::new();
        let events = vec![
            TraceEvent::NodeDisabled {
                node: NodeId::new(0),
                cell: (0, 0),
            },
            TraceEvent::VacancyDetected {
                cell: (1, 1),
                detector: (1, 0),
            },
            sample_event(),
            TraceEvent::NotificationSent {
                process: 0,
                from: (0, 0),
                to: (0, 1),
            },
            TraceEvent::NodeMoved {
                process: None,
                node: NodeId::new(1),
                from: (0, 0),
                to: (1, 0),
                distance: 1.0,
            },
            TraceEvent::ProcessConverged {
                process: 0,
                moves: 1,
            },
            TraceEvent::ProcessFailed {
                process: 0,
                reason: "x".into(),
            },
            TraceEvent::HeadElected {
                cell: (0, 0),
                node: NodeId::new(2),
            },
            TraceEvent::NodeRepositioned {
                node: NodeId::new(3),
                to: Point2::new(1.0, 2.0),
                distance: 2.0,
            },
        ];
        for (i, e) in events.into_iter().enumerate() {
            log.record(i as u64, e);
        }
        let jsonl = log.to_json_lines();
        assert_eq!(jsonl.lines().count(), 9);
        for kind in [
            "node_disabled",
            "vacancy_detected",
            "process_initiated",
            "notification_sent",
            "node_moved",
            "process_converged",
            "process_failed",
            "head_elected",
            "node_repositioned",
        ] {
            assert!(jsonl.contains(&format!("\"kind\":\"{kind}\"")), "{kind}");
        }
    }
}
