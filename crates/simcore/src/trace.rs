//! Structured event tracing for protocol runs.
//!
//! Traces serve three purposes in the reproduction: debugging the
//! round-based protocols, rendering the step-by-step narration in the
//! examples, and asserting fine-grained behaviour in integration tests
//! (e.g. "exactly one replacement process was initiated for this hole" —
//! the paper's headline synchronization property).
//!
//! Grid cells are identified here by plain `(x, y)` pairs to keep this
//! crate independent of the grid layer; `wsn-grid`'s `GridCoord` converts
//! to and from these pairs.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_geometry::Point2;

use crate::node::NodeId;
use crate::Round;

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A node was disabled by fault injection.
    NodeDisabled {
        /// The disabled node.
        node: NodeId,
        /// Cell that contained the node.
        cell: (u16, u16),
    },
    /// A cell was detected vacant by the monitoring head.
    VacancyDetected {
        /// The vacant cell.
        cell: (u16, u16),
        /// Cell of the head that detected the vacancy.
        detector: (u16, u16),
    },
    /// A replacement process was initiated.
    ProcessInitiated {
        /// Process identifier (dense per run).
        process: u64,
        /// The hole the process is recovering.
        hole: (u16, u16),
        /// Cell of the initiating head.
        initiator: (u16, u16),
    },
    /// A head sent a replacement notification to its predecessor.
    NotificationSent {
        /// Process identifier.
        process: u64,
        /// Sender cell.
        from: (u16, u16),
        /// Receiver cell.
        to: (u16, u16),
    },
    /// A node moved from one cell to another.
    NodeMoved {
        /// Process that caused the movement (if any; `None` for
        /// non-protocol movements such as virtual-force steps).
        process: Option<u64>,
        /// The moving node.
        node: NodeId,
        /// Source cell.
        from: (u16, u16),
        /// Destination cell.
        to: (u16, u16),
        /// Distance covered, meters.
        distance: f64,
    },
    /// A replacement process converged (a spare reached the hole chain).
    ProcessConverged {
        /// Process identifier.
        process: u64,
        /// Number of movements the process used.
        moves: u64,
    },
    /// A replacement process failed.
    ProcessFailed {
        /// Process identifier.
        process: u64,
        /// Human-readable failure reason.
        reason: String,
    },
    /// A head was (re-)elected in a cell.
    HeadElected {
        /// The cell.
        cell: (u16, u16),
        /// The new head node.
        node: NodeId,
    },
    /// A node was repositioned without protocol involvement (deployment,
    /// balancing baselines).
    NodeRepositioned {
        /// The node.
        node: NodeId,
        /// New position.
        to: Point2,
        /// Distance covered, meters.
        distance: f64,
    },
    /// An inter-cell envelope was handed to the network model by the
    /// event-driven engine.
    NetMessage {
        /// Message kind token (e.g. `hole_announce`, `move_ack`).
        msg: String,
        /// Sender cell.
        from: (u16, u16),
        /// Receiver cell.
        to: (u16, u16),
        /// Scheduled delivery round, or `None` when the network
        /// dropped the envelope.
        deliver_at: Option<Round>,
    },
}

impl TraceEvent {
    /// Short machine-friendly tag of the event kind (used by filters).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::NodeDisabled { .. } => "node_disabled",
            TraceEvent::VacancyDetected { .. } => "vacancy_detected",
            TraceEvent::ProcessInitiated { .. } => "process_initiated",
            TraceEvent::NotificationSent { .. } => "notification_sent",
            TraceEvent::NodeMoved { .. } => "node_moved",
            TraceEvent::ProcessConverged { .. } => "process_converged",
            TraceEvent::ProcessFailed { .. } => "process_failed",
            TraceEvent::HeadElected { .. } => "head_elected",
            TraceEvent::NodeRepositioned { .. } => "node_repositioned",
            TraceEvent::NetMessage { .. } => "net_message",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::NodeDisabled { node, cell } => {
                write!(f, "{node} disabled in ({}, {})", cell.0, cell.1)
            }
            TraceEvent::VacancyDetected { cell, detector } => write!(
                f,
                "vacancy at ({}, {}) detected by head of ({}, {})",
                cell.0, cell.1, detector.0, detector.1
            ),
            TraceEvent::ProcessInitiated {
                process,
                hole,
                initiator,
            } => write!(
                f,
                "process #{process} initiated at ({}, {}) for hole ({}, {})",
                initiator.0, initiator.1, hole.0, hole.1
            ),
            TraceEvent::NotificationSent { process, from, to } => write!(
                f,
                "process #{process}: notification ({}, {}) -> ({}, {})",
                from.0, from.1, to.0, to.1
            ),
            TraceEvent::NodeMoved {
                process,
                node,
                from,
                to,
                distance,
            } => match process {
                Some(p) => write!(
                    f,
                    "process #{p}: {node} moved ({}, {}) -> ({}, {}) [{distance:.2} m]",
                    from.0, from.1, to.0, to.1
                ),
                None => write!(
                    f,
                    "{node} moved ({}, {}) -> ({}, {}) [{distance:.2} m]",
                    from.0, from.1, to.0, to.1
                ),
            },
            TraceEvent::ProcessConverged { process, moves } => {
                write!(f, "process #{process} converged after {moves} moves")
            }
            TraceEvent::ProcessFailed { process, reason } => {
                write!(f, "process #{process} failed: {reason}")
            }
            TraceEvent::HeadElected { cell, node } => {
                write!(f, "{node} elected head of ({}, {})", cell.0, cell.1)
            }
            TraceEvent::NodeRepositioned { node, to, distance } => {
                write!(f, "{node} repositioned to {to} [{distance:.2} m]")
            }
            TraceEvent::NetMessage {
                msg,
                from,
                to,
                deliver_at,
            } => match deliver_at {
                Some(t) => write!(
                    f,
                    "{msg} ({}, {}) -> ({}, {}) due round {t}",
                    from.0, from.1, to.0, to.1
                ),
                None => write!(
                    f,
                    "{msg} ({}, {}) -> ({}, {}) dropped",
                    from.0, from.1, to.0, to.1
                ),
            },
        }
    }
}

/// A time-stamped trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Round in which the event occurred.
    pub round: Round,
    /// The event.
    pub event: TraceEvent,
}

/// An append-only event log with query helpers.
///
/// Recording can be disabled ([`TraceLog::disabled`]) for large
/// Monte-Carlo sweeps; a disabled log drops events in O(1) without
/// allocating, so protocols can trace unconditionally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// A log that records events.
    pub fn new() -> TraceLog {
        TraceLog {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// A log that silently drops events (for big sweeps).
    pub fn disabled() -> TraceLog {
        TraceLog {
            enabled: false,
            records: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends `event` at `round` (no-op when disabled).
    pub fn record(&mut self, round: Round, event: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord { round, event });
        }
    }

    /// All records in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records have been kept.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over records whose event kind equals `kind`
    /// (see [`TraceEvent::kind`]).
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    /// Counts records of the given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    /// Renders the whole log, one event per line, for examples and debug
    /// dumps.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "[round {:>4}] {}", r.round, r.event);
        }
        out
    }

    /// Serializes the log as JSON Lines (one object per record) for
    /// external tooling: each line carries `round`, `kind` and the
    /// event's fields flattened into simple keys. Hand-rolled on purpose
    /// — the values are rounds, ids, cell pairs and distances, so a JSON
    /// dependency would buy nothing (DESIGN.md keeps the dependency set
    /// minimal).
    ///
    /// Floats are written in Rust's shortest round-trip notation, so
    /// [`TraceLog::from_json_lines`] inverts this exactly:
    /// `from_json_lines(log.to_json_lines()) == log` for every enabled
    /// log, bit-for-bit including distances.
    pub fn to_json_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let mut fields: Vec<(&str, String)> = vec![("round", r.round.to_string())];
            let kind = r.event.kind();
            match &r.event {
                TraceEvent::NodeDisabled { node, cell } => {
                    fields.push(("node", node.raw().to_string()));
                    fields.push(("cell", format!("[{},{}]", cell.0, cell.1)));
                }
                TraceEvent::VacancyDetected { cell, detector } => {
                    fields.push(("cell", format!("[{},{}]", cell.0, cell.1)));
                    fields.push(("detector", format!("[{},{}]", detector.0, detector.1)));
                }
                TraceEvent::ProcessInitiated {
                    process,
                    hole,
                    initiator,
                } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("hole", format!("[{},{}]", hole.0, hole.1)));
                    fields.push(("initiator", format!("[{},{}]", initiator.0, initiator.1)));
                }
                TraceEvent::NotificationSent { process, from, to } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("from", format!("[{},{}]", from.0, from.1)));
                    fields.push(("to", format!("[{},{}]", to.0, to.1)));
                }
                TraceEvent::NodeMoved {
                    process,
                    node,
                    from,
                    to,
                    distance,
                } => {
                    if let Some(p) = process {
                        fields.push(("process", p.to_string()));
                    }
                    fields.push(("node", node.raw().to_string()));
                    fields.push(("from", format!("[{},{}]", from.0, from.1)));
                    fields.push(("to", format!("[{},{}]", to.0, to.1)));
                    fields.push(("distance", json_f64(*distance)));
                }
                TraceEvent::ProcessConverged { process, moves } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("moves", moves.to_string()));
                }
                TraceEvent::ProcessFailed { process, reason } => {
                    fields.push(("process", process.to_string()));
                    fields.push(("reason", format!("\"{}\"", json_escape(reason))));
                }
                TraceEvent::HeadElected { cell, node } => {
                    fields.push(("cell", format!("[{},{}]", cell.0, cell.1)));
                    fields.push(("node", node.raw().to_string()));
                }
                TraceEvent::NodeRepositioned { node, to, distance } => {
                    fields.push(("node", node.raw().to_string()));
                    fields.push(("x", json_f64(to.x)));
                    fields.push(("y", json_f64(to.y)));
                    fields.push(("distance", json_f64(*distance)));
                }
                TraceEvent::NetMessage {
                    msg,
                    from,
                    to,
                    deliver_at,
                } => {
                    fields.push(("msg", format!("\"{}\"", json_escape(msg))));
                    fields.push(("from", format!("[{},{}]", from.0, from.1)));
                    fields.push(("to", format!("[{},{}]", to.0, to.1)));
                    if let Some(t) = deliver_at {
                        fields.push(("deliver_at", t.to_string()));
                    }
                }
            }
            let _ = write!(out, "{{\"kind\":\"{kind}\"");
            for (k, v) in fields {
                let _ = write!(out, ",\"{k}\":{v}");
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

impl TraceLog {
    /// Parses the JSON-Lines form produced by [`TraceLog::to_json_lines`]
    /// back into a log. Blank lines are skipped; key order inside each
    /// object does not matter. The parser accepts exactly the value
    /// shapes the writer emits (numbers, strings, two-element arrays),
    /// which keeps it dependency-free while still round-tripping every
    /// log bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`TraceCodecError::Json`] naming the 1-based line and the reason
    /// when a line is not one of the ten known record shapes.
    pub fn from_json_lines(s: &str) -> Result<TraceLog, TraceCodecError> {
        let mut log = TraceLog::new();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (round, event) =
                json::parse_record(line).map_err(|reason| TraceCodecError::Json {
                    line: i + 1,
                    reason,
                })?;
            log.record(round, event);
        }
        Ok(log)
    }

    /// Encodes the log in the compact versioned binary form (magic
    /// `WSNT`, format version 1, varint-packed records; see the module
    /// docs of [`binary`]). The inverse is [`TraceLog::from_binary`];
    /// the round-trip is byte-identical in both directions.
    pub fn to_binary(&self) -> Vec<u8> {
        binary::encode(&[], self)
    }

    /// Decodes a binary log produced by [`TraceLog::to_binary`] (or by
    /// [`binary::encode`]; any embedded metadata is ignored here).
    ///
    /// # Errors
    ///
    /// [`TraceCodecError`] when the magic/version is wrong or the byte
    /// stream is truncated or malformed.
    pub fn from_binary(bytes: &[u8]) -> Result<TraceLog, TraceCodecError> {
        binary::decode(bytes).map(|(_, log)| log)
    }
}

/// Errors from the trace codecs ([`TraceLog::from_json_lines`],
/// [`binary::decode`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceCodecError {
    /// The binary header does not start with the `WSNT` magic.
    BadMagic,
    /// The binary format version is newer than this reader.
    BadVersion(u8),
    /// The byte stream ended in the middle of a record.
    Truncated,
    /// An unknown event tag.
    BadTag(u8),
    /// A varint ran past 10 bytes (u64 overflow).
    BadVarint,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A JSON line failed to parse.
    Json {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCodecError::BadMagic => write!(f, "not a WSNT trace (bad magic)"),
            TraceCodecError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            TraceCodecError::Truncated => write!(f, "trace byte stream is truncated"),
            TraceCodecError::BadTag(t) => write!(f, "unknown trace event tag {t}"),
            TraceCodecError::BadVarint => write!(f, "malformed varint in trace stream"),
            TraceCodecError::BadUtf8 => write!(f, "invalid UTF-8 in trace string field"),
            TraceCodecError::Json { line, reason } => {
                write!(f, "trace JSON line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceCodecError {}

/// Formats an `f64` losslessly for JSON: Rust's shortest round-trip
/// notation, with a `.0` suffix forced onto integral values so the token
/// is unambiguously a float.
fn json_f64(v: f64) -> String {
    let s = v.to_string();
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// The compact binary trace container: `WSNT` magic, a format-version
/// byte, a string-pair metadata block, then varint-packed
/// [`TraceRecord`]s (one tag byte per event kind, varints for
/// rounds/ids/cells, raw IEEE-754 bits for distances). Replay artifacts
/// put their coordinate metadata in the meta block; bare
/// [`TraceLog::to_binary`] leaves it empty. Encoding is canonical:
/// `encode(decode(bytes)) == bytes` for every accepted input, and
/// `decode(encode(meta, log)) == (meta, log)` — the property the codec
/// proptests pin.
pub mod binary {
    use super::{TraceCodecError, TraceEvent, TraceLog};
    use crate::node::NodeId;
    use wsn_geometry::Point2;

    /// First four bytes of every binary trace.
    pub const MAGIC: [u8; 4] = *b"WSNT";
    /// Current format version.
    pub const VERSION: u8 = 1;

    const TAG_NODE_DISABLED: u8 = 0;
    const TAG_VACANCY_DETECTED: u8 = 1;
    const TAG_PROCESS_INITIATED: u8 = 2;
    const TAG_NOTIFICATION_SENT: u8 = 3;
    const TAG_NODE_MOVED: u8 = 4;
    const TAG_PROCESS_CONVERGED: u8 = 5;
    const TAG_PROCESS_FAILED: u8 = 6;
    const TAG_HEAD_ELECTED: u8 = 7;
    const TAG_NODE_REPOSITIONED: u8 = 8;
    const TAG_NET_MESSAGE: u8 = 9;

    fn put_varint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn put_str(out: &mut Vec<u8>, s: &str) {
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }

    fn put_cell(out: &mut Vec<u8>, cell: (u16, u16)) {
        put_varint(out, u64::from(cell.0));
        put_varint(out, u64::from(cell.1));
    }

    fn put_f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Encodes `log` with a metadata block of string pairs.
    pub fn encode(meta: &[(String, String)], log: &TraceLog) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 16 * log.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(u8::from(log.is_enabled()));
        put_varint(&mut out, meta.len() as u64);
        for (k, v) in meta {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        put_varint(&mut out, log.len() as u64);
        for r in log.records() {
            put_varint(&mut out, r.round);
            match &r.event {
                TraceEvent::NodeDisabled { node, cell } => {
                    out.push(TAG_NODE_DISABLED);
                    put_varint(&mut out, u64::from(node.raw()));
                    put_cell(&mut out, *cell);
                }
                TraceEvent::VacancyDetected { cell, detector } => {
                    out.push(TAG_VACANCY_DETECTED);
                    put_cell(&mut out, *cell);
                    put_cell(&mut out, *detector);
                }
                TraceEvent::ProcessInitiated {
                    process,
                    hole,
                    initiator,
                } => {
                    out.push(TAG_PROCESS_INITIATED);
                    put_varint(&mut out, *process);
                    put_cell(&mut out, *hole);
                    put_cell(&mut out, *initiator);
                }
                TraceEvent::NotificationSent { process, from, to } => {
                    out.push(TAG_NOTIFICATION_SENT);
                    put_varint(&mut out, *process);
                    put_cell(&mut out, *from);
                    put_cell(&mut out, *to);
                }
                TraceEvent::NodeMoved {
                    process,
                    node,
                    from,
                    to,
                    distance,
                } => {
                    out.push(TAG_NODE_MOVED);
                    match process {
                        Some(p) => {
                            out.push(1);
                            put_varint(&mut out, *p);
                        }
                        None => out.push(0),
                    }
                    put_varint(&mut out, u64::from(node.raw()));
                    put_cell(&mut out, *from);
                    put_cell(&mut out, *to);
                    put_f64(&mut out, *distance);
                }
                TraceEvent::ProcessConverged { process, moves } => {
                    out.push(TAG_PROCESS_CONVERGED);
                    put_varint(&mut out, *process);
                    put_varint(&mut out, *moves);
                }
                TraceEvent::ProcessFailed { process, reason } => {
                    out.push(TAG_PROCESS_FAILED);
                    put_varint(&mut out, *process);
                    put_str(&mut out, reason);
                }
                TraceEvent::HeadElected { cell, node } => {
                    out.push(TAG_HEAD_ELECTED);
                    put_cell(&mut out, *cell);
                    put_varint(&mut out, u64::from(node.raw()));
                }
                TraceEvent::NodeRepositioned { node, to, distance } => {
                    out.push(TAG_NODE_REPOSITIONED);
                    put_varint(&mut out, u64::from(node.raw()));
                    put_f64(&mut out, to.x);
                    put_f64(&mut out, to.y);
                    put_f64(&mut out, *distance);
                }
                TraceEvent::NetMessage {
                    msg,
                    from,
                    to,
                    deliver_at,
                } => {
                    out.push(TAG_NET_MESSAGE);
                    put_str(&mut out, msg);
                    put_cell(&mut out, *from);
                    put_cell(&mut out, *to);
                    match deliver_at {
                        Some(t) => {
                            out.push(1);
                            put_varint(&mut out, *t);
                        }
                        None => out.push(0),
                    }
                }
            }
        }
        out
    }

    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], TraceCodecError> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.bytes.len())
                .ok_or(TraceCodecError::Truncated)?;
            let slice = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        fn byte(&mut self) -> Result<u8, TraceCodecError> {
            Ok(self.take(1)?[0])
        }

        fn varint(&mut self) -> Result<u64, TraceCodecError> {
            let mut v: u64 = 0;
            for shift in (0..64).step_by(7) {
                let byte = self.byte()?;
                let part = u64::from(byte & 0x7f);
                if shift == 63 && part > 1 {
                    return Err(TraceCodecError::BadVarint);
                }
                v |= part << shift;
                if byte & 0x80 == 0 {
                    return Ok(v);
                }
            }
            Err(TraceCodecError::BadVarint)
        }

        fn cell(&mut self) -> Result<(u16, u16), TraceCodecError> {
            let x = self.varint()?;
            let y = self.varint()?;
            let x = u16::try_from(x).map_err(|_| TraceCodecError::BadVarint)?;
            let y = u16::try_from(y).map_err(|_| TraceCodecError::BadVarint)?;
            Ok((x, y))
        }

        fn node(&mut self) -> Result<NodeId, TraceCodecError> {
            let raw = self.varint()?;
            let raw = u32::try_from(raw).map_err(|_| TraceCodecError::BadVarint)?;
            Ok(NodeId::new(raw))
        }

        fn f64(&mut self) -> Result<f64, TraceCodecError> {
            let bytes: [u8; 8] = self.take(8)?.try_into().expect("slice of 8");
            Ok(f64::from_bits(u64::from_le_bytes(bytes)))
        }

        fn string(&mut self) -> Result<String, TraceCodecError> {
            let len = self.varint()?;
            let len = usize::try_from(len).map_err(|_| TraceCodecError::BadVarint)?;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| TraceCodecError::BadUtf8)
        }
    }

    /// Decodes a binary trace into its metadata pairs and log.
    ///
    /// # Errors
    ///
    /// [`TraceCodecError`] on bad magic/version, truncation, unknown
    /// tags, malformed varints or invalid UTF-8.
    pub fn decode(bytes: &[u8]) -> Result<(Vec<(String, String)>, TraceLog), TraceCodecError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(TraceCodecError::BadMagic);
        }
        let version = r.byte()?;
        if version != VERSION {
            return Err(TraceCodecError::BadVersion(version));
        }
        let enabled = r.byte()? != 0;
        let meta_len = r.varint()?;
        let mut meta = Vec::new();
        for _ in 0..meta_len {
            let k = r.string()?;
            let v = r.string()?;
            meta.push((k, v));
        }
        let count = r.varint()?;
        let mut log = if enabled {
            TraceLog::new()
        } else {
            TraceLog::disabled()
        };
        for _ in 0..count {
            let round = r.varint()?;
            let tag = r.byte()?;
            let event = match tag {
                TAG_NODE_DISABLED => TraceEvent::NodeDisabled {
                    node: r.node()?,
                    cell: r.cell()?,
                },
                TAG_VACANCY_DETECTED => TraceEvent::VacancyDetected {
                    cell: r.cell()?,
                    detector: r.cell()?,
                },
                TAG_PROCESS_INITIATED => TraceEvent::ProcessInitiated {
                    process: r.varint()?,
                    hole: r.cell()?,
                    initiator: r.cell()?,
                },
                TAG_NOTIFICATION_SENT => TraceEvent::NotificationSent {
                    process: r.varint()?,
                    from: r.cell()?,
                    to: r.cell()?,
                },
                TAG_NODE_MOVED => {
                    let process = match r.byte()? {
                        0 => None,
                        _ => Some(r.varint()?),
                    };
                    TraceEvent::NodeMoved {
                        process,
                        node: r.node()?,
                        from: r.cell()?,
                        to: r.cell()?,
                        distance: r.f64()?,
                    }
                }
                TAG_PROCESS_CONVERGED => TraceEvent::ProcessConverged {
                    process: r.varint()?,
                    moves: r.varint()?,
                },
                TAG_PROCESS_FAILED => TraceEvent::ProcessFailed {
                    process: r.varint()?,
                    reason: r.string()?,
                },
                TAG_HEAD_ELECTED => TraceEvent::HeadElected {
                    cell: r.cell()?,
                    node: r.node()?,
                },
                TAG_NODE_REPOSITIONED => TraceEvent::NodeRepositioned {
                    node: r.node()?,
                    to: Point2::new(r.f64()?, r.f64()?),
                    distance: r.f64()?,
                },
                TAG_NET_MESSAGE => {
                    let msg = r.string()?;
                    let from = r.cell()?;
                    let to = r.cell()?;
                    let deliver_at = match r.byte()? {
                        0 => None,
                        _ => Some(r.varint()?),
                    };
                    TraceEvent::NetMessage {
                        msg,
                        from,
                        to,
                        deliver_at,
                    }
                }
                other => return Err(TraceCodecError::BadTag(other)),
            };
            // Push directly: a disabled log must still round-trip its
            // (empty) record set, and `record` would drop events.
            log.records.push(super::TraceRecord { round, event });
        }
        if r.pos != bytes.len() {
            return Err(TraceCodecError::Truncated);
        }
        Ok((meta, log))
    }
}

/// The minimal JSON-subset reader behind [`TraceLog::from_json_lines`]:
/// flat objects whose values are numbers, strings or two-element arrays
/// — exactly what the writer emits. Numbers are kept as source tokens so
/// `u64` fields never round-trip through `f64`.
mod json {
    use super::TraceEvent;
    use crate::node::NodeId;
    use crate::Round;
    use std::collections::BTreeMap;
    use wsn_geometry::Point2;

    enum Value {
        Num(String),
        Str(String),
        Pair(String, String),
    }

    struct Scanner<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    impl Scanner<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some(' ' | '\t')) {
                self.chars.next();
            }
        }

        fn expect(&mut self, c: char) -> Result<(), String> {
            self.skip_ws();
            match self.chars.next() {
                Some(got) if got == c => Ok(()),
                Some(got) => Err(format!("expected '{c}', found '{got}'")),
                None => Err(format!("expected '{c}', found end of line")),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.chars.next() {
                    Some('"') => return Ok(out),
                    Some('\\') => match self.chars.next() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self
                                    .chars
                                    .next()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some(c) => out.push(c),
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn number(&mut self) -> Result<String, String> {
            self.skip_ws();
            let mut out = String::new();
            while let Some(&c) = self.chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    out.push(c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            if out.is_empty() {
                Err("expected a number".into())
            } else {
                Ok(out)
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.chars.peek() {
                Some('"') => Ok(Value::Str(self.string()?)),
                Some('[') => {
                    self.expect('[')?;
                    let a = self.number()?;
                    self.expect(',')?;
                    let b = self.number()?;
                    self.expect(']')?;
                    Ok(Value::Pair(a, b))
                }
                _ => Ok(Value::Num(self.number()?)),
            }
        }
    }

    fn parse_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
        let mut s = Scanner {
            chars: line.chars().peekable(),
        };
        let mut map = BTreeMap::new();
        s.expect('{')?;
        s.skip_ws();
        if s.chars.peek() == Some(&'}') {
            s.chars.next();
            return Ok(map);
        }
        loop {
            let key = s.string()?;
            s.expect(':')?;
            let value = s.value()?;
            map.insert(key, value);
            s.skip_ws();
            match s.chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
        s.skip_ws();
        if s.chars.next().is_some() {
            return Err("trailing characters after object".into());
        }
        Ok(map)
    }

    fn get<'m>(map: &'m BTreeMap<String, Value>, key: &str) -> Result<&'m Value, String> {
        map.get(key).ok_or_else(|| format!("missing field {key:?}"))
    }

    fn get_u64(map: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
        match get(map, key)? {
            Value::Num(s) => s.parse().map_err(|_| format!("field {key:?}: bad integer")),
            _ => Err(format!("field {key:?}: expected an integer")),
        }
    }

    fn get_f64(map: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
        match get(map, key)? {
            Value::Num(s) => s.parse().map_err(|_| format!("field {key:?}: bad float")),
            _ => Err(format!("field {key:?}: expected a float")),
        }
    }

    fn get_cell(map: &BTreeMap<String, Value>, key: &str) -> Result<(u16, u16), String> {
        match get(map, key)? {
            Value::Pair(a, b) => {
                let x = a.parse().map_err(|_| format!("field {key:?}: bad cell"))?;
                let y = b.parse().map_err(|_| format!("field {key:?}: bad cell"))?;
                Ok((x, y))
            }
            _ => Err(format!("field {key:?}: expected [x,y]")),
        }
    }

    fn get_node(map: &BTreeMap<String, Value>, key: &str) -> Result<NodeId, String> {
        let raw = get_u64(map, key)?;
        let raw = u32::try_from(raw).map_err(|_| format!("field {key:?}: id too large"))?;
        Ok(NodeId::new(raw))
    }

    fn get_str(map: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
        match get(map, key)? {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(format!("field {key:?}: expected a string")),
        }
    }

    pub(super) fn parse_record(line: &str) -> Result<(Round, TraceEvent), String> {
        let map = parse_object(line)?;
        let kind = get_str(&map, "kind")?;
        let round = get_u64(&map, "round")?;
        let event = match kind.as_str() {
            "node_disabled" => TraceEvent::NodeDisabled {
                node: get_node(&map, "node")?,
                cell: get_cell(&map, "cell")?,
            },
            "vacancy_detected" => TraceEvent::VacancyDetected {
                cell: get_cell(&map, "cell")?,
                detector: get_cell(&map, "detector")?,
            },
            "process_initiated" => TraceEvent::ProcessInitiated {
                process: get_u64(&map, "process")?,
                hole: get_cell(&map, "hole")?,
                initiator: get_cell(&map, "initiator")?,
            },
            "notification_sent" => TraceEvent::NotificationSent {
                process: get_u64(&map, "process")?,
                from: get_cell(&map, "from")?,
                to: get_cell(&map, "to")?,
            },
            "node_moved" => TraceEvent::NodeMoved {
                process: match map.get("process") {
                    Some(_) => Some(get_u64(&map, "process")?),
                    None => None,
                },
                node: get_node(&map, "node")?,
                from: get_cell(&map, "from")?,
                to: get_cell(&map, "to")?,
                distance: get_f64(&map, "distance")?,
            },
            "process_converged" => TraceEvent::ProcessConverged {
                process: get_u64(&map, "process")?,
                moves: get_u64(&map, "moves")?,
            },
            "process_failed" => TraceEvent::ProcessFailed {
                process: get_u64(&map, "process")?,
                reason: get_str(&map, "reason")?,
            },
            "head_elected" => TraceEvent::HeadElected {
                cell: get_cell(&map, "cell")?,
                node: get_node(&map, "node")?,
            },
            "node_repositioned" => TraceEvent::NodeRepositioned {
                node: get_node(&map, "node")?,
                to: Point2::new(get_f64(&map, "x")?, get_f64(&map, "y")?),
                distance: get_f64(&map, "distance")?,
            },
            "net_message" => TraceEvent::NetMessage {
                msg: get_str(&map, "msg")?,
                from: get_cell(&map, "from")?,
                to: get_cell(&map, "to")?,
                deliver_at: match map.get("deliver_at") {
                    Some(_) => Some(get_u64(&map, "deliver_at")?),
                    None => None,
                },
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok((round, event))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent::ProcessInitiated {
            process: 1,
            hole: (2, 3),
            initiator: (2, 2),
        }
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::new();
        log.record(0, sample_event());
        log.record(
            1,
            TraceEvent::ProcessConverged {
                process: 1,
                moves: 2,
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].round, 0);
        assert_eq!(log.records()[1].round, 1);
        assert!(!log.is_empty());
    }

    #[test]
    fn disabled_log_drops_everything() {
        let mut log = TraceLog::disabled();
        for r in 0..100 {
            log.record(r, sample_event());
        }
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn kind_filtering() {
        let mut log = TraceLog::new();
        log.record(0, sample_event());
        log.record(
            0,
            TraceEvent::NodeMoved {
                process: Some(1),
                node: NodeId::new(5),
                from: (0, 0),
                to: (0, 1),
                distance: 4.5,
            },
        );
        log.record(
            1,
            TraceEvent::ProcessFailed {
                process: 2,
                reason: "no spare".into(),
            },
        );
        assert_eq!(log.count_kind("process_initiated"), 1);
        assert_eq!(log.count_kind("node_moved"), 1);
        assert_eq!(log.count_kind("process_failed"), 1);
        assert_eq!(log.count_kind("head_elected"), 0);
    }

    #[test]
    fn every_event_kind_has_nonempty_display() {
        let events = vec![
            TraceEvent::NodeDisabled {
                node: NodeId::new(0),
                cell: (0, 0),
            },
            TraceEvent::VacancyDetected {
                cell: (1, 1),
                detector: (1, 0),
            },
            sample_event(),
            TraceEvent::NotificationSent {
                process: 0,
                from: (0, 0),
                to: (0, 1),
            },
            TraceEvent::NodeMoved {
                process: None,
                node: NodeId::new(1),
                from: (0, 0),
                to: (1, 0),
                distance: 1.0,
            },
            TraceEvent::ProcessConverged {
                process: 0,
                moves: 1,
            },
            TraceEvent::ProcessFailed {
                process: 0,
                reason: "x".into(),
            },
            TraceEvent::HeadElected {
                cell: (0, 0),
                node: NodeId::new(2),
            },
            TraceEvent::NodeRepositioned {
                node: NodeId::new(3),
                to: Point2::new(1.0, 2.0),
                distance: 2.0,
            },
            TraceEvent::NetMessage {
                msg: "hole_announce".into(),
                from: (2, 2),
                to: (2, 1),
                deliver_at: Some(4),
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        for e in &events {
            assert!(!e.to_string().is_empty());
        }
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 10, "kinds must be distinct");
    }

    #[test]
    fn render_contains_rounds_and_lines() {
        let mut log = TraceLog::new();
        log.record(3, sample_event());
        let s = log.render();
        assert!(s.contains("[round    3]"));
        assert!(s.lines().count() == 1);
    }

    #[test]
    fn json_lines_one_object_per_record() {
        let mut log = TraceLog::new();
        log.record(0, sample_event());
        log.record(
            1,
            TraceEvent::NodeMoved {
                process: Some(1),
                node: NodeId::new(5),
                from: (0, 0),
                to: (0, 1),
                distance: 4.5,
            },
        );
        log.record(
            2,
            TraceEvent::ProcessFailed {
                process: 2,
                reason: "said \"no\"\nnewline".into(),
            },
        );
        let jsonl = log.to_json_lines();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("{\"kind\":\""));
            assert!(line.ends_with('}'));
            // Balanced quotes (escapes handled): even count of unescaped ".
            let unescaped = line.replace("\\\"", "");
            assert_eq!(unescaped.matches('"').count() % 2, 0, "{line}");
        }
        assert!(lines[0].contains("\"round\":0"));
        assert!(lines[1].contains("\"distance\":4.5"));
        assert!(lines[2].contains("\\\"no\\\""));
        assert!(lines[2].contains("\\n"));
    }

    fn one_of_each_kind() -> Vec<TraceEvent> {
        vec![
            TraceEvent::NodeDisabled {
                node: NodeId::new(0),
                cell: (0, 0),
            },
            TraceEvent::VacancyDetected {
                cell: (1, 1),
                detector: (1, 0),
            },
            sample_event(),
            TraceEvent::NotificationSent {
                process: 0,
                from: (0, 0),
                to: (0, 1),
            },
            TraceEvent::NodeMoved {
                process: None,
                node: NodeId::new(1),
                from: (0, 0),
                to: (1, 0),
                distance: 7.07,
            },
            TraceEvent::NodeMoved {
                process: Some(u64::MAX),
                node: NodeId::new(u32::MAX),
                from: (u16::MAX, 0),
                to: (0, u16::MAX),
                distance: 1.0 / 3.0,
            },
            TraceEvent::ProcessConverged {
                process: 0,
                moves: 1,
            },
            TraceEvent::ProcessFailed {
                process: 0,
                reason: "said \"no\"\nnewline\ttab \\ \u{1} π".into(),
            },
            TraceEvent::HeadElected {
                cell: (0, 0),
                node: NodeId::new(2),
            },
            TraceEvent::NodeRepositioned {
                node: NodeId::new(3),
                to: Point2::new(-1.5, 2e-300),
                distance: f64::MIN_POSITIVE,
            },
            TraceEvent::NetMessage {
                msg: "hole_announce".into(),
                from: (3, 3),
                to: (3, 2),
                deliver_at: Some(12),
            },
            TraceEvent::NetMessage {
                msg: "move_ack \"odd\"\n".into(),
                from: (u16::MAX, 1),
                to: (0, 0),
                deliver_at: None,
            },
        ]
    }

    fn log_of_each_kind() -> TraceLog {
        let mut log = TraceLog::new();
        for (i, e) in one_of_each_kind().into_iter().enumerate() {
            log.record(i as u64 * 1000, e);
        }
        log
    }

    #[test]
    fn json_lines_round_trip_every_kind() {
        let log = log_of_each_kind();
        let decoded = TraceLog::from_json_lines(&log.to_json_lines()).expect("parses");
        assert_eq!(decoded, log);
        // Second generation is textually identical (canonical form).
        assert_eq!(decoded.to_json_lines(), log.to_json_lines());
    }

    #[test]
    fn json_lines_parser_reports_line_and_reason() {
        let err = TraceLog::from_json_lines("{\"kind\":\"process_converged\",\"round\":0,\"process\":0,\"moves\":1}\n{\"kind\":\"nope\",\"round\":1}").unwrap_err();
        match err {
            TraceCodecError::Json { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("nope"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(TraceLog::from_json_lines("not json").is_err());
        assert!(TraceLog::from_json_lines("{\"kind\":\"head_elected\",\"round\":0}").is_err());
    }

    #[test]
    fn json_lines_parser_skips_blank_lines_and_ignores_key_order() {
        let parsed = TraceLog::from_json_lines(
            "\n{\"round\":3,\"moves\":2,\"process\":1,\"kind\":\"process_converged\"}\n\n",
        )
        .expect("parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            parsed.records()[0].event,
            TraceEvent::ProcessConverged {
                process: 1,
                moves: 2
            }
        );
    }

    #[test]
    fn binary_round_trip_every_kind() {
        let log = log_of_each_kind();
        let bytes = log.to_binary();
        let decoded = TraceLog::from_binary(&bytes).expect("decodes");
        assert_eq!(decoded, log);
        // Canonical: re-encoding reproduces the exact bytes.
        assert_eq!(decoded.to_binary(), bytes);
        assert_eq!(&bytes[..4], b"WSNT");
    }

    #[test]
    fn binary_meta_block_round_trips() {
        let log = log_of_each_kind();
        let meta = vec![
            ("schema".to_string(), "wsn-replay/1".to_string()),
            ("grid".to_string(), "8x8".to_string()),
        ];
        let bytes = binary::encode(&meta, &log);
        let (meta2, log2) = binary::decode(&bytes).expect("decodes");
        assert_eq!(meta2, meta);
        assert_eq!(log2, log);
        // from_binary tolerates (and drops) the meta block.
        assert_eq!(TraceLog::from_binary(&bytes).expect("decodes"), log);
    }

    #[test]
    fn binary_preserves_the_enabled_flag() {
        let log = TraceLog::disabled();
        let decoded = TraceLog::from_binary(&log.to_binary()).expect("decodes");
        assert_eq!(decoded, log);
        assert!(!decoded.is_enabled());
    }

    #[test]
    fn binary_rejects_malformed_streams() {
        let log = log_of_each_kind();
        let bytes = log.to_binary();
        assert_eq!(
            TraceLog::from_binary(b"NOPE"),
            Err(TraceCodecError::BadMagic)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            TraceLog::from_binary(&wrong_version),
            Err(TraceCodecError::BadVersion(99))
        );
        // Every strict prefix must be rejected, never mis-decoded.
        for cut in 0..bytes.len() {
            assert!(
                TraceLog::from_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            TraceLog::from_binary(&padded),
            Err(TraceCodecError::Truncated)
        );
        assert!(!TraceCodecError::BadVarint.to_string().is_empty());
        assert!(!TraceCodecError::BadUtf8.to_string().is_empty());
        assert!(!TraceCodecError::BadTag(42).to_string().is_empty());
    }

    #[test]
    fn json_lines_covers_every_event_kind() {
        let mut log = TraceLog::new();
        let events = vec![
            TraceEvent::NodeDisabled {
                node: NodeId::new(0),
                cell: (0, 0),
            },
            TraceEvent::VacancyDetected {
                cell: (1, 1),
                detector: (1, 0),
            },
            sample_event(),
            TraceEvent::NotificationSent {
                process: 0,
                from: (0, 0),
                to: (0, 1),
            },
            TraceEvent::NodeMoved {
                process: None,
                node: NodeId::new(1),
                from: (0, 0),
                to: (1, 0),
                distance: 1.0,
            },
            TraceEvent::ProcessConverged {
                process: 0,
                moves: 1,
            },
            TraceEvent::ProcessFailed {
                process: 0,
                reason: "x".into(),
            },
            TraceEvent::HeadElected {
                cell: (0, 0),
                node: NodeId::new(2),
            },
            TraceEvent::NodeRepositioned {
                node: NodeId::new(3),
                to: Point2::new(1.0, 2.0),
                distance: 2.0,
            },
            TraceEvent::NetMessage {
                msg: "monitor_probe".into(),
                from: (1, 0),
                to: (1, 1),
                deliver_at: None,
            },
        ];
        for (i, e) in events.into_iter().enumerate() {
            log.record(i as u64, e);
        }
        let jsonl = log.to_json_lines();
        assert_eq!(jsonl.lines().count(), 10);
        for kind in [
            "node_disabled",
            "vacancy_detected",
            "process_initiated",
            "notification_sent",
            "node_moved",
            "process_converged",
            "process_failed",
            "head_elected",
            "node_repositioned",
            "net_message",
        ] {
            assert!(jsonl.contains(&format!("\"kind\":\"{kind}\"")), "{kind}");
        }
    }
}
