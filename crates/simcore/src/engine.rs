//! The synchronous round loop.
//!
//! The paper describes its control schemes "in a round-based system": each
//! round, every head observes the (previous round's) state of its
//! monitored cells, receives notifications sent in the previous round, and
//! completes at most one action before the next round starts. A protocol
//! implements [`RoundProtocol::execute_round`] with exactly those
//! semantics; [`RoundRunner`] drives it until quiescence or a round cap.
//!
//! Quiescence is declared after a configurable number of consecutive
//! rounds report [`RoundOutcome::Quiescent`]; the default of 2 rounds
//! absorbs the one-round notification latency of the paper's scheme (a
//! head that just sent a notification has no visible action in flight, but
//! the system is not yet stable).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Round;

/// What a protocol reports after executing one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundOutcome {
    /// The round performed or scheduled work (movements, notifications,
    /// detections).
    Progress,
    /// Nothing happened and nothing is pending from this protocol's local
    /// view.
    Quiescent,
}

/// A protocol executable by [`RoundRunner`].
pub trait RoundProtocol {
    /// Executes one synchronous round and reports whether anything
    /// happened. Implementations must be deterministic given their own
    /// state (randomness comes from an owned [`crate::rng::SimRng`]).
    fn execute_round(&mut self, round: Round) -> RoundOutcome;
}

/// A protocol whose outstanding work is readable from its own
/// bookkeeping (active-process tables, pending-hole sets fed by an
/// occupancy change journal, scheduled faults) without executing a
/// round.
///
/// [`RoundRunner::run_change_driven`] uses this to declare quiescence
/// the moment the index shows nothing pending, skipping the
/// idle-confirmation window [`RoundRunner::run`] needs when quiescence
/// can only be observed by running no-op rounds. The two drivers
/// therefore report different round counts for the same protocol:
/// `run` matches the paper's round accounting, `run_change_driven` is
/// the fast path for large-grid scenario harnesses where the trailing
/// idle rounds are pure overhead.
pub trait ChangeDrivenProtocol: RoundProtocol {
    /// `true` while any work is outstanding at the start of `round`:
    /// active processes, actionable holes, or faults scheduled at or
    /// after `round`.
    fn has_pending_work(&self, round: Round) -> bool;
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quiescence {
    /// The protocol reported no work for the required number of
    /// consecutive rounds.
    Reached,
    /// The round cap was hit first (the protocol may be livelocked or the
    /// cap too small).
    MaxRoundsExceeded,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of rounds executed.
    pub rounds: Round,
    /// How the run terminated.
    pub termination: Quiescence,
}

impl RunReport {
    /// `true` when the run terminated by quiescence (not by the cap).
    pub fn is_quiescent(&self) -> bool {
        self.termination == Quiescence::Reached
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.termination {
            Quiescence::Reached => write!(f, "quiescent after {} rounds", self.rounds),
            Quiescence::MaxRoundsExceeded => {
                write!(f, "round cap ({}) exceeded", self.rounds)
            }
        }
    }
}

/// Configuration error for [`RoundRunner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `max_rounds` must be at least 1.
    ZeroMaxRounds,
    /// `quiescent_rounds` must be at least 1.
    ZeroQuiescentRounds,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ZeroMaxRounds => write!(f, "max_rounds must be at least 1"),
            EngineError::ZeroQuiescentRounds => {
                write!(f, "quiescent_rounds must be at least 1")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Drives a [`RoundProtocol`] to quiescence.
///
/// ```
/// use wsn_simcore::engine::{RoundOutcome, RoundProtocol, RoundRunner};
///
/// struct CountDown(u32);
/// impl RoundProtocol for CountDown {
///     fn execute_round(&mut self, _round: u64) -> RoundOutcome {
///         if self.0 == 0 { RoundOutcome::Quiescent } else { self.0 -= 1; RoundOutcome::Progress }
///     }
/// }
///
/// let runner = RoundRunner::new(100)?;
/// let report = runner.run(&mut CountDown(5));
/// assert!(report.is_quiescent());
/// # Ok::<(), wsn_simcore::engine::EngineError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRunner {
    max_rounds: Round,
    quiescent_rounds: Round,
}

impl RoundRunner {
    /// A runner with the given round cap and the default quiescence
    /// window of 2 consecutive idle rounds.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroMaxRounds`] when `max_rounds == 0`.
    pub fn new(max_rounds: Round) -> Result<RoundRunner, EngineError> {
        RoundRunner::with_quiescence(max_rounds, 2)
    }

    /// A runner requiring `quiescent_rounds` consecutive idle rounds.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroMaxRounds`] or
    /// [`EngineError::ZeroQuiescentRounds`] on zero arguments.
    pub fn with_quiescence(
        max_rounds: Round,
        quiescent_rounds: Round,
    ) -> Result<RoundRunner, EngineError> {
        if max_rounds == 0 {
            return Err(EngineError::ZeroMaxRounds);
        }
        if quiescent_rounds == 0 {
            return Err(EngineError::ZeroQuiescentRounds);
        }
        Ok(RoundRunner {
            max_rounds,
            quiescent_rounds,
        })
    }

    /// The configured round cap.
    pub fn max_rounds(&self) -> Round {
        self.max_rounds
    }

    /// Runs `protocol` until quiescence or the cap, returning the
    /// termination report.
    pub fn run<P: RoundProtocol>(&self, protocol: &mut P) -> RunReport {
        let mut idle_streak: Round = 0;
        for round in 0..self.max_rounds {
            match protocol.execute_round(round) {
                RoundOutcome::Progress => idle_streak = 0,
                RoundOutcome::Quiescent => {
                    idle_streak += 1;
                    if idle_streak >= self.quiescent_rounds {
                        return RunReport {
                            rounds: round + 1,
                            termination: Quiescence::Reached,
                        };
                    }
                }
            }
        }
        RunReport {
            rounds: self.max_rounds,
            termination: Quiescence::MaxRoundsExceeded,
        }
    }

    /// Runs `protocol` until its change-driven pending-work check reports
    /// nothing outstanding, or the round cap. Unlike [`RoundRunner::run`]
    /// this needs no idle-confirmation rounds (the quiescence window is
    /// ignored): the protocol's own index says whether work remains, so
    /// the reported round count excludes trailing no-op rounds.
    pub fn run_change_driven<P: ChangeDrivenProtocol>(&self, protocol: &mut P) -> RunReport {
        for round in 0..self.max_rounds {
            if !protocol.has_pending_work(round) {
                return RunReport {
                    rounds: round,
                    termination: Quiescence::Reached,
                };
            }
            protocol.execute_round(round);
        }
        RunReport {
            rounds: self.max_rounds,
            termination: Quiescence::MaxRoundsExceeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Script(Vec<RoundOutcome>);
    impl RoundProtocol for Script {
        fn execute_round(&mut self, round: Round) -> RoundOutcome {
            self.0
                .get(round as usize)
                .copied()
                .unwrap_or(RoundOutcome::Quiescent)
        }
    }

    #[test]
    fn config_validation() {
        assert_eq!(RoundRunner::new(0).unwrap_err(), EngineError::ZeroMaxRounds);
        assert_eq!(
            RoundRunner::with_quiescence(10, 0).unwrap_err(),
            EngineError::ZeroQuiescentRounds
        );
        assert!(RoundRunner::new(1).is_ok());
    }

    #[test]
    fn stops_after_quiescence_window() {
        use RoundOutcome::{Progress as P, Quiescent as Q};
        let runner = RoundRunner::with_quiescence(100, 2).unwrap();
        let report = runner.run(&mut Script(vec![P, P, Q, Q]));
        assert_eq!(report.rounds, 4);
        assert!(report.is_quiescent());
    }

    #[test]
    fn idle_streak_resets_on_progress() {
        use RoundOutcome::{Progress as P, Quiescent as Q};
        let runner = RoundRunner::with_quiescence(100, 2).unwrap();
        // Q P Q Q -> streak broken at round 1, quiescent at round 4.
        let report = runner.run(&mut Script(vec![Q, P, Q, Q]));
        assert_eq!(report.rounds, 4);
        assert!(report.is_quiescent());
    }

    #[test]
    fn cap_exceeded_is_reported() {
        struct Busy;
        impl RoundProtocol for Busy {
            fn execute_round(&mut self, _r: Round) -> RoundOutcome {
                RoundOutcome::Progress
            }
        }
        let runner = RoundRunner::new(10).unwrap();
        let report = runner.run(&mut Busy);
        assert_eq!(report.rounds, 10);
        assert_eq!(report.termination, Quiescence::MaxRoundsExceeded);
        assert!(!report.is_quiescent());
    }

    #[test]
    fn single_quiescent_round_window() {
        use RoundOutcome::Quiescent as Q;
        let runner = RoundRunner::with_quiescence(100, 1).unwrap();
        let report = runner.run(&mut Script(vec![Q]));
        assert_eq!(report.rounds, 1);
        assert!(report.is_quiescent());
    }

    #[test]
    fn change_driven_run_skips_idle_confirmation() {
        // Work pending for 3 rounds, then the index reads empty: the
        // change-driven driver stops at round 3 where `run` would burn
        // two more idle rounds confirming quiescence.
        struct Indexed {
            pending_until: Round,
        }
        impl RoundProtocol for Indexed {
            fn execute_round(&mut self, _round: Round) -> RoundOutcome {
                RoundOutcome::Progress
            }
        }
        impl ChangeDrivenProtocol for Indexed {
            fn has_pending_work(&self, round: Round) -> bool {
                round < self.pending_until
            }
        }
        let runner = RoundRunner::with_quiescence(100, 2).unwrap();
        let report = runner.run_change_driven(&mut Indexed { pending_until: 3 });
        assert_eq!(report.rounds, 3);
        assert!(report.is_quiescent());
        // Livelocked pending work still hits the cap.
        let report = runner.run_change_driven(&mut Indexed {
            pending_until: u64::MAX,
        });
        assert_eq!(report.termination, Quiescence::MaxRoundsExceeded);
    }

    #[test]
    fn error_and_report_display() {
        assert!(!EngineError::ZeroMaxRounds.to_string().is_empty());
        assert!(!EngineError::ZeroQuiescentRounds.to_string().is_empty());
        let r = RunReport {
            rounds: 3,
            termination: Quiescence::Reached,
        };
        assert!(r.to_string().contains("3"));
        let c = RunReport {
            rounds: 10,
            termination: Quiescence::MaxRoundsExceeded,
        };
        assert!(c.to_string().contains("cap"));
    }
}
