//! Cooperative shutdown: one process-wide flag, set by SIGINT/SIGTERM,
//! polled by long-running loops.
//!
//! The campaign engine, the steady-state workloads and the `served`
//! daemon all run minutes-long loops that own half-written artifacts —
//! checkpoints, perf ledgers, result files. Dying mid-write on Ctrl-C
//! corrupts them. This module gives every binary the same two-step
//! discipline:
//!
//! 1. call [`install_signal_traps`] once at startup;
//! 2. poll [`requested`] at safe points (between trials, between
//!    benchmark groups, between accepted connections) and wind down —
//!    flushing whatever is already complete — when it turns true.
//!
//! The signal handler itself only stores one atomic boolean, which is
//! async-signal-safe; all real work happens on the polling threads.
//! [`request`] sets the same flag programmatically (tests, remote
//! `DELETE /jobs` cancellation cascading into a daemon stop), and
//! [`reset`] re-arms it (tests and daemon restarts within one process).
//!
//! The two `signal(2)` FFI lines below are the only unsafe code in the
//! workspace; everything else builds under `deny(unsafe_code)`.

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide shutdown flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Whether the traps were already installed (idempotence guard).
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// `SIGINT` on every Unix this workspace targets.
const SIGINT: i32 = 2;
/// `SIGTERM` on every Unix this workspace targets.
const SIGTERM: i32 = 15;

#[cfg(unix)]
#[allow(unsafe_code)]
mod trap {
    //! The minimal `signal(2)` binding: no crates.io access, so the two
    //! declarations live here instead of in `libc`. The handler stores
    //! one atomic — the only operation POSIX guarantees to be
    //! async-signal-safe that we need.

    use std::sync::atomic::Ordering;

    extern "C" {
        /// POSIX `signal(2)`. On Linux/glibc this is BSD-semantics
        /// (the handler stays installed after delivery), which is what
        /// a "press Ctrl-C twice and we still wind down cleanly" flag
        /// wants.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The installed handler: set the flag, nothing else.
    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub(super) fn install(signum: i32) {
        // SAFETY: `signal` is the POSIX libc entry point; the handler
        // passed is a valid `extern "C" fn(i32)` for the whole program
        // lifetime and only performs an atomic store.
        unsafe {
            signal(signum, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag.
/// Idempotent; later calls are no-ops. On non-Unix targets this
/// installs nothing — [`request`] remains the only trigger.
pub fn install_signal_traps() {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    #[cfg(unix)]
    {
        trap::install(SIGINT);
        trap::install(SIGTERM);
    }
}

/// Whether shutdown has been requested (by a trapped signal or by
/// [`request`]). Cheap enough to poll per trial.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Requests shutdown programmatically — same effect as a trapped
/// signal.
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Re-arms the flag. For tests and for daemons that survive a handled
/// shutdown request within one process. Callers own the race window:
/// a signal landing between a poll and `reset` is lost, so only reset
/// once the wind-down it triggered has fully completed.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips_and_traps_are_idempotent() {
        // Single test: the flag is process-global, so one linear
        // scenario avoids cross-test interference.
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
        install_signal_traps();
        install_signal_traps(); // second call must not panic or rearm
        assert!(!requested());
    }
}
